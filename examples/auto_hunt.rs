//! The §7 automation loop, live: discover bugs from causality alone.
//!
//! ```text
//! cargo run --release --example auto_hunt
//! ```
//!
//! No hand-tuned injectors: the explorer runs each workload once with no
//! faults, mines the trace for component decisions and the notifications
//! causally preceding them, turns those into drop/blackout/crash
//! candidates, and re-runs the workload once per candidate. Violations are
//! real bugs, found the way the paper proposes: "perturbing events that
//! are causally related to a component's action are likely to trigger
//! bugs."

use ph_cluster::controllers::VcMode;
use ph_cluster::topology::{spawn_cluster, ClusterConfig};
use ph_core::autoguide::explore;
use ph_core::perturb::{Strategy, Targets};
use ph_scenarios::common::targets_for;
use ph_scenarios::{k8s_56261, volume_17, Variant};
use ph_sim::{Duration, Trace, World, WorldConfig};

fn hunt(
    name: &str,
    run: impl Fn(&mut dyn Strategy) -> (Vec<String>, Trace),
    targets_of: impl Fn(&Trace) -> Targets,
    decisions: &[&str],
    depth: usize,
    budget: usize,
) {
    println!("=== hunting {name} (decisions: {decisions:?}) ===");
    let (findings, total, census) = explore(run, targets_of, decisions, depth, budget);
    println!(
        "  {} candidates derived from the reference trace ({} distinct classes, \
         {} deduplicated), {} tried:",
        total,
        census.distinct_classes,
        census.deduped_trials,
        findings.len()
    );
    let mut found = 0;
    for f in &findings {
        if f.violated {
            found += 1;
            println!("  ✗ {}", f.candidate);
            for v in &f.violations {
                println!("      → {v}");
            }
        }
    }
    if found == 0 {
        println!("  (no violations — try a deeper/bigger budget)");
    } else {
        println!("  {found} candidate(s) exposed real violations\n");
    }
}

fn main() {
    hunt(
        "the volume controller (bug [17] shape)",
        |strategy| {
            let (report, trace) = volume_17::run_with_trace(1, strategy, Variant::Buggy);
            (
                report
                    .violations
                    .iter()
                    .map(|v| v.details.clone())
                    .collect(),
                trace,
            )
        },
        |_| {
            let cfg = ClusterConfig {
                volume_controller: Some(VcMode::MarkOnly),
                ..ClusterConfig::default()
            };
            let mut world = World::new(WorldConfig::default(), 1);
            let cluster = spawn_cluster(&mut world, &cfg);
            targets_for(&cluster, Duration::secs(5))
        },
        &["vc.release_pvc"],
        4,
        12,
    );

    hunt(
        "the scheduler (Kubernetes-56261 shape)",
        |strategy| {
            let (report, trace) = k8s_56261::run_with_trace(1, strategy, Variant::Buggy);
            (
                report
                    .violations
                    .iter()
                    .map(|v| v.details.clone())
                    .collect(),
                trace,
            )
        },
        |_| {
            let cfg = ClusterConfig {
                scheduler: Some(false),
                rs_controller: Some(false),
                ..ClusterConfig::default()
            };
            let mut world = World::new(WorldConfig::default(), 1);
            let cluster = spawn_cluster(&mut world, &cfg);
            targets_for(&cluster, Duration::secs(6))
        },
        &["scheduler.bind"],
        12,
        40,
    );

    println!(
        "every finding above is replayable: the candidate encodes the exact\n\
         perturbation point positionally, and the simulation is deterministic."
    );
}
