//! Figure 2, live: reproduce Kubernetes-59848 and print the execution.
//!
//! ```text
//! cargo run --example rolling_upgrade
//! ```
//!
//! Runs the rolling-upgrade scenario under the guided time-travel injection
//! against the buggy kubelet, prints the decision timeline extracted from
//! the trace, and then shows that the fixed kubelet survives the identical
//! injection.

use ph_scenarios::{k8s_59848, Variant};
use ph_sim::TraceEventKind;

fn main() {
    println!("=== Kubernetes-59848: 'the most severe possible known vulnerability");
    println!("    in Kubernetes safety guarantees' — reproduced in simulation ===\n");

    let mut strategy = k8s_59848::guided(1);
    let report = k8s_59848::run(1, strategy.as_mut(), Variant::Buggy);

    println!("scenario : {}", report.scenario);
    println!("strategy : {}", report.strategy);
    println!("seed     : {}", report.seed);
    println!("events   : {}", report.trace_events);
    println!();
    if report.failed() {
        println!("SAFETY VIOLATION DETECTED:");
        for v in &report.violations {
            println!("  {v}");
        }
    } else {
        println!("no violation (unexpected — file a bug!)");
    }

    // Re-run to narrate the timeline (reports don't carry the full trace;
    // determinism means the rerun is byte-identical).
    println!("\n--- timeline (from the deterministic re-run) ---");
    let mut strategy = k8s_59848::guided(1);
    let report2 = k8s_59848::run_with_trace(1, strategy.as_mut(), Variant::Buggy);
    assert_eq!(report2.0.trace_digest, report.trace_digest);
    for e in report2.1.iter() {
        if let TraceEventKind::Annotation { label, data, .. } = &e.kind {
            if label.starts_with("kubelet.pod_") || label == "kubelet.restart" {
                println!("  {:>10}  {:<18} {}", e.at.to_string(), label, data);
            }
        }
    }

    println!("\n--- the fix: quorum-read lists ---");
    let mut strategy = k8s_59848::guided(1);
    let fixed = k8s_59848::run(1, strategy.as_mut(), Variant::Fixed);
    if fixed.violations.is_empty() {
        println!("fixed kubelet survives the identical injection: no violations");
    } else {
        for v in &fixed.violations {
            println!("  UNEXPECTED: {v}");
        }
    }
}
