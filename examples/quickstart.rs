//! Quickstart: build a cluster, watch its history, and measure a partial
//! history.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks through the §3 model on a live simulated stack: the ground-truth
//! history `H` accumulates in the replicated store; an apiserver's watch
//! cache holds a view `(H′, S′)`; we freeze its feed and watch the lag
//! grow, then heal it and watch the views converge.

use ph_cluster::apiserver::ApiServer;
use ph_cluster::objects::{Body, Object};
use ph_cluster::topology::{spawn_cluster, ClusterConfig};
use ph_core::perturb::{StalenessInjector, Strategy, Targets};
use ph_sim::{Duration, SimTime, World, WorldConfig};
use ph_store::{Revision, StoreNode};

fn truth_revision(world: &World, cluster: &ph_cluster::topology::ClusterHandle) -> Revision {
    cluster
        .store
        .leader(world)
        .and_then(|n| world.actor_ref::<StoreNode>(n))
        .map(|s| s.mvcc().revision())
        .unwrap_or(Revision::ZERO)
}

fn main() {
    // 1. A deterministic world: same seed ⇒ identical run, always.
    let mut world = World::new(WorldConfig::default(), 42);

    // 2. The Figure-1 stack: 3-node store, 2 apiservers, 2 kubelets,
    //    a scheduler and a replica-set controller.
    let cfg = ClusterConfig {
        scheduler: Some(false),
        rs_controller: Some(false),
        ..ClusterConfig::default()
    };
    let cluster = spawn_cluster(&mut world, &cfg);
    assert!(cluster.wait_ready(&mut world, SimTime(Duration::secs(1).as_nanos())));
    world.run_until(SimTime(Duration::secs(1).as_nanos()));
    println!("cluster ready at {} (seed {})", world.now(), world.seed());

    // 3. Seed a workload: two nodes and a 4-replica set. The controller
    //    creates pods, the scheduler binds them, the kubelets run them —
    //    every step a committed change in the history H.
    let dl = SimTime(world.now().0 + Duration::secs(5).as_nanos());
    for n in &cfg.nodes {
        cluster.create_object(&mut world, &Object::node(n.clone()), dl);
    }
    cluster.create_object(
        &mut world,
        &Object::new("web", Body::ReplicaSet { replicas: 4 }),
        dl,
    );
    world.run_for(Duration::secs(2));

    let s = cluster.ground_truth(&world);
    println!(
        "ground truth S: {} objects at revision {} ({} pods running)",
        s.len(),
        truth_revision(&world, &cluster),
        s.values()
            .filter(|o| matches!(
                o.body,
                Body::Pod {
                    phase: ph_cluster::PodPhase::Running,
                    ..
                }
            ))
            .count(),
    );

    // 4. Freeze apiserver-2's feed — the §4.2.1 staleness pattern — and
    //    keep mutating. Its view (H′, S′) falls behind (H, S).
    let targets = Targets {
        store_nodes: cluster.store.nodes.clone(),
        caches: cluster.apiservers.as_slice().into(),
        components: cluster.kubelets.as_slice().into(),
        notify_kinds: ["WatchNotify".to_string(), "ApiWatchEvent".to_string()].into(),
        horizon: Duration::secs(10),
    };
    // (Delays preserve per-link FIFO order, like the TCP streams they
    // model: everything behind a delayed notification queues behind it.)
    let mut injector = StalenessInjector {
        cache: 1,
        delay: Duration::secs(2),
        after: Duration::ZERO,
    };
    injector.setup(&mut world, &targets);
    cluster.create_object(
        &mut world,
        &Object::new("web", Body::ReplicaSet { replicas: 8 }),
        dl,
    );
    world.run_for(Duration::millis(1500));

    let api2 = world
        .actor_ref::<ApiServer>(cluster.apiservers[1])
        .expect("apiserver-2");
    let truth = truth_revision(&world, &cluster);
    println!(
        "after freezing apiserver-2: truth at {}, apiserver-2's view at {} \
         (lag: {} events)",
        truth,
        api2.cache_revision(),
        truth.0 - api2.cache_revision().0,
    );
    assert!(api2.cache_revision() < truth, "the view must be stale");

    // 5. Heal and converge: once the delayed notifications drain, the view
    //    catches back up with the truth.
    injector.teardown(&mut world);
    world.run_for(Duration::secs(4));
    let api2 = world
        .actor_ref::<ApiServer>(cluster.apiservers[1])
        .expect("apiserver-2");
    let truth = truth_revision(&world, &cluster);
    println!(
        "after healing: truth at {}, apiserver-2's view at {} — converged",
        truth,
        api2.cache_revision(),
    );
    assert_eq!(api2.cache_revision(), truth);

    println!(
        "trace: {} events, digest {:#018x} — rerun me and both will match",
        world.trace().len(),
        world.trace().digest(),
    );
}
