//! The §6.2 proposal, implemented: epoch-bounded delivery.
//!
//! ```text
//! cargo run --example epoch_bounded
//! ```
//!
//! "A hypothetical programming model might explicitly break down H into
//! epochs … and guarantee that if a service can see one event within an
//! epoch, it should be able to see all other events within that epoch."
//!
//! This example feeds the same lossy notification stream to a naive
//! consumer and to an epoch-buffered consumer, and shows the trade-off the
//! paper predicts: epochs convert silent interior gaps into *detected*,
//! whole-epoch losses (no partial visibility), at the cost of buffering.

use ph_core::epoch::{EpochBuffer, EpochError, EpochPartition};
use ph_core::history::{Change, ChangeOp, History};
use ph_core::observe::observability_report;
use ph_sim::SimRng;

fn main() {
    // Ground truth: 64 committed changes over 8 entities.
    let mut h = History::new();
    let mut rng = SimRng::from_seed(2024);
    let mut alive = [false; 8];
    for _ in 0..64 {
        let e = rng.below(8) as usize;
        let entity = format!("obj{e}");
        if !alive[e] {
            h.append(entity, ChangeOp::Create);
            alive[e] = true;
        } else if rng.chance(0.3) {
            h.append(entity, ChangeOp::Delete);
            alive[e] = false;
        } else {
            h.append(entity, ChangeOp::Update(rng.below(100)));
        }
    }
    println!("ground truth history H: {} changes\n", h.len());

    // The delivery stream drops ~15% of notifications (network trouble).
    let delivered: Vec<Change> = h
        .changes()
        .iter()
        .filter(|_| !rng.chance(0.15))
        .cloned()
        .collect();
    let dropped = h.len() as usize - delivered.len();
    println!("delivery dropped {dropped} notifications silently\n");

    // Consumer A: naive — applies whatever arrives. It has interior gaps
    // it can never detect from the stream itself.
    let mut naive = ph_core::history::View::new();
    for c in &delivered {
        naive.observe(c.clone());
    }
    let gaps = naive.interior_gaps(&h);
    println!(
        "naive consumer: frontier {}, {} silent interior gaps, {} divergent entities",
        naive.history.frontier(),
        gaps.len(),
        naive.divergent_entities(&h).len()
    );

    // How much would sparse state reads have told it? (§3: not enough.)
    let report = observability_report(&h, &[16, 32, 48, 64]);
    println!(
        "  (even reading S at 4 points reconstructs only {}/{} events — \
         {:.0}% unobservable)\n",
        report.observable.len(),
        h.len(),
        report.gap_fraction() * 100.0
    );

    // Consumer B: epoch-buffered (epoch size 8). It releases only complete
    // epochs: every gap is *detected* as an incomplete epoch instead of
    // silently skewing the view.
    for size in [4u64, 8, 16] {
        let mut buf = EpochBuffer::new(EpochPartition::new(size));
        for c in &delivered {
            buf.push(c.clone());
        }
        let mut complete = 0;
        let mut incomplete = 0;
        loop {
            match buf.release_next(h.len()) {
                Ok(_epoch) => complete += 1,
                Err(EpochError::Incomplete { missing, .. }) => {
                    incomplete += 1;
                    // The consumer now KNOWS it must re-list: the gap is
                    // explicit.
                    let _ = missing;
                    buf.skip_epoch();
                }
                Err(EpochError::NotSealed { .. }) => break,
            }
            if (complete + incomplete) as u64 * size >= h.len() {
                break;
            }
        }
        println!(
            "epoch consumer (size {size:>2}): {complete} complete epochs delivered \
             atomically, {incomplete} gaps DETECTED, peak buffer {}",
            buf.peak_buffered()
        );
    }

    println!(
        "\nthe §6.2 trade-off: smaller epochs → finer loss granularity and \
         smaller buffers;\nlarger epochs → fewer coordination points but \
         whole-epoch re-lists. Silent gaps: zero, at every size."
    );
}
