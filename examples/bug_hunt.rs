//! The §7 bug hunt: every scenario, every strategy, one detection matrix.
//!
//! ```text
//! cargo run --release --example bug_hunt [max_trials]
//! ```
//!
//! Regenerates the paper's headline result as a table: the partial-history
//! guided injections find each bug immediately; the baselines (uniform
//! random crashes, CrashTuner-style crash-after-view-update, CoFI-style
//! partitions) rarely do within the same budget.

use ph_core::harness::{DetectionMatrix, Explorer, RunReport};
use ph_core::perturb::{CoFiPartitions, CrashTunerCrashes, NoFault, RandomCrashes, Strategy};
use ph_scenarios::{
    cass_398, cass_400, cass_402, hbase_3136, k8s_56261, k8s_59848, node_fencing, volume_17,
    Variant,
};
use ph_sim::Duration;

type ScenarioRun = fn(u64, &mut dyn Strategy, Variant) -> RunReport;
type Guided = fn(u64) -> Box<dyn Strategy>;

fn main() {
    let max_trials: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    let scenarios: Vec<(&str, ScenarioRun, Guided)> = vec![
        (
            k8s_59848::NAME,
            k8s_59848::run as ScenarioRun,
            k8s_59848::guided as Guided,
        ),
        (k8s_56261::NAME, k8s_56261::run, k8s_56261::guided),
        (volume_17::NAME, volume_17::run, volume_17::guided),
        (cass_398::NAME, cass_398::run, cass_398::guided),
        (cass_400::NAME, cass_400::run, cass_400::guided),
        (cass_402::NAME, cass_402::run, cass_402::guided),
        (hbase_3136::NAME, hbase_3136::run, hbase_3136::guided),
        (node_fencing::NAME, node_fencing::run, node_fencing::guided),
    ];

    type Factory = Box<dyn Fn(u64) -> Box<dyn Strategy>>;
    let baselines: Vec<(&str, Factory)> = vec![
        (
            "guided",
            Box::new(|_| unreachable!("replaced per scenario")),
        ),
        (
            "random-crash",
            Box::new(|seed| {
                Box::new(RandomCrashes {
                    seed,
                    count: 3,
                    down: Duration::millis(300),
                })
            }),
        ),
        (
            "crashtuner",
            Box::new(|seed| Box::new(CrashTunerCrashes::new(seed, 0.02, 3, Duration::millis(300)))),
        ),
        (
            "cofi",
            Box::new(|seed| Box::new(CoFiPartitions::new(seed, 0.02, 3, Duration::millis(500)))),
        ),
        ("no-fault", Box::new(|_| Box::new(NoFault))),
    ];

    println!(
        "hunting {} bugs with {} strategies, {} trials budget each…\n",
        scenarios.len(),
        baselines.len(),
        max_trials
    );
    let explorer = Explorer {
        max_trials,
        base_seed: 1000,
    };

    let mut matrix = DetectionMatrix::new();
    for (name, run, guided) in &scenarios {
        for (sname, factory) in &baselines {
            let mut outcome = if *sname == "guided" {
                let mut o =
                    explorer.explore(name, &|seed, s| run(seed, s, Variant::Buggy), &|seed| {
                        guided(seed)
                    });
                // Uniform column label; the per-scenario pattern is printed
                // in the per-row detail above.
                o.strategy = format!("guided [{}]", o.strategy);
                o
            } else {
                explorer.explore(name, &|seed, s| run(seed, s, Variant::Buggy), &|seed| {
                    factory(seed)
                })
            };
            let detail = outcome.strategy.clone();
            if outcome.strategy.starts_with("guided [") {
                outcome.strategy = "guided".into();
            }
            let _ = detail;
            let tag = match outcome.first_violation {
                Some(n) => format!("detected on trial {n}"),
                None => "not detected".into(),
            };
            println!("  {:<14} × {:<22} {}", name, detail, tag);
            matrix.add(outcome);
        }
    }

    println!("\n=== detection matrix (✓ n = first failing trial) ===\n");
    println!("{}", matrix.render());

    let guided_hits = matrix
        .cells()
        .iter()
        .filter(|c| c.strategy == "guided" && c.detected())
        .count();
    println!(
        "guided strategies detected {guided_hits}/{} bugs; see EXPERIMENTS.md \
         for the recorded full-budget matrix",
        scenarios.len()
    );
}
