//! Property tests for [`ph_core::causality::CausalGraph`], generated from
//! fixed-seed [`SimRng`] gossip worlds (no external proptest crate — the
//! simulator itself is the generator, so every case is replayable).
//!
//! Laws pinned here:
//! * the vector-clock order is a partial order — reflexive, antisymmetric
//!   (on clocks), transitive;
//! * `happens_before` agrees with `clock_leq` and every send precedes its
//!   own delivery;
//! * backward slices are causally closed: every member except the sink
//!   happens-before the sink (the invariant the blame slicer rides on).

use ph_core::causality::CausalGraph;
use ph_sim::{
    Actor, ActorId, AnyMsg, Ctx, Duration, SimRng, TimerId, TraceEventKind, World, WorldConfig,
};

/// A gossiping actor: kicks off with a timer, then forwards a hop-limited
/// token to seeded-random peers, annotating every receipt.
struct Gossip {
    rng: SimRng,
    peers: Vec<ActorId>,
    kicks: u64,
}

#[derive(Debug)]
struct Token(u64);

impl Actor for Gossip {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for k in 0..self.kicks {
            ctx.set_timer(Duration::millis(1 + k), k);
        }
    }
    fn on_message(&mut self, _from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
        ctx.annotate("gossip.got", "token");
        let Some(&Token(hops)) = msg.downcast_ref::<Token>() else {
            return;
        };
        if hops > 0 && !self.peers.is_empty() {
            let peer = self.peers[self.rng.below(self.peers.len() as u64) as usize];
            ctx.send(peer, Token(hops - 1));
        }
    }
    fn on_timer(&mut self, _t: TimerId, _tag: u64, ctx: &mut Ctx) {
        if !self.peers.is_empty() {
            let peer = self.peers[self.rng.below(self.peers.len() as u64) as usize];
            ctx.send(peer, Token(1 + self.rng.below(4)));
        }
    }
}

/// Builds a quiesced gossip world: `n` actors, all-to-all peer lists,
/// per-actor seeded RNGs, 1–2 kick timers each.
fn gossip_world(seed: u64, n: usize) -> World {
    let mut world = World::new(WorldConfig::default(), seed);
    let all: Vec<ActorId> = (0..n).map(|i| ActorId(i as u32)).collect();
    for i in 0..n {
        let peers: Vec<ActorId> = all.iter().copied().filter(|a| a.index() != i).collect();
        let spawned = world.spawn(
            &format!("g{i}"),
            Gossip {
                rng: SimRng::from_seed(seed ^ (i as u64).wrapping_mul(0x9E37_79B9)),
                peers,
                kicks: 1 + (i as u64 % 2),
            },
        );
        assert_eq!(spawned, all[i], "spawn order must yield dense ids");
    }
    world.run_until_quiescent(10_000_000_000);
    world
}

#[test]
fn vector_clock_order_is_a_partial_order() {
    for seed in [1u64, 7, 42, 1337] {
        let world = gossip_world(seed, 4);
        let graph = CausalGraph::from_trace(world.trace());
        let seqs: Vec<u64> = world
            .trace()
            .iter()
            .map(|e| e.seq)
            .filter(|&s| graph.clock(s).is_some())
            .collect();
        assert!(seqs.len() > 8, "seed {seed}: world too quiet to test");
        // Reflexivity: every clock ≤ itself (and happens_before stays
        // irreflexive by the explicit a != b guard).
        for &s in &seqs {
            let c = graph.clock(s).unwrap();
            assert!(
                CausalGraph::clock_leq(c, c),
                "seed {seed}: leq not reflexive"
            );
            assert!(!graph.happens_before(s, s));
        }
        // Antisymmetry on distinct events: a ≤ b and b ≤ a force equal
        // clocks (two trace events may share a clock only via the join on
        // delivery; happens_before then holds in both directions, which is
        // why the slicer keys on seqs, not clocks).
        for &a in &seqs {
            for &b in &seqs {
                if a == b {
                    continue;
                }
                let (ca, cb) = (graph.clock(a).unwrap(), graph.clock(b).unwrap());
                if CausalGraph::clock_leq(ca, cb) && CausalGraph::clock_leq(cb, ca) {
                    let mut ca = ca.to_vec();
                    let mut cb = cb.to_vec();
                    let width = ca.len().max(cb.len());
                    ca.resize(width, 0);
                    cb.resize(width, 0);
                    assert_eq!(ca, cb, "seed {seed}: antisymmetry violated");
                }
            }
        }
        // Transitivity: a ≤ b ≤ c ⇒ a ≤ c, checked on a bounded triple
        // product to keep the quadratic loop honest.
        let sample: Vec<u64> = seqs.iter().copied().take(24).collect();
        for &a in &sample {
            for &b in &sample {
                for &c in &sample {
                    let (ca, cb, cc) = (
                        graph.clock(a).unwrap(),
                        graph.clock(b).unwrap(),
                        graph.clock(c).unwrap(),
                    );
                    if CausalGraph::clock_leq(ca, cb) && CausalGraph::clock_leq(cb, cc) {
                        assert!(
                            CausalGraph::clock_leq(ca, cc),
                            "seed {seed}: transitivity violated"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn every_send_happens_before_its_own_delivery() {
    for seed in [3u64, 11, 99] {
        let world = gossip_world(seed, 5);
        let graph = CausalGraph::from_trace(world.trace());
        let mut pairs = 0;
        for e in world.trace().iter() {
            let TraceEventKind::MessageDelivered { id, .. } = &e.kind else {
                continue;
            };
            let send = world
                .trace()
                .iter()
                .find(
                    |s| matches!(&s.kind, TraceEventKind::MessageSent { id: sid, .. } if sid == id),
                )
                .expect("delivered message was sent");
            pairs += 1;
            assert!(
                graph.happens_before(send.seq, e.seq),
                "seed {seed}: send {} must precede delivery {}",
                send.seq,
                e.seq
            );
            assert!(!graph.happens_before(e.seq, send.seq));
        }
        assert!(pairs > 4, "seed {seed}: too few send→deliver pairs");
    }
}

#[test]
fn backward_slices_are_causally_closed() {
    for seed in [2u64, 13, 77] {
        let world = gossip_world(seed, 4);
        let graph = CausalGraph::from_trace(world.trace());
        let decisions = graph.decisions("gossip.got");
        assert!(!decisions.is_empty(), "seed {seed}: no decisions to slice");
        for &sink in &decisions {
            let slice = graph.slice(sink);
            assert!(slice.contains(&sink), "slice must contain its sink");
            for &s in &slice {
                if s == sink {
                    continue;
                }
                assert!(
                    graph.happens_before(s, sink),
                    "seed {seed}: slice member {s} does not precede sink {sink}"
                );
            }
            // Closure: the slice IS causes_of(sink) ∪ {sink} — nothing a
            // member depends on is missing.
            for &s in &slice {
                for cause in graph.causes_of(s) {
                    assert!(
                        slice.contains(&cause),
                        "seed {seed}: {cause} causes {s} but is missing from the slice of {sink}"
                    );
                }
            }
        }
        // Unknown sinks slice to nothing.
        assert!(graph.slice(u64::MAX).is_empty());
    }
}
