//! Property-based tests on the partial-history model's invariants.

use proptest::prelude::*;

use ph_core::epoch::{EpochBuffer, EpochError, EpochPartition};
use ph_core::history::{ChangeOp, History, PartialHistory, View};
use ph_core::observe::observability_report;

/// An arbitrary history over a small entity universe.
fn arb_history(max_len: usize) -> impl Strategy<Value = History> {
    prop::collection::vec((0u8..6, 0u8..3, 0u64..100), 0..max_len).prop_map(|ops| {
        let mut h = History::new();
        let mut alive = [false; 6];
        for (e, kind, v) in ops {
            let entity = format!("e{e}");
            let idx = e as usize;
            match kind {
                0 => {
                    if !alive[idx] {
                        h.append(entity, ChangeOp::Create);
                        alive[idx] = true;
                    } else {
                        h.append(entity, ChangeOp::Update(v));
                    }
                }
                1 => {
                    if alive[idx] {
                        h.append(entity, ChangeOp::Delete);
                        alive[idx] = false;
                    } else {
                        h.append(entity, ChangeOp::Create);
                        alive[idx] = true;
                    }
                }
                _ => {
                    if alive[idx] {
                        h.append(entity, ChangeOp::Update(v));
                    } else {
                        h.append(entity, ChangeOp::Create);
                        alive[idx] = true;
                    }
                }
            }
        }
        h
    })
}

/// A subsequence mask for a history.
fn arb_mask(len: usize) -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), len..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_subsequence_is_a_partial_history(
        (h, mask) in arb_history(40).prop_flat_map(|h| {
            let len = h.len() as usize;
            (Just(h), arb_mask(len))
        })
    ) {
        let mut view = PartialHistory::new();
        for (c, keep) in h.changes().iter().zip(&mask) {
            if *keep {
                view.observe(c.clone());
            }
        }
        prop_assert!(view.is_partial_of(&h));
        // Frontier never exceeds |H|.
        prop_assert!(view.frontier() <= h.len());
    }

    #[test]
    fn duplicating_any_element_breaks_the_invariant(
        (h, idx) in arb_history(40)
            .prop_filter("non-empty", |h| !h.is_empty())
            .prop_flat_map(|h| {
                let len = h.len();
                (Just(h), 1..=len)
            })
    ) {
        let mut view = PartialHistory::new();
        for c in h.changes() {
            view.observe(c.clone());
            if c.seq == idx {
                view.observe(c.clone()); // replay
            }
        }
        prop_assert!(!view.is_partial_of(&h), "replays must be rejected");
    }

    #[test]
    fn lag_plus_frontier_equals_history_length(
        (h, mask) in arb_history(40).prop_flat_map(|h| {
            let len = h.len() as usize;
            (Just(h), arb_mask(len))
        })
    ) {
        let mut view = View::new();
        for (c, keep) in h.changes().iter().zip(&mask) {
            if *keep {
                view.observe(c.clone());
            }
        }
        prop_assert_eq!(view.lag(&h) + view.history.frontier(), h.len());
    }

    #[test]
    fn complete_views_never_diverge(h in arb_history(40)) {
        let view = View { history: h.as_view() };
        prop_assert!(view.divergent_entities(&h).is_empty());
        prop_assert!(view.interior_gaps(&h).is_empty());
        prop_assert_eq!(view.lag(&h), 0);
    }

    #[test]
    fn interior_gaps_are_exactly_the_masked_out_prefix_changes(
        (h, mask) in arb_history(40).prop_flat_map(|h| {
            let len = h.len() as usize;
            (Just(h), arb_mask(len))
        })
    ) {
        let mut view = View::new();
        for (c, keep) in h.changes().iter().zip(&mask) {
            if *keep {
                view.observe(c.clone());
            }
        }
        let frontier = view.history.frontier();
        let expected: Vec<u64> = h
            .changes()
            .iter()
            .zip(&mask)
            .filter(|(c, keep)| !**keep && c.seq <= frontier)
            .map(|(c, _)| c.seq)
            .collect();
        let got: Vec<u64> = view.interior_gaps(&h).iter().map(|c| c.seq).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn observability_partitions_the_history(
        (h, points) in arb_history(40).prop_flat_map(|h| {
            let len = h.len();
            let points = prop::collection::vec(0..=len + 2, 0..8);
            (Just(h), points)
        })
    ) {
        let report = observability_report(&h, &points);
        let mut all: Vec<u64> = report
            .observable
            .iter()
            .chain(&report.unobservable)
            .copied()
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (1..=h.len()).collect();
        prop_assert_eq!(all, expected, "every change classified exactly once");
    }

    #[test]
    fn reading_after_every_event_observes_single_entity_histories_fully(
        n in 1u64..30
    ) {
        // With one entity and alternating create/delete, dense reads see all.
        let mut h = History::new();
        for i in 0..n {
            h.append("x", if i % 2 == 0 { ChangeOp::Create } else { ChangeOp::Delete });
        }
        let points: Vec<u64> = (1..=n).collect();
        let report = observability_report(&h, &points);
        prop_assert!(report.unobservable.is_empty());
    }

    #[test]
    fn epoch_buffer_releases_everything_given_a_complete_feed(
        (h, size) in arb_history(60).prop_flat_map(|h| (Just(h), 1u64..10))
    ) {
        let mut buf = EpochBuffer::new(EpochPartition::new(size));
        for c in h.changes() {
            buf.push(c.clone());
        }
        let mut released = 0u64;
        loop {
            match buf.release_next(h.len()) {
                Ok(epoch) => {
                    // Released epochs are internally ordered.
                    let seqs: Vec<u64> = epoch.iter().map(|c| c.seq).collect();
                    let mut sorted = seqs.clone();
                    sorted.sort_unstable();
                    prop_assert_eq!(&seqs, &sorted);
                    released += epoch.len() as u64;
                }
                Err(EpochError::NotSealed { .. }) => break,
                Err(EpochError::Incomplete { .. }) => {
                    prop_assert!(false, "complete feed produced an incomplete epoch");
                }
            }
        }
        // Everything except the trailing unsealed epoch is delivered.
        prop_assert_eq!(released, (h.len() / size) * size);
    }

    #[test]
    fn epoch_buffer_detects_every_gap(
        (h, size, drop_seq) in arb_history(60)
            .prop_filter("non-trivial", |h| h.len() >= 4)
            .prop_flat_map(|h| {
                let len = h.len();
                (Just(h), 1u64..5, 1..=len)
            })
    ) {
        let mut buf = EpochBuffer::new(EpochPartition::new(size));
        for c in h.changes() {
            if c.seq != drop_seq {
                buf.push(c.clone());
            }
        }
        let dropped_epoch = EpochPartition::new(size).epoch_of(drop_seq);
        let mut hit = false;
        loop {
            match buf.release_next(h.len()) {
                Ok(epoch) => {
                    // No released epoch may contain a neighbour of the gap
                    // from the same epoch.
                    for c in &epoch {
                        prop_assert_ne!(
                            EpochPartition::new(size).epoch_of(c.seq),
                            dropped_epoch
                        );
                    }
                }
                Err(EpochError::Incomplete { epoch, missing }) => {
                    prop_assert_eq!(epoch, dropped_epoch);
                    prop_assert!(missing.contains(&drop_seq));
                    hit = true;
                    buf.skip_epoch();
                }
                Err(EpochError::NotSealed { .. }) => break,
            }
        }
        // The gap is detected iff its epoch seals within the history.
        let seals = EpochPartition::new(size).is_sealed(dropped_epoch, h.len());
        prop_assert_eq!(hit, seals);
    }
}
