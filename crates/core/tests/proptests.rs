//! Randomized-but-deterministic tests on the partial-history model's
//! invariants, generated from a fixed-seed [`SimRng`].

use ph_sim::SimRng;

use ph_core::epoch::{EpochBuffer, EpochError, EpochPartition};
use ph_core::history::{ChangeOp, History, PartialHistory, View};
use ph_core::observe::observability_report;

/// Draws an arbitrary history over a small entity universe.
fn gen_history(rng: &mut SimRng, max_len: u64) -> History {
    let n = rng.below(max_len) as usize;
    let mut h = History::new();
    let mut alive = [false; 6];
    for _ in 0..n {
        let e = rng.below(6) as usize;
        let kind = rng.below(3);
        let v = rng.below(100);
        let entity = format!("e{e}");
        match kind {
            0 => {
                if !alive[e] {
                    h.append(entity, ChangeOp::Create);
                    alive[e] = true;
                } else {
                    h.append(entity, ChangeOp::Update(v));
                }
            }
            1 => {
                if alive[e] {
                    h.append(entity, ChangeOp::Delete);
                    alive[e] = false;
                } else {
                    h.append(entity, ChangeOp::Create);
                    alive[e] = true;
                }
            }
            _ => {
                if alive[e] {
                    h.append(entity, ChangeOp::Update(v));
                } else {
                    h.append(entity, ChangeOp::Create);
                    alive[e] = true;
                }
            }
        }
    }
    h
}

/// Draws a subsequence mask for a history.
fn gen_mask(rng: &mut SimRng, len: usize) -> Vec<bool> {
    (0..len).map(|_| rng.below(2) == 1).collect()
}

#[test]
fn any_subsequence_is_a_partial_history() {
    let mut rng = SimRng::from_seed(0x5B5);
    for _ in 0..128 {
        let h = gen_history(&mut rng, 40);
        let mask = gen_mask(&mut rng, h.len() as usize);
        let mut view = PartialHistory::new();
        for (c, keep) in h.changes().iter().zip(&mask) {
            if *keep {
                view.observe(c.clone());
            }
        }
        assert!(view.is_partial_of(&h));
        // Frontier never exceeds |H|.
        assert!(view.frontier() <= h.len());
    }
}

#[test]
fn duplicating_any_element_breaks_the_invariant() {
    let mut rng = SimRng::from_seed(0xD0B1);
    let mut cases = 0;
    while cases < 128 {
        let h = gen_history(&mut rng, 40);
        if h.is_empty() {
            continue;
        }
        cases += 1;
        let idx = rng.range(1, h.len() + 1);
        let mut view = PartialHistory::new();
        for c in h.changes() {
            view.observe(c.clone());
            if c.seq == idx {
                view.observe(c.clone()); // replay
            }
        }
        assert!(!view.is_partial_of(&h), "replays must be rejected");
    }
}

#[test]
fn lag_plus_frontier_equals_history_length() {
    let mut rng = SimRng::from_seed(0x1A6);
    for _ in 0..128 {
        let h = gen_history(&mut rng, 40);
        let mask = gen_mask(&mut rng, h.len() as usize);
        let mut view = View::new();
        for (c, keep) in h.changes().iter().zip(&mask) {
            if *keep {
                view.observe(c.clone());
            }
        }
        assert_eq!(view.lag(&h) + view.history.frontier(), h.len());
    }
}

#[test]
fn complete_views_never_diverge() {
    let mut rng = SimRng::from_seed(0xC0);
    for _ in 0..128 {
        let h = gen_history(&mut rng, 40);
        let view = View {
            history: h.as_view(),
        };
        assert!(view.divergent_entities(&h).is_empty());
        assert!(view.interior_gaps(&h).is_empty());
        assert_eq!(view.lag(&h), 0);
    }
}

#[test]
fn interior_gaps_are_exactly_the_masked_out_prefix_changes() {
    let mut rng = SimRng::from_seed(0x6A5);
    for _ in 0..128 {
        let h = gen_history(&mut rng, 40);
        let mask = gen_mask(&mut rng, h.len() as usize);
        let mut view = View::new();
        for (c, keep) in h.changes().iter().zip(&mask) {
            if *keep {
                view.observe(c.clone());
            }
        }
        let frontier = view.history.frontier();
        let expected: Vec<u64> = h
            .changes()
            .iter()
            .zip(&mask)
            .filter(|(c, keep)| !**keep && c.seq <= frontier)
            .map(|(c, _)| c.seq)
            .collect();
        let got: Vec<u64> = view.interior_gaps(&h).iter().map(|c| c.seq).collect();
        assert_eq!(got, expected);
    }
}

#[test]
fn observability_partitions_the_history() {
    let mut rng = SimRng::from_seed(0x0B5);
    for _ in 0..128 {
        let h = gen_history(&mut rng, 40);
        let points: Vec<u64> = {
            let n = rng.below(8) as usize;
            (0..n).map(|_| rng.below(h.len() + 3)).collect()
        };
        let report = observability_report(&h, &points);
        let mut all: Vec<u64> = report
            .observable
            .iter()
            .chain(&report.unobservable)
            .copied()
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (1..=h.len()).collect();
        assert_eq!(all, expected, "every change classified exactly once");
    }
}

#[test]
fn reading_after_every_event_observes_single_entity_histories_fully() {
    // With one entity and alternating create/delete, dense reads see all.
    for n in 1u64..30 {
        let mut h = History::new();
        for i in 0..n {
            h.append(
                "x",
                if i % 2 == 0 {
                    ChangeOp::Create
                } else {
                    ChangeOp::Delete
                },
            );
        }
        let points: Vec<u64> = (1..=n).collect();
        let report = observability_report(&h, &points);
        assert!(report.unobservable.is_empty());
    }
}

#[test]
fn epoch_buffer_releases_everything_given_a_complete_feed() {
    let mut rng = SimRng::from_seed(0xE9);
    for _ in 0..128 {
        let h = gen_history(&mut rng, 60);
        let size = rng.range(1, 10);
        let mut buf = EpochBuffer::new(EpochPartition::new(size));
        for c in h.changes() {
            buf.push(c.clone());
        }
        let mut released = 0u64;
        loop {
            match buf.release_next(h.len()) {
                Ok(epoch) => {
                    // Released epochs are internally ordered.
                    let seqs: Vec<u64> = epoch.iter().map(|c| c.seq).collect();
                    let mut sorted = seqs.clone();
                    sorted.sort_unstable();
                    assert_eq!(&seqs, &sorted);
                    released += epoch.len() as u64;
                }
                Err(EpochError::NotSealed { .. }) => break,
                Err(EpochError::Incomplete { .. }) => {
                    panic!("complete feed produced an incomplete epoch");
                }
            }
        }
        // Everything except the trailing unsealed epoch is delivered.
        assert_eq!(released, (h.len() / size) * size);
    }
}

#[test]
fn epoch_buffer_detects_every_gap() {
    let mut rng = SimRng::from_seed(0x6A9);
    let mut cases = 0;
    while cases < 128 {
        let h = gen_history(&mut rng, 60);
        if h.len() < 4 {
            continue;
        }
        cases += 1;
        let size = rng.range(1, 5);
        let drop_seq = rng.range(1, h.len() + 1);
        let mut buf = EpochBuffer::new(EpochPartition::new(size));
        for c in h.changes() {
            if c.seq != drop_seq {
                buf.push(c.clone());
            }
        }
        let dropped_epoch = EpochPartition::new(size).epoch_of(drop_seq);
        let mut hit = false;
        loop {
            match buf.release_next(h.len()) {
                Ok(epoch) => {
                    // No released epoch may contain a neighbour of the gap
                    // from the same epoch.
                    for c in &epoch {
                        assert_ne!(EpochPartition::new(size).epoch_of(c.seq), dropped_epoch);
                    }
                }
                Err(EpochError::Incomplete { epoch, missing }) => {
                    assert_eq!(epoch, dropped_epoch);
                    assert!(missing.contains(&drop_seq));
                    hit = true;
                    buf.skip_epoch();
                }
                Err(EpochError::NotSealed { .. }) => break,
            }
        }
        // The gap is detected iff its epoch seals within the history.
        let seals = EpochPartition::new(size).is_sealed(dropped_epoch, h.len());
        assert_eq!(hit, seals);
    }
}
