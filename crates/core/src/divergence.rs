//! Divergence telemetry: sampled per-view lag summaries.
//!
//! The paper's central quantity is the divergence between the ground-truth
//! history `H` and a component's partial history `H′` (§4.2). The
//! [`DivergenceSummary`] is the *measured* counterpart of the formal
//! [`crate::history::View::lag`]: a harness samples `|H| − |H′|` (in store
//! revisions) for every view at a fixed cadence over simulated time and
//! folds the samples here. The summary rides along in
//! [`crate::harness::RunReport`] next to the violations, so every trial
//! reports not just *whether* an oracle fired but *how far* each view
//! strayed from the truth while it ran.
//!
//! All fields are integers; summaries compare with `==` across runs, which
//! is what the determinism tests rely on (same seed ⇒ identical telemetry,
//! bit for bit).

use std::collections::BTreeMap;

/// Sampled lag statistics for one view (an apiserver cache or a
/// component's informer frontier).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewLag {
    /// Number of samples taken.
    pub samples: u64,
    /// Samples where the view was strictly behind the truth (lag > 0).
    pub lagging: u64,
    /// Sum of sampled lags, in revisions (mean = `sum / samples`).
    pub sum: u64,
    /// Largest sampled lag, in revisions.
    pub max: u64,
}

impl ViewLag {
    /// Folds one sampled lag value in.
    pub fn record(&mut self, lag: u64) {
        self.samples += 1;
        if lag > 0 {
            self.lagging += 1;
        }
        self.sum += lag;
        self.max = self.max.max(lag);
    }

    /// Mean sampled lag in revisions (0.0 with no samples).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Fraction of samples where the view was behind the truth, in
    /// `[0, 1]` — the sampled analog of the observability-gap fraction.
    pub fn gap_fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.lagging as f64 / self.samples as f64
        }
    }
}

/// Per-view divergence over one run, keyed by component name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DivergenceSummary {
    views: BTreeMap<String, ViewLag>,
}

impl DivergenceSummary {
    /// An empty summary (also [`Default`]).
    pub fn new() -> DivergenceSummary {
        DivergenceSummary::default()
    }

    /// `true` if nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Folds one sampled lag for `component` in.
    pub fn record(&mut self, component: &str, lag: u64) {
        // Fast path first: after the opening sample of each view, recording
        // never allocates (the keyed `entry` API would build a `String` per
        // sample just to look it up).
        if let Some(v) = self.views.get_mut(component) {
            v.record(lag);
        } else {
            self.views
                .entry(component.to_string())
                .or_default()
                .record(lag);
        }
    }

    /// The stats for one component, if sampled.
    pub fn view(&self, component: &str) -> Option<&ViewLag> {
        self.views.get(component)
    }

    /// All `(component, stats)` pairs, in component order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ViewLag)> {
        self.views.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Largest lag sampled anywhere.
    pub fn max_lag(&self) -> u64 {
        self.views.values().map(|v| v.max).max().unwrap_or(0)
    }

    /// Mean lag across all samples of all views.
    pub fn mean_lag(&self) -> f64 {
        let (sum, n) = self
            .views
            .values()
            .fold((0u64, 0u64), |(s, n), v| (s + v.sum, n + v.samples));
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Renders the summary as a deterministic JSON object keyed by
    /// component, in component order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.views.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Component names come from actor names: plain identifiers, no
            // characters needing JSON escapes.
            out.push_str(&format!(
                "\"{name}\":{{\"samples\":{},\"lagging\":{},\"sum\":{},\"max\":{}}}",
                v.samples, v.lagging, v.sum, v.max
            ));
        }
        out.push('}');
        out
    }

    /// Renders an aligned text table (deterministic: component order).
    pub fn render(&self) -> String {
        if self.views.is_empty() {
            return "(no divergence samples)\n".to_string();
        }
        let wide = self
            .views
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(4)
            .max("view".len());
        let mut out = format!(
            "{:<wide$}  {:>8}  {:>8}  {:>8}  {:>7}\n",
            "view", "samples", "max-lag", "mean", "gap"
        );
        for (name, v) in &self.views {
            out.push_str(&format!(
                "{name:<wide$}  {:>8}  {:>8}  {:>8.2}  {:>6.1}%\n",
                v.samples,
                v.max,
                v.mean(),
                v.gap_fraction() * 100.0,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_all_zeroes() {
        let d = DivergenceSummary::new();
        assert!(d.is_empty());
        assert_eq!(d.max_lag(), 0);
        assert_eq!(d.mean_lag(), 0.0);
        assert!(d.view("x").is_none());
        assert!(d.render().contains("no divergence samples"));
    }

    #[test]
    fn record_accumulates_per_view() {
        let mut d = DivergenceSummary::new();
        d.record("apiserver-1", 0);
        d.record("apiserver-1", 4);
        d.record("apiserver-1", 2);
        d.record("kubelet-node-1", 0);
        let v = d.view("apiserver-1").expect("sampled");
        assert_eq!(v.samples, 3);
        assert_eq!(v.lagging, 2);
        assert_eq!(v.max, 4);
        assert_eq!(v.sum, 6);
        assert!((v.mean() - 2.0).abs() < 1e-9);
        assert!((v.gap_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(d.max_lag(), 4);
        assert!((d.mean_lag() - 6.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn summaries_compare_equal_across_identical_runs() {
        let run = || {
            let mut d = DivergenceSummary::new();
            for (c, l) in [("a", 1), ("b", 0), ("a", 3)] {
                d.record(c, l);
            }
            d
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn render_lists_views_in_name_order() {
        let mut d = DivergenceSummary::new();
        d.record("zeta", 1);
        d.record("alpha", 2);
        let table = d.render();
        let a = table.find("alpha").expect("alpha row");
        let z = table.find("zeta").expect("zeta row");
        assert!(a < z, "rows must be name-ordered:\n{table}");
        assert!(table.contains("gap"));
    }
}
