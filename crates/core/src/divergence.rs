//! Divergence telemetry: sampled per-view lag summaries.
//!
//! The paper's central quantity is the divergence between the ground-truth
//! history `H` and a component's partial history `H′` (§4.2). The
//! [`DivergenceSummary`] is the *measured* counterpart of the formal
//! [`crate::history::View::lag`]: a harness samples `|H| − |H′|` (in store
//! revisions) for every view at a fixed cadence over simulated time and
//! folds the samples here. The summary rides along in
//! [`crate::harness::RunReport`] next to the violations, so every trial
//! reports not just *whether* an oracle fired but *how far* each view
//! strayed from the truth while it ran.
//!
//! All fields are integers; summaries compare with `==` across runs, which
//! is what the determinism tests rely on (same seed ⇒ identical telemetry,
//! bit for bit).
//!
//! ## Storage and the incremental fast path
//!
//! Internally the summary is a slot vector keyed by an interned view name:
//! a harness registers each view once ([`DivergenceSummary::slot`]) and
//! then folds samples in O(1) by dense id ([`DivergenceSummary::record_slot`])
//! — no string hashing or tree descent per sample. The string-keyed
//! [`DivergenceSummary::record`] survives as a thin wrapper. All exported
//! orders (JSON, tables, iteration, equality) sort by view name at render
//! time, so the output is byte-identical to the old name-keyed map
//! regardless of registration order.
//!
//! [`LagSampler`] carries the companion dirty-set: it remembers each
//! view's previous lag so a harness can skip re-publishing unchanged
//! gauge values and touch only views whose frontier actually moved — the
//! sampling cost scales with churn, not with how many objects the views
//! hold (§"Scaling the world", DESIGN.md). Soundness: histograms are still
//! fed every quantum (sample *counts* are part of the report), and a
//! gauge records only its last value, so skipping an overwrite with an
//! equal value is observationally free.

use std::collections::BTreeMap;

/// Sampled lag statistics for one view (an apiserver cache or a
/// component's informer frontier).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewLag {
    /// Number of samples taken.
    pub samples: u64,
    /// Samples where the view was strictly behind the truth (lag > 0).
    pub lagging: u64,
    /// Sum of sampled lags, in revisions (mean = `sum / samples`).
    pub sum: u64,
    /// Largest sampled lag, in revisions.
    pub max: u64,
}

impl ViewLag {
    /// Folds one sampled lag value in.
    pub fn record(&mut self, lag: u64) {
        self.samples += 1;
        if lag > 0 {
            self.lagging += 1;
        }
        self.sum += lag;
        self.max = self.max.max(lag);
    }

    /// Mean sampled lag in revisions (0.0 with no samples).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Fraction of samples where the view was behind the truth, in
    /// `[0, 1]` — the sampled analog of the observability-gap fraction.
    pub fn gap_fraction(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.lagging as f64 / self.samples as f64
        }
    }
}

/// A dense view id handed out by [`DivergenceSummary::slot`].
pub type ViewSlot = u32;

/// Per-view divergence over one run, keyed by component name.
///
/// (Reports cross threads in the parallel trial pool, so the name table is
/// plain `String`s rather than the sim-side `Rc`-backed interner.)
#[derive(Debug, Clone, Default)]
pub struct DivergenceSummary {
    /// Name → slot id (sorted — the canonical export order).
    index: BTreeMap<String, ViewSlot>,
    /// Stats by slot id.
    slots: Vec<ViewLag>,
}

impl DivergenceSummary {
    /// An empty summary (also [`Default`]).
    pub fn new() -> DivergenceSummary {
        DivergenceSummary::default()
    }

    /// `true` if nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Registers (or finds) the slot for `component`. Call once per view,
    /// then fold samples in by id with [`DivergenceSummary::record_slot`].
    pub fn slot(&mut self, component: &str) -> ViewSlot {
        if let Some(&slot) = self.index.get(component) {
            return slot;
        }
        let slot = self.slots.len() as ViewSlot;
        self.index.insert(component.to_string(), slot);
        self.slots.push(ViewLag::default());
        slot
    }

    /// Folds one sampled lag into a registered slot — O(1), no hashing.
    ///
    /// # Panics
    ///
    /// Panics if `slot` did not come from [`DivergenceSummary::slot`] on
    /// this summary.
    pub fn record_slot(&mut self, slot: ViewSlot, lag: u64) {
        self.slots[slot as usize].record(lag);
    }

    /// Folds one sampled lag for `component` in (string-keyed wrapper
    /// around [`DivergenceSummary::record_slot`]).
    pub fn record(&mut self, component: &str, lag: u64) {
        let slot = self.slot(component);
        self.record_slot(slot, lag);
    }

    /// The stats for one component, if sampled.
    pub fn view(&self, component: &str) -> Option<&ViewLag> {
        self.index
            .get(component)
            .map(|&slot| &self.slots[slot as usize])
    }

    /// All `(component, stats)` pairs, sorted by component name — the
    /// name-keyed index is already in that order.
    fn sorted(&self) -> impl Iterator<Item = (&str, &ViewLag)> {
        self.index
            .iter()
            .map(|(name, &slot)| (name.as_str(), &self.slots[slot as usize]))
    }

    /// All `(component, stats)` pairs, in component order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ViewLag)> {
        self.sorted()
    }

    /// Largest lag sampled anywhere.
    pub fn max_lag(&self) -> u64 {
        self.slots.iter().map(|v| v.max).max().unwrap_or(0)
    }

    /// Mean lag across all samples of all views.
    pub fn mean_lag(&self) -> f64 {
        let (sum, n) = self
            .slots
            .iter()
            .fold((0u64, 0u64), |(s, n), v| (s + v.sum, n + v.samples));
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Renders the summary as a deterministic JSON object keyed by
    /// component, in component order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, v)) in self.sorted().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Component names come from actor names: plain identifiers, no
            // characters needing JSON escapes.
            out.push_str(&format!(
                "\"{name}\":{{\"samples\":{},\"lagging\":{},\"sum\":{},\"max\":{}}}",
                v.samples, v.lagging, v.sum, v.max
            ));
        }
        out.push('}');
        out
    }

    /// Renders an aligned text table (deterministic: component order).
    pub fn render(&self) -> String {
        if self.slots.is_empty() {
            return "(no divergence samples)\n".to_string();
        }
        let wide = self
            .index
            .keys()
            .map(|name| name.len())
            .max()
            .unwrap_or(4)
            .max("view".len());
        let mut out = format!(
            "{:<wide$}  {:>8}  {:>8}  {:>8}  {:>7}\n",
            "view", "samples", "max-lag", "mean", "gap"
        );
        for (name, v) in self.sorted() {
            out.push_str(&format!(
                "{name:<wide$}  {:>8}  {:>8}  {:>8.2}  {:>6.1}%\n",
                v.samples,
                v.max,
                v.mean(),
                v.gap_fraction() * 100.0,
            ));
        }
        out
    }
}

// Equality by (sorted name, stats) content: two summaries that recorded
// the same views and samples compare equal even if the views were first
// seen in different orders (slot ids are an internal layout detail).
impl PartialEq for DivergenceSummary {
    fn eq(&self, other: &DivergenceSummary) -> bool {
        self.index.len() == other.index.len()
            && self
                .sorted()
                .zip(other.sorted())
                .all(|((an, av), (bn, bv))| an == bn && av == bv)
    }
}
impl Eq for DivergenceSummary {}

/// The dirty-set companion to [`DivergenceSummary`]: remembers each view's
/// previously sampled lag so a harness can detect which views actually
/// moved this quantum and skip republishing unchanged gauge values.
///
/// Indices are the harness's own dense view numbering (typically the order
/// it walks its actors in), not [`ViewSlot`]s — keeping the sampler usable
/// before any sample lands in the summary.
#[derive(Debug, Clone, Default)]
pub struct LagSampler {
    last: Vec<Option<u64>>,
}

impl LagSampler {
    /// A sampler pre-sized for `views` views (grows on demand).
    pub fn with_views(views: usize) -> LagSampler {
        LagSampler {
            last: vec![None; views],
        }
    }

    /// Records view `i`'s current lag. Returns `true` when the value
    /// differs from the previous sample (the first sample is always a
    /// change) — the signal that last-value outputs (gauges) need a write.
    pub fn changed(&mut self, i: usize, lag: u64) -> bool {
        if i >= self.last.len() {
            self.last.resize(i + 1, None);
        }
        let dirty = self.last[i] != Some(lag);
        self.last[i] = Some(lag);
        dirty
    }

    /// Forgets all previous samples (every view reads as changed next
    /// quantum). Use after events that invalidate the memory wholesale,
    /// e.g. a harness-level restart.
    pub fn reset(&mut self) {
        for v in &mut self.last {
            *v = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_all_zeroes() {
        let d = DivergenceSummary::new();
        assert!(d.is_empty());
        assert_eq!(d.max_lag(), 0);
        assert_eq!(d.mean_lag(), 0.0);
        assert!(d.view("x").is_none());
        assert!(d.render().contains("no divergence samples"));
    }

    #[test]
    fn record_accumulates_per_view() {
        let mut d = DivergenceSummary::new();
        d.record("apiserver-1", 0);
        d.record("apiserver-1", 4);
        d.record("apiserver-1", 2);
        d.record("kubelet-node-1", 0);
        let v = d.view("apiserver-1").expect("sampled");
        assert_eq!(v.samples, 3);
        assert_eq!(v.lagging, 2);
        assert_eq!(v.max, 4);
        assert_eq!(v.sum, 6);
        assert!((v.mean() - 2.0).abs() < 1e-9);
        assert!((v.gap_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(d.max_lag(), 4);
        assert!((d.mean_lag() - 6.0 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn summaries_compare_equal_across_identical_runs() {
        let run = || {
            let mut d = DivergenceSummary::new();
            for (c, l) in [("a", 1), ("b", 0), ("a", 3)] {
                d.record(c, l);
            }
            d
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn render_lists_views_in_name_order() {
        let mut d = DivergenceSummary::new();
        d.record("zeta", 1);
        d.record("alpha", 2);
        let table = d.render();
        let a = table.find("alpha").expect("alpha row");
        let z = table.find("zeta").expect("zeta row");
        assert!(a < z, "rows must be name-ordered:\n{table}");
        assert!(table.contains("gap"));
    }

    #[test]
    fn slot_api_matches_string_api() {
        let mut by_name = DivergenceSummary::new();
        let mut by_slot = DivergenceSummary::new();
        // Register in reverse name order: slot ids then disagree with the
        // exported (sorted) order, which must not matter.
        let z = by_slot.slot("zeta");
        let a = by_slot.slot("alpha");
        for (name, slot, lag) in [("zeta", z, 3), ("alpha", a, 0), ("zeta", z, 1)] {
            by_name.record(name, lag);
            by_slot.record_slot(slot, lag);
        }
        assert_eq!(by_name, by_slot);
        assert_eq!(by_name.to_json(), by_slot.to_json());
        assert_eq!(by_name.render(), by_slot.render());
        assert_eq!(by_slot.slot("zeta"), z, "slot is idempotent");
    }

    #[test]
    fn equality_ignores_registration_order() {
        let mut ab = DivergenceSummary::new();
        ab.record("a", 1);
        ab.record("b", 2);
        let mut ba = DivergenceSummary::new();
        ba.record("b", 2);
        ba.record("a", 1);
        assert_eq!(ab, ba);
        ba.record("a", 9);
        assert_ne!(ab, ba);
    }

    #[test]
    fn sampler_reports_changes_only() {
        let mut s = LagSampler::with_views(2);
        assert!(s.changed(0, 5), "first sample is a change");
        assert!(!s.changed(0, 5), "same value is clean");
        assert!(s.changed(0, 6), "moved value is dirty");
        assert!(s.changed(1, 0), "independent per view");
        assert!(!s.changed(1, 0));
        s.reset();
        assert!(s.changed(0, 6), "reset forgets history");
        assert!(s.changed(7, 1), "grows on demand");
    }
}
