//! Causality-guided candidate generation — §7's automation loop.
//!
//! "The key challenge is to perturb events and trigger failures in a way
//! that efficiently covers the large state space. To do so, recording
//! causal relationships between events can be useful. For example,
//! perturbing events that are causally related to a component's action are
//! likely to trigger bugs."
//!
//! The loop implemented here:
//!
//! 1. run the workload once with no faults and record the trace;
//! 2. find the *decisions* — the annotations components advertise
//!    (pod starts, PVC releases, binds, decommissions);
//! 3. for each decision, use the [`crate::CausalGraph`] to find the
//!    view-update notifications that causally precede it;
//! 4. turn each such notification into concrete, replayable
//!    [`Candidate`] perturbations (drop it; crash the decider right after
//!    deciding), deduplicate, and order nearest-cause-first;
//! 5. re-run the workload once per candidate; oracles judge each run.
//!
//! Candidates are expressed *positionally* ("the nth view-update sent to
//! actor A"), which is replayable because the simulation is deterministic:
//! the prefix of the run before the perturbation point is identical to the
//! reference run.

use std::collections::BTreeSet;

use ph_lint::modelcheck::{Letter, Witness};
use ph_sim::{ActorId, Duration, Envelope, SimTime, Trace, TraceEventKind, Verdict, World};

use crate::causality::CausalGraph;
use crate::perturb::{Strategy, Targets};

/// The abstract *shape* of perturbation a model-checker witness letter
/// calls for, stripped of scenario specifics. The witness→strategy bridge
/// (in ph-scenarios) maps each shape onto concrete, scenario-anchored
/// [`Strategy`] instances; everything here is scenario-independent so the
/// compilation is reusable and testable without a cluster.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum PriorShape {
    /// Hold or delay a cache's view of `resource` past a write.
    DelayCache {
        /// The stale-able resource, e.g. `pods`.
        resource: String,
    },
    /// Reorder a view update against the consuming decision — a shorter
    /// hold placed right at a decision boundary.
    ReorderUpdateConsume {
        /// The raced resource.
        resource: String,
    },
    /// Drop or black out notifications carrying `resource` updates.
    DropNotification {
        /// The silenced resource.
        resource: String,
    },
    /// Land the component on a different (lagging) upstream.
    UpstreamSwitch,
    /// Crash the component so it restarts against a stale upstream and
    /// replays its view from there.
    CrashRestartReplay,
    /// Saturate the links feeding `resource`'s view with offered load so
    /// queueing delay and tail drops age it — no fault injection at all.
    TrafficSurge {
        /// The congestible resource.
        resource: String,
    },
}

impl PriorShape {
    /// Compiles one abstract letter to its shape.
    pub fn from_letter(letter: &Letter) -> PriorShape {
        match letter {
            Letter::DelayCache(r) => PriorShape::DelayCache {
                resource: r.clone(),
            },
            Letter::ReorderUpdateConsume(r) => PriorShape::ReorderUpdateConsume {
                resource: r.clone(),
            },
            Letter::DropNotification(r) => PriorShape::DropNotification {
                resource: r.clone(),
            },
            Letter::UpstreamSwitch => PriorShape::UpstreamSwitch,
            Letter::CrashRestartReplay => PriorShape::CrashRestartReplay,
            Letter::TrafficSurge(r) => PriorShape::TrafficSurge {
                resource: r.clone(),
            },
        }
    }
}

/// Compiles minimal witnesses into an ordered, deduplicated list of prior
/// shapes: witnesses are already minimal and canonically ordered, so the
/// first shapes are the ones the model checker considers shortest paths to
/// a hazard — guided search tries them first.
pub fn witness_priors(witnesses: &[&Witness]) -> Vec<PriorShape> {
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    for w in witnesses {
        for letter in &w.schedule {
            let shape = PriorShape::from_letter(letter);
            if seen.insert(shape.clone()) {
                out.push(shape);
            }
        }
    }
    out
}

/// A concrete, replayable perturbation derived from a reference trace.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Candidate {
    /// Drop the `n`th view-update notification sent to `dst` and the
    /// `burst - 1` matching sends after it (0-based, counted over sends
    /// matching [`Targets::notify_kinds`]). The burst matters: watch
    /// streams are loss-detecting, so a single drop is healed by a replay —
    /// a *persistent* observability gap needs the replays dropped too.
    DropNth {
        /// The receiving component/cache.
        dst: ActorId,
        /// Position in `dst`'s notification stream.
        n: u64,
        /// How many consecutive matching sends to drop.
        burst: u64,
    },
    /// Crash `actor` right after its `n`th `label` decision; restart after
    /// `down_ms`.
    CrashAfterDecision {
        /// The deciding component.
        actor: ActorId,
        /// Decision annotation label.
        label: String,
        /// Which occurrence (0-based).
        n: u64,
        /// Downtime in milliseconds.
        down_ms: u64,
    },
}

impl Candidate {
    /// The candidate's planned schedule for canonical-class
    /// fingerprinting ([`crate::canon::plan_class`]): one op whose anchor
    /// carries every behavioral parameter, so equal classes mean
    /// behaviorally identical candidates.
    pub fn planned_ops(&self) -> Vec<crate::canon::PlannedOp> {
        match self {
            Candidate::DropNth { dst, n, burst } => vec![crate::canon::PlannedOp::new(
                Letter::DropNotification(format!("component:{dst}")),
                format!("#{n}+{burst}"),
            )],
            Candidate::CrashAfterDecision {
                actor,
                label,
                n,
                down_ms,
            } => vec![crate::canon::PlannedOp::new(
                Letter::CrashRestartReplay,
                format!("component:{actor}@{label}#{n}+{down_ms}ms"),
            )],
        }
    }
}

impl std::fmt::Display for Candidate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Candidate::DropNth { dst, n, burst } => {
                if *burst == u64::MAX {
                    write!(f, "black out notifications to {dst} from #{n}")
                } else {
                    write!(f, "drop notifications #{n}..#{} to {dst}", n + burst)
                }
            }
            Candidate::CrashAfterDecision {
                actor, label, n, ..
            } => {
                write!(f, "crash {actor} after its {label:?} decision #{n}")
            }
        }
    }
}

/// Enumerates candidates from a reference (fault-free) trace.
///
/// `decision_labels` selects which annotations count as decisions. For each
/// decision, the `depth` nearest causally-preceding view-update sends are
/// turned into [`Candidate::DropNth`] candidates (with a burst of 4, so
/// loss-detection replays are suppressed too), and the decision itself
/// into a [`Candidate::CrashAfterDecision`]. Candidates are deduplicated
/// and returned in discovery order (earliest decisions first, nearest
/// causes first).
pub fn candidates(
    trace: &Trace,
    targets: &Targets,
    decision_labels: &[&str],
    depth: usize,
    down_ms: u64,
) -> Vec<Candidate> {
    const BURST: u64 = 4;
    let graph = CausalGraph::from_trace(trace);

    // Index every view-update send: trace seq → (dst, ordinal at dst).
    let mut ordinal_at: std::collections::BTreeMap<u64, (ActorId, u64)> =
        std::collections::BTreeMap::new();
    let mut per_dst: std::collections::BTreeMap<ActorId, u64> = std::collections::BTreeMap::new();
    let interesting: BTreeSet<ActorId> = targets
        .caches
        .iter()
        .chain(targets.components.iter())
        .copied()
        .collect();
    for e in trace.iter() {
        if let TraceEventKind::MessageSent { dst, kind, .. } = &e.kind {
            if targets.notify_kinds.iter().any(|k| k == kind) && interesting.contains(dst) {
                let n = per_dst.entry(*dst).or_insert(0);
                ordinal_at.insert(e.seq, (*dst, *n));
                *n += 1;
            }
        }
    }

    // Decisions, with per-(actor, label) occurrence counters.
    let mut decision_counter: std::collections::BTreeMap<(ActorId, String), u64> =
        std::collections::BTreeMap::new();
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    for e in trace.iter() {
        let TraceEventKind::Annotation { actor, label, .. } = &e.kind else {
            continue;
        };
        if !decision_labels.contains(&label.as_str()) {
            continue;
        }
        let occurrence = {
            let c = decision_counter
                .entry((*actor, label.to_string()))
                .or_insert(0);
            let o = *c;
            *c += 1;
            o
        };
        // Crash the decider right after this decision.
        let crash = Candidate::CrashAfterDecision {
            actor: *actor,
            label: label.to_string(),
            n: occurrence,
            down_ms,
        };
        if seen.insert(crash.clone()) {
            out.push(crash);
        }
        // Drop the nearest causally-preceding view updates.
        let mut causes: Vec<u64> = graph
            .causes_of(e.seq)
            .into_iter()
            .filter(|s| ordinal_at.contains_key(s))
            .collect();
        causes.sort_unstable_by(|a, b| b.cmp(a)); // nearest (latest) first
        for s in causes.into_iter().take(depth) {
            let (dst, n) = ordinal_at[&s];
            // Two gap shapes per cause: a short burst (a transient loss,
            // replays suppressed) and a blackout (a persistent link fault
            // from this notification onward).
            for burst in [BURST, u64::MAX] {
                let c = Candidate::DropNth { dst, n, burst };
                if seen.insert(c.clone()) {
                    out.push(c);
                }
            }
        }
    }
    out
}

/// Executes one [`Candidate`] as a perturbation strategy.
#[derive(Debug, Clone)]
pub struct CandidateStrategy {
    /// The candidate being exercised.
    pub candidate: Candidate,
    cursor: usize,
    fired: bool,
}

impl CandidateStrategy {
    /// Wraps a candidate.
    pub fn new(candidate: Candidate) -> CandidateStrategy {
        CandidateStrategy {
            candidate,
            cursor: 0,
            fired: false,
        }
    }
}

impl Strategy for CandidateStrategy {
    fn name(&self) -> String {
        format!("auto[{}]", self.candidate)
    }

    fn planned_schedule(&self) -> Option<Vec<crate::canon::PlannedOp>> {
        Some(self.candidate.planned_ops())
    }

    fn setup(&mut self, world: &mut World, targets: &Targets) {
        if let Candidate::DropNth { dst, n, burst } = self.candidate {
            let kinds = targets.notify_kinds.clone();
            // Ordinals are counted from the start of the run (that is how
            // the reference trace numbered them), but the interceptor only
            // sees sends from now on — pre-load the counter with matching
            // sends that already happened (workload seeding precedes
            // strategy setup).
            let mut count = world
                .trace()
                .iter()
                .filter(|e| {
                    matches!(&e.kind, TraceEventKind::MessageSent { dst: d, kind, .. }
                        if *d == dst && kinds.iter().any(|k| k == kind))
                })
                .count() as u64;
            world.set_interceptor(move |env: &Envelope, _now: SimTime| {
                if env.dst == dst && kinds.iter().any(|k| k == env.kind_short()) {
                    let mine = count;
                    count += 1;
                    if mine >= n && mine - n < burst {
                        return Verdict::Drop;
                    }
                }
                Verdict::Pass
            });
        }
    }

    fn tick(&mut self, world: &mut World, _targets: &Targets) {
        let Candidate::CrashAfterDecision {
            actor,
            ref label,
            n,
            down_ms,
        } = self.candidate
        else {
            return;
        };
        if self.fired {
            return;
        }
        let mut occurrence = 0u64;
        let mut hit = false;
        {
            let events = world.trace().events();
            // Count occurrences from the start (cheap enough at scenario
            // scale, and immune to cursor drift across restarts).
            let _ = self.cursor;
            for e in events {
                if let TraceEventKind::Annotation {
                    actor: a, label: l, ..
                } = &e.kind
                {
                    if *a == actor && l == label {
                        if occurrence == n {
                            hit = true;
                            break;
                        }
                        occurrence += 1;
                    }
                }
            }
        }
        if hit {
            self.fired = true;
            let now = world.now();
            if !world.is_crashed(actor) {
                world.crash(actor);
            }
            world.schedule_restart(actor, now + Duration::millis(down_ms));
        }
    }
}

/// The result of exploring one candidate.
#[derive(Debug, Clone)]
pub struct AutoFinding {
    /// The candidate that was exercised.
    pub candidate: Candidate,
    /// Whether it triggered a violation.
    pub violated: bool,
    /// The violations' descriptions, if any.
    pub violations: Vec<String>,
    /// Trace events the candidate's run generated (hunt telemetry).
    pub events: u64,
    /// Simulated nanoseconds the run covered — the time of the last trace
    /// event (hunt telemetry).
    pub sim_ns: u64,
}

impl AutoFinding {
    fn from_run(candidate: Candidate, violations: Vec<String>, trace: &Trace) -> AutoFinding {
        AutoFinding {
            candidate,
            violated: !violations.is_empty(),
            violations,
            events: trace.events().len() as u64,
            sim_ns: trace.events().last().map(|e| e.at.0).unwrap_or(0),
        }
    }
}

/// Canonical-class census of one autoguide run's candidate batch: how
/// many distinct [`crate::canon::plan_class`] fingerprints the derived
/// candidates span, and how many candidates were skipped as duplicates of
/// an already-kept class before spending any run budget on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassCensus {
    /// Distinct canonical schedule classes among the derived candidates.
    pub distinct_classes: u32,
    /// Candidates skipped as canonical duplicates of an earlier class.
    pub deduped_trials: u32,
}

/// Keeps one representative candidate per canonical schedule class, in
/// first-seen order, and counts what was collapsed.
fn dedup_by_class(all: Vec<Candidate>) -> (Vec<Candidate>, ClassCensus) {
    let mut census = ClassCensus::default();
    let mut seen = BTreeSet::new();
    let kept = all
        .into_iter()
        .filter(|c| {
            if seen.insert(crate::canon::plan_class(&c.planned_ops())) {
                census.distinct_classes += 1;
                true
            } else {
                census.deduped_trials += 1;
                false
            }
        })
        .collect();
    (kept, census)
}

/// Runs the full §7 loop: reference run → candidates → canonical-class
/// dedup → one run per surviving candidate (up to `budget`), collecting
/// what each found.
///
/// `run` executes the scenario under a strategy and returns
/// `(violations, trace)`; the first call uses [`crate::perturb::NoFault`]
/// to obtain the reference trace. The returned `usize` is the total
/// number of candidates derived before dedup and budgeting.
pub fn explore<R>(
    run: R,
    targets_of: impl Fn(&Trace) -> Targets,
    decision_labels: &[&str],
    depth: usize,
    budget: usize,
) -> (Vec<AutoFinding>, usize, ClassCensus)
where
    R: Fn(&mut dyn Strategy) -> (Vec<String>, Trace),
{
    let mut nofault = crate::perturb::NoFault;
    let (_, reference) = run(&mut nofault);
    let targets = targets_of(&reference);
    let all = candidates(&reference, &targets, decision_labels, depth, 300);
    let total = all.len();
    let (unique, census) = dedup_by_class(all);
    let mut findings = Vec::new();
    for candidate in unique.into_iter().take(budget) {
        let mut strategy = CandidateStrategy::new(candidate.clone());
        let (violations, trace) = run(&mut strategy);
        findings.push(AutoFinding::from_run(candidate, violations, &trace));
    }
    (findings, total, census)
}

/// Parallel twin of [`explore`]: the reference run stays sequential (it is
/// one run), candidate enumeration is a pure function of the reference
/// trace, and the per-candidate re-runs fan out across the
/// [`crate::parallel`] pool. Findings come back **in candidate order**
/// (merged by index, not completion), so the result is identical to the
/// sequential loop's at any thread count.
pub fn explore_parallel<R>(
    run: R,
    targets_of: impl Fn(&Trace) -> Targets,
    decision_labels: &[&str],
    depth: usize,
    budget: usize,
    threads: usize,
) -> (Vec<AutoFinding>, usize, ClassCensus)
where
    R: Fn(&mut dyn Strategy) -> (Vec<String>, Trace) + Sync,
{
    let mut nofault = crate::perturb::NoFault;
    let (_, reference) = run(&mut nofault);
    let targets = targets_of(&reference);
    let all = candidates(&reference, &targets, decision_labels, depth, 300);
    let total = all.len();
    let (unique, census) = dedup_by_class(all);
    let tried: Vec<Candidate> = unique.into_iter().take(budget).collect();
    let findings = crate::parallel::run_indexed(threads, tried.len(), |i| {
        let candidate = tried[i].clone();
        let mut strategy = CandidateStrategy::new(candidate.clone());
        let (violations, trace) = run(&mut strategy);
        AutoFinding::from_run(candidate, violations, &trace)
    });
    (findings, total, census)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_sim::{Actor, AnyMsg, Ctx, TimerId, WorldConfig};

    /// Feeder sends View(i) every 10ms; Decider annotates "acted" upon
    /// receiving View(3).
    struct Feeder {
        peer: ActorId,
        i: u64,
    }
    #[derive(Debug)]
    struct View(u64);
    struct Decider;

    impl Actor for Feeder {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(Duration::millis(10), 0);
        }
        fn on_message(&mut self, _f: ActorId, _m: AnyMsg, _c: &mut Ctx) {}
        fn on_timer(&mut self, _t: TimerId, _tag: u64, ctx: &mut Ctx) {
            ctx.send(self.peer, View(self.i));
            self.i += 1;
            ctx.set_timer(Duration::millis(10), 0);
        }
    }
    impl Actor for Decider {
        fn on_start(&mut self, _ctx: &mut Ctx) {}
        fn on_message(&mut self, _f: ActorId, m: AnyMsg, ctx: &mut Ctx) {
            if let Some(View(3)) = m.downcast_ref::<View>() {
                ctx.annotate("acted", "on view 3");
            }
        }
    }

    fn build() -> (World, Targets, ActorId) {
        let mut w = World::new(WorldConfig::default(), 5);
        let d = w.spawn("decider", Decider);
        let _f = w.spawn("feeder", Feeder { peer: d, i: 0 });
        let targets = Targets {
            store_nodes: [].into(),
            caches: [].into(),
            components: [d].into(),
            notify_kinds: ["View".to_string()].into(),
            horizon: Duration::millis(200),
        };
        (w, targets, d)
    }

    #[test]
    fn witness_priors_dedupe_in_witness_order() {
        use ph_lint::summary::PatternClass;
        let w = |schedule: Vec<Letter>, class| Witness {
            component: "c".into(),
            action: "a".into(),
            class,
            path: "p".into(),
            schedule,
            detail: "d".into(),
        };
        let w1 = w(
            vec![Letter::DelayCache("pods".into())],
            PatternClass::Staleness,
        );
        let w2 = w(
            vec![Letter::DelayCache("pods".into()), Letter::UpstreamSwitch],
            PatternClass::TimeTravel,
        );
        let w3 = w(
            vec![Letter::DropNotification("leases".into())],
            PatternClass::ObservabilityGap,
        );
        let priors = witness_priors(&[&w1, &w2, &w3]);
        assert_eq!(
            priors,
            vec![
                PriorShape::DelayCache {
                    resource: "pods".into()
                },
                PriorShape::UpstreamSwitch,
                PriorShape::DropNotification {
                    resource: "leases".into()
                },
            ]
        );
    }

    #[test]
    fn candidates_cover_the_causal_notifications() {
        let (mut w, targets, d) = build();
        w.run_for(Duration::millis(100));
        let cands = candidates(w.trace(), &targets, &["acted"], 3, 100);
        // One crash candidate + up to 3 nearest drops.
        assert!(cands.iter().any(|c| matches!(
            c,
            Candidate::CrashAfterDecision { actor, n: 0, .. } if *actor == d
        )));
        let drops: Vec<&Candidate> = cands
            .iter()
            .filter(|c| matches!(c, Candidate::DropNth { .. }))
            .collect();
        assert_eq!(drops.len(), 6, "two gap shapes per cause: {cands:?}");
        // The nearest cause is the delivery of View(3) itself = ordinal 3.
        assert!(drops
            .iter()
            .any(|c| matches!(c, Candidate::DropNth { n: 3, burst: 4, .. })));
        assert!(drops.iter().any(|c| matches!(
            c,
            Candidate::DropNth {
                burst: u64::MAX,
                ..
            }
        )));
    }

    #[test]
    fn drop_candidate_suppresses_the_decision() {
        let (mut w, targets, _d) = build();
        w.run_for(Duration::millis(100));
        let cands = candidates(w.trace(), &targets, &["acted"], 1, 100);
        let drop = cands
            .iter()
            .find(|c| matches!(c, Candidate::DropNth { n: 3, .. }))
            .expect("nearest drop")
            .clone();

        // Re-run with the candidate applied: the decision must vanish.
        let (mut w2, targets2, _) = build();
        let mut strategy = CandidateStrategy::new(drop);
        strategy.setup(&mut w2, &targets2);
        w2.run_for(Duration::millis(100));
        assert_eq!(w2.trace().annotations("acted").count(), 0);
    }

    #[test]
    fn crash_candidate_fires_once_after_the_decision() {
        let (mut w, targets, d) = build();
        let mut strategy = CandidateStrategy::new(Candidate::CrashAfterDecision {
            actor: d,
            label: "acted".into(),
            n: 0,
            down_ms: 20,
        });
        strategy.setup(&mut w, &targets);
        for _ in 0..20 {
            w.run_for(Duration::millis(10));
            strategy.tick(&mut w, &targets);
        }
        assert_eq!(w.incarnation(d), 1, "one crash+restart");
        assert_eq!(w.trace().annotations("acted").count(), 1);
    }

    #[test]
    fn explore_runs_reference_plus_budgeted_candidates() {
        let run = |strategy: &mut dyn Strategy| {
            let (mut w, targets, _) = build();
            strategy.setup(&mut w, &targets);
            for _ in 0..12 {
                w.run_for(Duration::millis(10));
                strategy.tick(&mut w, &targets);
            }
            strategy.teardown(&mut w);
            // "Oracle": the decision must happen.
            let violated = w.trace().annotations("acted").count() == 0;
            let violations = if violated {
                vec!["decision suppressed".to_string()]
            } else {
                Vec::new()
            };
            (violations, w.trace().clone())
        };
        let targets_of = |_: &Trace| {
            let (w, targets, _) = build();
            drop(w);
            targets
        };
        let (findings, total, census) = explore(run, targets_of, &["acted"], 2, 10);
        assert!(total >= 3);
        // Anchors carry every parameter, so exact-deduped candidates all
        // land in distinct classes; the census must agree.
        assert_eq!(census.distinct_classes as usize, total);
        assert_eq!(census.deduped_trials, 0);
        assert!(
            findings.iter().any(|f| f.violated),
            "some candidate must suppress the decision: {findings:?}"
        );
    }

    #[test]
    fn candidate_classes_track_every_behavioral_parameter() {
        let (w, _, d) = build();
        drop(w);
        let drop_a = Candidate::DropNth {
            dst: d,
            n: 3,
            burst: 4,
        };
        let drop_b = Candidate::DropNth {
            dst: d,
            n: 3,
            burst: u64::MAX,
        };
        let crash = Candidate::CrashAfterDecision {
            actor: d,
            label: "acted".into(),
            n: 0,
            down_ms: 300,
        };
        let class = |c: &Candidate| crate::canon::plan_class(&c.planned_ops());
        assert_eq!(class(&drop_a), class(&drop_a.clone()));
        assert_ne!(class(&drop_a), class(&drop_b), "burst is behavioral");
        assert_ne!(class(&drop_a), class(&crash));
        assert_eq!(
            CandidateStrategy::new(crash.clone()).planned_schedule(),
            Some(crash.planned_ops())
        );
        let (kept, census) = dedup_by_class(vec![drop_a.clone(), drop_b, drop_a.clone(), crash]);
        assert_eq!(kept.len(), 3);
        assert_eq!(census.distinct_classes, 3);
        assert_eq!(census.deduped_trials, 1);
    }
}
