//! The explorer: run scenarios under strategies, count trials-to-detection.
//!
//! This is the outer loop of the §7 tool. A *scenario* is any function
//! `fn(seed, &mut dyn Strategy) -> RunReport` (the `ph-scenarios` crate
//! provides one per bug); a *strategy factory* builds a fresh strategy per
//! trial (random strategies get the trial seed). The [`Explorer`] runs
//! trials until the first violation or the budget is exhausted, and the
//! results aggregate into a [`DetectionMatrix`] — the reproduction of the
//! paper's §7 claims ("our tool has reproduced two known bugs … and
//! detected three new bugs") plus the §5/§6.1 guided-vs-random comparison.

use ph_sim::{MetricsReport, SimTime, Trace};

use crate::divergence::DivergenceSummary;
use crate::oracle::Violation;
use crate::perturb::Strategy;
use crate::provenance::{self, BlameSpec, BlameSummary};

/// The outcome of one simulated run of a scenario under a strategy.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Scenario name.
    pub scenario: String,
    /// Strategy name.
    pub strategy: String,
    /// Root seed of the run.
    pub seed: u64,
    /// Violations detected by the scenario's oracles.
    pub violations: Vec<Violation>,
    /// Logical time at which the run ended.
    pub sim_time: SimTime,
    /// Number of trace events (run size).
    pub trace_events: usize,
    /// Order-sensitive digest of the trace (for replay verification).
    pub trace_digest: u64,
    /// Deterministic metrics snapshot (counters, gauges, histograms) taken
    /// at the end of the run.
    pub metrics: MetricsReport,
    /// Sampled per-view lag (`|H| − |H′|`) over the run.
    pub divergence: DivergenceSummary,
    /// Compact blame-chain summary for failing runs (set by scenarios that
    /// know their [`BlameSpec`]; `None` for passing runs).
    pub blame: Option<BlameSummary>,
}

impl RunReport {
    /// `true` if any oracle fired.
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }

    /// Computes and attaches the blame-chain summary for a failing run
    /// (no-op on passing runs: a clean trace has nothing to blame).
    pub fn attach_blame(&mut self, trace: &Trace, spec: &BlameSpec) {
        if self.failed() {
            self.blame = Some(provenance::explain(trace, spec, &self.violations).summary());
        }
    }

    /// Renders the full report as deterministic JSON (key order fixed, no
    /// wall-clock anywhere) — the `phtool run --json` payload.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out
        }
        let violations: Vec<String> = self
            .violations
            .iter()
            .map(|v| {
                format!(
                    "{{\"oracle\":\"{}\",\"at_ns\":{},\"details\":\"{}\"}}",
                    esc(&v.oracle),
                    v.at.0,
                    esc(&v.details)
                )
            })
            .collect();
        let blame = match &self.blame {
            Some(b) => format!(
                "{{\"class\":\"{}\",\"links\":{},\"injected\":{},\"in_chain\":{}}}",
                b.class.as_str(),
                b.links,
                b.injected,
                b.in_chain
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"scenario\":\"{}\",\"strategy\":\"{}\",\"seed\":{},\"sim_time_ns\":{},\
             \"trace_events\":{},\"trace_digest\":\"{:#018x}\",\"violations\":[{}],\
             \"metrics\":{},\"divergence\":{},\"blame\":{}}}",
            esc(&self.scenario),
            esc(&self.strategy),
            self.seed,
            self.sim_time.0,
            self.trace_events,
            self.trace_digest,
            violations.join(","),
            self.metrics.to_json(),
            self.divergence.to_json(),
            blame,
        )
    }
}

/// A scenario under exploration: builds and runs one trial.
pub type ScenarioFn<'a> = dyn Fn(u64, &mut dyn Strategy) -> RunReport + 'a;

/// Builds a fresh strategy for a trial seed.
pub type StrategyFactory<'a> = dyn Fn(u64) -> Box<dyn Strategy> + 'a;

/// Result of exploring one (scenario, strategy) cell.
#[derive(Debug, Clone)]
pub struct TrialOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Strategy name (from the first built strategy).
    pub strategy: String,
    /// Trials actually executed (canonical-schedule duplicates are
    /// skipped and counted in [`TrialOutcome::deduped_trials`] instead).
    pub trials_run: u32,
    /// Distinct canonical schedule classes among the considered trials
    /// ([`crate::canon::plan_class`] over each trial's planned schedule;
    /// a strategy that plans no schedule counts as its own class).
    pub distinct_classes: u32,
    /// Trials skipped because their (canonical class, seed) pair already
    /// ran — provably identical runs whose verdict is already known.
    pub deduped_trials: u32,
    /// 1-based index of the first failing trial (numbered over
    /// *considered* trials, so seeds and indices match the non-deduped
    /// explorer), `None` if none failed.
    pub first_violation: Option<u32>,
    /// The failing run's report (evidence), if any.
    pub example: Option<RunReport>,
    /// Total trace events across all trials (effort proxy).
    pub total_events: u64,
    /// Total simulated nanoseconds across all trials (effort proxy).
    pub total_sim_ns: u64,
    /// Per-trial simulated nanoseconds, in trial order — the raw samples
    /// behind the hunt-telemetry latency histograms
    /// ([`crate::telemetry::HuntReport`]).
    pub trial_sim_ns: Vec<u64>,
}

impl TrialOutcome {
    /// `true` if the bug was detected within budget.
    pub fn detected(&self) -> bool {
        self.first_violation.is_some()
    }
}

/// Runs trials of a scenario under strategies.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Maximum trials per (scenario, strategy) cell.
    pub max_trials: u32,
    /// Root seed; trial `t` uses
    /// [`crate::parallel::derive_trial_seed`]`(base_seed, t)`.
    pub base_seed: u64,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer {
            max_trials: 20,
            base_seed: 0x5EED,
        }
    }
}

impl Explorer {
    /// The seed of trial `t` (0-based): positional splitmix64 derivation,
    /// shared with [`Explorer::explore_parallel`] so both paths agree on
    /// every trial's seed regardless of execution order.
    pub fn trial_seed(&self, t: u32) -> u64 {
        crate::parallel::derive_trial_seed(self.base_seed, t)
    }

    /// Runs up to `max_trials` trials, stopping at the first violation.
    ///
    /// Trials whose (canonical schedule class, seed) pair already ran are
    /// skipped: with identical planned injections *and* an identical root
    /// seed the run is bit-for-bit the same simulation, so its verdict is
    /// already known — the dedup is verdict-preserving by construction.
    /// The seed stays in the key because scenario workloads are
    /// seed-sensitive (jitter derives from the trial seed): equal plans
    /// under different seeds are genuinely different runs and both
    /// execute. Strategies without a planned schedule (the random
    /// baselines) are never deduplicated.
    pub fn explore(
        &self,
        scenario_name: &str,
        scenario: &ScenarioFn<'_>,
        factory: &StrategyFactory<'_>,
    ) -> TrialOutcome {
        let mut strategy_name = String::new();
        let mut total_events = 0u64;
        let mut total_sim_ns = 0u64;
        let mut trial_sim_ns = Vec::new();
        let mut classes: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut ran: std::collections::BTreeSet<(u64, u64)> = std::collections::BTreeSet::new();
        let mut distinct_classes = 0u32;
        let mut deduped_trials = 0u32;
        let mut executed = 0u32;
        for t in 0..self.max_trials {
            let seed = self.trial_seed(t);
            let mut strategy = factory(seed);
            if t == 0 {
                strategy_name = strategy.name();
            }
            match strategy.planned_schedule() {
                Some(ops) => {
                    let class = crate::canon::plan_class(&ops);
                    if classes.insert(class) {
                        distinct_classes += 1;
                    }
                    if !ran.insert((class, seed)) {
                        deduped_trials += 1;
                        continue;
                    }
                }
                None => distinct_classes += 1,
            }
            executed += 1;
            let report = scenario(seed, strategy.as_mut());
            total_events += report.trace_events as u64;
            total_sim_ns += report.sim_time.0;
            trial_sim_ns.push(report.sim_time.0);
            if report.failed() {
                return TrialOutcome {
                    scenario: scenario_name.to_string(),
                    strategy: strategy_name,
                    trials_run: executed,
                    distinct_classes,
                    deduped_trials,
                    first_violation: Some(t + 1),
                    example: Some(report),
                    total_events,
                    total_sim_ns,
                    trial_sim_ns,
                };
            }
        }
        TrialOutcome {
            scenario: scenario_name.to_string(),
            strategy: strategy_name,
            trials_run: executed,
            distinct_classes,
            deduped_trials,
            first_violation: None,
            example: None,
            total_events,
            total_sim_ns,
            trial_sim_ns,
        }
    }
}

/// A detection matrix: scenarios × strategies, as reported in
/// EXPERIMENTS.md (Table 1 / Table 2).
#[derive(Debug, Default, Clone)]
pub struct DetectionMatrix {
    cells: Vec<TrialOutcome>,
}

impl DetectionMatrix {
    /// An empty matrix.
    pub fn new() -> DetectionMatrix {
        DetectionMatrix::default()
    }

    /// Adds one explored cell.
    pub fn add(&mut self, outcome: TrialOutcome) {
        self.cells.push(outcome);
    }

    /// All cells.
    pub fn cells(&self) -> &[TrialOutcome] {
        &self.cells
    }

    /// The cell for a given scenario/strategy pair.
    pub fn cell(&self, scenario: &str, strategy: &str) -> Option<&TrialOutcome> {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario && c.strategy == strategy)
    }

    /// Renders the matrix as an aligned text table:
    /// `✓ n` = detected on trial n, `✗` = not detected within budget.
    pub fn render(&self) -> String {
        let mut scenarios: Vec<&str> = self.cells.iter().map(|c| c.scenario.as_str()).collect();
        scenarios.dedup();
        let mut strategies: Vec<&str> = Vec::new();
        for c in &self.cells {
            if !strategies.contains(&c.strategy.as_str()) {
                strategies.push(&c.strategy);
            }
        }
        let first_col = scenarios
            .iter()
            .map(|s| s.len())
            .max()
            .unwrap_or(8)
            .max("scenario".len());
        let widths: Vec<usize> = strategies.iter().map(|s| s.len().max(6)).collect();

        let mut out = String::new();
        out.push_str(&format!("{:<first_col$}", "scenario"));
        for (s, w) in strategies.iter().zip(&widths) {
            out.push_str(&format!("  {s:>w$}"));
        }
        out.push('\n');
        for sc in scenarios {
            out.push_str(&format!("{sc:<first_col$}"));
            for (st, w) in strategies.iter().zip(&widths) {
                let cell = match self.cell(sc, st) {
                    Some(c) => match c.first_violation {
                        Some(n) => format!("✓ {n}"),
                        None => "✗".to_string(),
                    },
                    None => "-".to_string(),
                };
                out.push_str(&format!("  {cell:>w$}"));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the exploration *effort* behind each cell: trials run, trace
    /// events generated, and simulated time burned. Companion to
    /// [`DetectionMatrix::render`] — that table says *whether* a strategy
    /// finds a bug; this one says what it cost.
    pub fn render_effort(&self) -> String {
        let first_col = self
            .cells
            .iter()
            .map(|c| c.scenario.len() + c.strategy.len() + 3)
            .max()
            .unwrap_or(8)
            .max("cell".len());
        let mut out = format!(
            "{:<first_col$}  {:>7}  {:>12}  {:>12}  {:>10}  {:>17}\n",
            "cell", "trials", "events", "sim-time", "detected", "blame"
        );
        for c in &self.cells {
            let label = format!("{} / {}", c.scenario, c.strategy);
            let sim = format!("{:.3}s", c.total_sim_ns as f64 / 1e9);
            let det = match c.first_violation {
                Some(n) => format!("trial {n}"),
                None => "no".to_string(),
            };
            let blame = c
                .example
                .as_ref()
                .and_then(|r| r.blame.as_ref())
                .map(|b| b.class.as_str())
                .unwrap_or("-");
            out.push_str(&format!(
                "{label:<first_col$}  {:>7}  {:>12}  {sim:>12}  {det:>10}  {blame:>17}\n",
                c.trials_run, c.total_events,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perturb::{NoFault, Targets};
    use ph_sim::World;

    /// A fake scenario that "fails" iff the strategy name contains `magic`
    /// and the seed is odd.
    fn fake_scenario(magic: &'static str) -> impl Fn(u64, &mut dyn Strategy) -> RunReport {
        move |seed, strategy| {
            let fails = strategy.name().contains(magic) && seed % 2 == 1;
            RunReport {
                scenario: "fake".into(),
                strategy: strategy.name(),
                seed,
                violations: if fails {
                    vec![Violation {
                        oracle: "o".into(),
                        at: SimTime(1),
                        details: "boom".into(),
                    }]
                } else {
                    Vec::new()
                },
                sim_time: SimTime(1),
                trace_events: 10,
                trace_digest: seed,
                metrics: MetricsReport::default(),
                divergence: DivergenceSummary::default(),
                blame: None,
            }
        }
    }

    struct Named(&'static str);
    impl Strategy for Named {
        fn name(&self) -> String {
            self.0.into()
        }
    }

    #[test]
    fn explorer_stops_at_first_violation() {
        let ex = Explorer {
            max_trials: 10,
            base_seed: 0,
        };
        // Trial seeds are derived (splitmix64), so compute which trial
        // first draws an odd seed rather than hardcoding it.
        let first_odd = (0..10)
            .find(|&t| ex.trial_seed(t) % 2 == 1)
            .expect("some odd seed within 10 trials");
        let out = ex.explore("fake", &fake_scenario("magic"), &|_s| {
            Box::new(Named("magic-strategy"))
        });
        assert!(out.detected());
        assert_eq!(out.first_violation, Some(first_odd + 1));
        assert_eq!(out.trials_run, first_odd + 1);
        assert_eq!(out.total_events, 10 * (first_odd as u64 + 1));
        assert!(out.example.as_ref().is_some_and(|r| r.failed()));
    }

    #[test]
    fn explorer_exhausts_budget_without_detection() {
        let ex = Explorer {
            max_trials: 5,
            base_seed: 0,
        };
        let out = ex.explore("fake", &fake_scenario("magic"), &|_s| {
            Box::new(Named("dud"))
        });
        assert!(!out.detected());
        assert_eq!(out.trials_run, 5);
        assert!(out.example.is_none());
    }

    #[test]
    fn matrix_renders_all_cells() {
        let ex = Explorer {
            max_trials: 4,
            base_seed: 0,
        };
        let mut m = DetectionMatrix::new();
        m.add(ex.explore("fake", &fake_scenario("magic"), &|_s| {
            Box::new(Named("magic"))
        }));
        m.add(ex.explore("fake", &fake_scenario("magic"), &|_s| {
            Box::new(Named("dud"))
        }));
        let table = m.render();
        let first_odd = (0..4)
            .find(|&t| ex.trial_seed(t) % 2 == 1)
            .expect("some odd seed within 4 trials");
        assert!(table.contains("scenario"));
        assert!(table.contains("magic"));
        assert!(table.contains(&format!("✓ {}", first_odd + 1)));
        assert!(table.contains('✗'));
        assert!(m.cell("fake", "magic").expect("cell").detected());
        assert!(!m.cell("fake", "dud").expect("cell").detected());
        assert!(m.cell("fake", "nope").is_none());
    }

    #[test]
    fn default_strategy_hooks_are_noops() {
        // Strategy's default setup/tick do nothing and must not disturb a
        // world (compile-and-run smoke check for the trait defaults).
        let mut w = World::new(ph_sim::WorldConfig::default(), 1);
        let t = Targets::default();
        let mut s = NoFault;
        s.setup(&mut w, &t);
        s.tick(&mut w, &t);
        s.teardown(&mut w);
        assert_eq!(w.trace().len(), 0);
    }
}
