//! Deterministic parallel trial execution.
//!
//! The §7 outer loop is embarrassingly parallel — every trial is an
//! independent simulation pinned by its seed — but naive parallelism
//! destroys the property the whole methodology rests on: that a
//! [`TrialOutcome`] is a pure function of `(scenario, strategy, base
//! seed, budget)` and nothing else. This module provides parallelism that
//! provably preserves it:
//!
//! * **Seed derivation is positional, not sequential.** Trial `t` runs
//!   under [`derive_trial_seed`]`(base_seed, t)` — a splitmix64 evaluated
//!   *at* index `t` — so any worker can compute any trial's seed without
//!   knowing what the other workers are doing. (The old `base_seed + t`
//!   scheme had the same property but correlated neighbouring trials;
//!   splitmix64 decorrelates them for free.)
//! * **Results merge by trial index, never by completion order.** Workers
//!   deposit each report into a per-trial slot; the aggregation walks the
//!   slots `0, 1, 2, …` exactly like the sequential loop walks its
//!   iterations, so `total_events`/`total_sim_ns` are summed in trial
//!   order and `first_violation` is the *lowest* failing index — not the
//!   first to finish.
//! * **Early-cancel is cooperative and one-sided.** Once some trial `f`
//!   fails, trials with index `> f` become unnecessary and are skipped;
//!   trials `≤ f` are never skipped (the cancel cutoff only decreases, and
//!   never below the final first failure), so every slot the merge reads
//!   is guaranteed to be populated.
//!
//! The scheduler itself is a work-stealing pool over `std::thread` scoped
//! threads: each worker owns a chunk of the trial range and steals from
//! the tail of a sibling's chunk when its own runs dry. Stealing order
//! affects only *which worker* runs a trial — never the trial's seed, nor
//! where its result lands.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use crate::harness::{Explorer, RunReport, TrialOutcome};
use crate::perturb::Strategy;

/// A scenario runnable from worker threads (the `Sync` twin of
/// [`crate::harness::ScenarioFn`]; plain `fn` pointers qualify).
pub type SyncScenarioFn<'a> = dyn Fn(u64, &mut dyn Strategy) -> RunReport + Sync + 'a;

/// A strategy factory callable from worker threads (the `Sync` twin of
/// [`crate::harness::StrategyFactory`]).
pub type SyncStrategyFactory<'a> = dyn Fn(u64) -> Box<dyn Strategy> + Sync + 'a;

/// Derives the seed of trial `trial_idx` from the explorer's root seed:
/// splitmix64 evaluated at index `trial_idx`.
///
/// The derivation is *positional* — a pure function of `(root_seed,
/// trial_idx)` — so sequential and parallel explorers, and workers racing
/// in any order, all agree on every trial's seed.
pub fn derive_trial_seed(root_seed: u64, trial_idx: u32) -> u64 {
    // splitmix64 with its state advanced trial_idx + 1 steps from
    // root_seed, collapsed into one multiply (the increment is a constant
    // stride), then the standard finalizer.
    const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut z = root_seed.wrapping_add(GOLDEN.wrapping_mul(trial_idx as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The number of workers to use when the caller does not say: the
/// machine's available parallelism (1 if it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Per-worker job queues with stealing.
///
/// Worker `w` pops from the front of its own queue (cache-friendly,
/// ascending indices) and, when empty, steals from the *back* of the
/// first non-empty sibling queue — the classic deque discipline, with a
/// mutex per queue instead of a lock-free deque (job bodies are whole
/// simulations; queue contention is noise).
struct StealQueues {
    queues: Vec<Mutex<VecDeque<u32>>>,
}

impl StealQueues {
    /// Splits `0..jobs` into `workers` contiguous chunks.
    fn new(jobs: u32, workers: usize) -> StealQueues {
        let mut queues: Vec<VecDeque<u32>> = (0..workers).map(|_| VecDeque::new()).collect();
        let per = (jobs as usize).div_ceil(workers.max(1));
        for j in 0..jobs {
            queues[(j as usize / per.max(1)).min(workers - 1)].push_back(j);
        }
        StealQueues {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Next job for worker `w`: own front, else steal a sibling's back.
    /// `None` means every queue is empty and the worker can retire.
    fn next(&self, w: usize) -> Option<u32> {
        if let Some(j) = self.queues[w].lock().expect("queue poisoned").pop_front() {
            return Some(j);
        }
        let n = self.queues.len();
        for i in 1..n {
            let victim = (w + i) % n;
            if let Some(j) = self.queues[victim]
                .lock()
                .expect("queue poisoned")
                .pop_back()
            {
                return Some(j);
            }
        }
        None
    }
}

/// Runs `job(0), job(1), …, job(jobs - 1)` across `threads` workers and
/// returns the results **in job order** (index `i` holds `job(i)`),
/// regardless of which worker ran what when.
///
/// `job` must be deterministic in its index for the output to be
/// deterministic — that is the caller's contract, and everything in this
/// crate satisfies it (trials are pure functions of their seed).
pub fn run_indexed<T, F>(threads: usize, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let slots = run_pool(threads, jobs as u32, None, |i| job(i as usize));
    slots
        .into_iter()
        .map(|s| {
            s.into_inner()
                .expect("slot poisoned")
                .expect("uncancelled job always completes")
        })
        .collect()
}

/// The shared pool core: runs `job` for indices `0..jobs`, depositing
/// each result in its index's slot. If `cancel` is given, indices greater
/// than its current value are skipped (their slots stay `None`); the
/// value only ever decreases (via `fetch_min` inside `job`), so indices
/// at or below its final value are never skipped.
fn run_pool<T, F>(
    threads: usize,
    jobs: u32,
    cancel: Option<&AtomicU32>,
    job: F,
) -> Vec<Mutex<Option<T>>>
where
    T: Send,
    F: Fn(u32) -> T + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    if jobs == 0 {
        return slots;
    }
    let workers = threads.clamp(1, jobs as usize);
    let queues = StealQueues::new(jobs, workers);
    std::thread::scope(|s| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let job = &job;
            s.spawn(move || {
                while let Some(i) = queues.next(w) {
                    if let Some(c) = cancel {
                        if i > c.load(Ordering::Acquire) {
                            continue; // a lower trial already failed
                        }
                    }
                    let out = job(i);
                    *slots[i as usize].lock().expect("slot poisoned") = Some(out);
                }
            });
        }
    });
    slots
}

/// What a worker records per trial: the built strategy's name (trial 0's
/// names the whole cell, as in the sequential path) plus the report.
struct TrialRecord {
    strategy_name: String,
    report: RunReport,
}

impl Explorer {
    /// Parallel twin of [`Explorer::explore`]: fans the trial range across
    /// `threads` workers and produces a [`TrialOutcome`] **identical** to
    /// the sequential one — same `first_violation` (the lowest failing
    /// trial index, found cooperatively), same `example` report, same
    /// `total_events`/`total_sim_ns` (summed in trial order over exactly
    /// the trials the sequential loop would have run).
    ///
    /// `threads == 1` still routes through the pool (one worker), so the
    /// equivalence tests exercise the parallel code path end to end.
    pub fn explore_parallel(
        &self,
        threads: usize,
        scenario_name: &str,
        scenario: &SyncScenarioFn<'_>,
        factory: &SyncStrategyFactory<'_>,
    ) -> TrialOutcome {
        let n = self.max_trials;

        // Canonical-schedule dedup decisions are precomputed positionally
        // — a sequential walk over planned schedules (cheap: no
        // simulation runs) — so every worker agrees with the sequential
        // explorer on which trials are duplicates, regardless of
        // completion order. `*_prefix[t]` hold the counter values after
        // considering trials `0..=t`, mirroring the sequential loop's
        // counters at its early-return points.
        let mut classes: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut ran: std::collections::BTreeSet<(u64, u64)> = std::collections::BTreeSet::new();
        let mut skip = vec![false; n as usize];
        let mut distinct_prefix = vec![0u32; n as usize];
        let mut deduped_prefix = vec![0u32; n as usize];
        let mut distinct = 0u32;
        let mut deduped = 0u32;
        for t in 0..n {
            let seed = self.trial_seed(t);
            match factory(seed).planned_schedule() {
                Some(ops) => {
                    let class = crate::canon::plan_class(&ops);
                    if classes.insert(class) {
                        distinct += 1;
                    }
                    if !ran.insert((class, seed)) {
                        deduped += 1;
                        skip[t as usize] = true;
                    }
                }
                None => distinct += 1,
            }
            distinct_prefix[t as usize] = distinct;
            deduped_prefix[t as usize] = deduped;
        }
        let skip = &skip;

        let cutoff = AtomicU32::new(u32::MAX);
        let slots = run_pool(threads, n, Some(&cutoff), |t| {
            if skip[t as usize] {
                return None;
            }
            let seed = self.trial_seed(t);
            let mut strategy = factory(seed);
            let strategy_name = strategy.name();
            let report = scenario(seed, strategy.as_mut());
            if report.failed() {
                // Publish "nothing above t is needed"; fetch_min keeps the
                // cutoff at the lowest failure seen so far.
                cutoff.fetch_min(t, Ordering::AcqRel);
            }
            Some(TrialRecord {
                strategy_name,
                report,
            })
        });

        // Merge in trial order, mirroring the sequential loop exactly.
        let mut records: Vec<Option<Option<TrialRecord>>> = slots
            .into_iter()
            .map(|s| s.into_inner().expect("slot poisoned"))
            .collect();
        let first_fail = records.iter().enumerate().find_map(|(t, r)| match r {
            Some(Some(rec)) if rec.report.failed() => Some(t as u32),
            _ => None,
        });
        let upto = first_fail.map_or(n, |f| f + 1);
        let mut strategy_name = String::new();
        let mut example = None;
        let mut executed = 0u32;
        let mut total_events = 0u64;
        let mut total_sim_ns = 0u64;
        let mut trial_sim_ns = Vec::with_capacity(upto as usize);
        for t in 0..upto {
            if skip[t as usize] {
                continue;
            }
            let rec = records[t as usize]
                .take()
                .expect("trials at or before the first failure always run")
                .expect("non-skipped trials always record");
            if t == 0 {
                strategy_name = rec.strategy_name;
            }
            executed += 1;
            total_events += rec.report.trace_events as u64;
            total_sim_ns += rec.report.sim_time.0;
            trial_sim_ns.push(rec.report.sim_time.0);
            if Some(t) == first_fail {
                example = Some(rec.report);
            }
        }
        let considered = first_fail.map_or(n, |f| f + 1);
        let (distinct_classes, deduped_trials) = if considered == 0 {
            (0, 0)
        } else {
            (
                distinct_prefix[considered as usize - 1],
                deduped_prefix[considered as usize - 1],
            )
        };
        TrialOutcome {
            scenario: scenario_name.to_string(),
            strategy: strategy_name,
            trials_run: executed,
            distinct_classes,
            deduped_trials,
            first_violation: first_fail.map(|f| f + 1),
            example,
            total_events,
            total_sim_ns,
            trial_sim_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::divergence::DivergenceSummary;
    use crate::oracle::Violation;
    use ph_sim::{MetricsReport, SimTime};

    /// A deterministic fake scenario: fails iff `seed % modulus == 0`;
    /// event count and sim-time derive from the seed so aggregate sums
    /// discriminate between orderings.
    fn fake(modulus: u64) -> impl Fn(u64, &mut dyn Strategy) -> RunReport + Sync {
        move |seed, strategy| RunReport {
            scenario: "fake".into(),
            strategy: strategy.name(),
            seed,
            violations: if seed % modulus == 0 {
                vec![Violation {
                    oracle: "o".into(),
                    at: SimTime(seed),
                    details: format!("seed {seed}"),
                }]
            } else {
                Vec::new()
            },
            sim_time: SimTime(seed % 1000),
            trace_events: (seed % 97) as usize,
            trace_digest: seed,
            metrics: MetricsReport::default(),
            divergence: DivergenceSummary::default(),
            blame: None,
        }
    }

    struct Named;
    impl Strategy for Named {
        fn name(&self) -> String {
            "named".into()
        }
    }

    fn factory(_seed: u64) -> Box<dyn Strategy> {
        Box::new(Named)
    }

    fn outcomes_equal(a: &TrialOutcome, b: &TrialOutcome) {
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.strategy, b.strategy);
        assert_eq!(a.trials_run, b.trials_run);
        assert_eq!(a.distinct_classes, b.distinct_classes);
        assert_eq!(a.deduped_trials, b.deduped_trials);
        assert_eq!(a.first_violation, b.first_violation);
        assert_eq!(a.total_events, b.total_events);
        assert_eq!(a.total_sim_ns, b.total_sim_ns);
        assert_eq!(a.trial_sim_ns, b.trial_sim_ns);
        match (&a.example, &b.example) {
            (None, None) => {}
            (Some(x), Some(y)) => assert_eq!(x.to_json(), y.to_json()),
            _ => panic!("example presence diverged"),
        }
    }

    #[test]
    fn trial_seeds_are_positional_and_decorrelated() {
        let ex = Explorer {
            max_trials: 64,
            base_seed: 42,
        };
        let seeds: Vec<u64> = (0..64).map(|t| ex.trial_seed(t)).collect();
        // Stable under recomputation in any order.
        for (t, &s) in seeds.iter().enumerate().rev() {
            assert_eq!(derive_trial_seed(42, t as u32), s);
        }
        // All distinct (splitmix64 is a bijection over the stride).
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
    }

    #[test]
    fn parallel_matches_sequential_across_thread_counts() {
        for modulus in [3, 7, 1_000_000_007] {
            let ex = Explorer {
                max_trials: 33,
                base_seed: modulus,
            };
            let scenario = fake(modulus);
            let seq = ex.explore("fake", &scenario, &factory);
            for threads in [1, 2, 3, 4, 8] {
                let par = ex.explore_parallel(threads, "fake", &scenario, &factory);
                outcomes_equal(&seq, &par);
            }
        }
    }

    /// A strategy with a planned schedule whose anchor buckets the seed,
    /// so a handful of canonical classes recur across trials.
    struct Planned(u64);
    impl Strategy for Planned {
        fn name(&self) -> String {
            "planned".into()
        }
        fn planned_schedule(&self) -> Option<Vec<crate::canon::PlannedOp>> {
            Some(vec![crate::canon::PlannedOp::new(
                ph_lint::modelcheck::Letter::DelayCache("cache:0".into()),
                format!("bucket:{}", self.0 % 4),
            )])
        }
    }

    #[test]
    fn planned_strategies_agree_across_paths_and_count_classes() {
        let planned_factory = |seed: u64| Box::new(Planned(seed)) as Box<dyn Strategy>;
        for modulus in [5, 1_000_000_007] {
            let ex = Explorer {
                max_trials: 24,
                base_seed: modulus,
            };
            let scenario = fake(modulus);
            let seq = ex.explore("fake", &scenario, &planned_factory);
            // Seeds are distinct, so every bucket is a fresh (class, seed)
            // pair: nothing dedups, but the class census collapses to the
            // bucket count.
            assert_eq!(seq.deduped_trials, 0);
            assert!(seq.distinct_classes <= 4);
            assert!(seq.distinct_classes >= 1);
            for threads in [1, 2, 4, 8] {
                let par = ex.explore_parallel(threads, "fake", &scenario, &planned_factory);
                outcomes_equal(&seq, &par);
            }
        }
        // Strategies without a plan are never deduplicated: each trial is
        // its own class.
        let ex = Explorer {
            max_trials: 9,
            base_seed: 1_000_003,
        };
        let out = ex.explore("fake", &fake(1_000_000_007), &factory);
        assert_eq!(out.distinct_classes, out.trials_run);
        assert_eq!(out.deduped_trials, 0);
    }

    #[test]
    fn zero_trials_is_an_empty_outcome_in_both_paths() {
        let ex = Explorer {
            max_trials: 0,
            base_seed: 1,
        };
        let scenario = fake(2);
        let seq = ex.explore("fake", &scenario, &factory);
        let par = ex.explore_parallel(4, "fake", &scenario, &factory);
        outcomes_equal(&seq, &par);
        assert_eq!(par.trials_run, 0);
        assert!(par.example.is_none());
    }

    #[test]
    fn first_violation_is_the_lowest_failing_index() {
        // A modulus of 1 makes every trial fail; the winner must be trial
        // 1 (1-based) no matter how many workers race.
        let ex = Explorer {
            max_trials: 16,
            base_seed: 9,
        };
        let scenario = fake(1);
        for threads in [2, 4, 8] {
            let out = ex.explore_parallel(threads, "fake", &scenario, &factory);
            assert_eq!(out.first_violation, Some(1));
            assert_eq!(out.trials_run, 1);
            assert_eq!(out.example.as_ref().map(|r| r.seed), Some(ex.trial_seed(0)));
        }
    }

    #[test]
    fn run_indexed_returns_results_in_job_order() {
        for threads in [1, 2, 5] {
            let out = run_indexed(threads, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(run_indexed(3, 0, |i| i).is_empty());
    }

    #[test]
    fn steal_queues_drain_every_job_exactly_once() {
        let q = StealQueues::new(37, 4);
        let mut seen = Vec::new();
        // Drain from a single "worker" so its own queue empties and it
        // steals the rest.
        while let Some(j) = q.next(2) {
            seen.push(j);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
