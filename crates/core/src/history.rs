//! The §3 model: histories, states, partial histories and views.
//!
//! The cluster state `S` is modelled as a set of named entities; the history
//! `H` is the totally ordered sequence of [`Change`]s committed against it
//! (one per sequence number, dense from 1). A [`PartialHistory`] `H′` is a
//! subsequence of `H` — a subset preserving relative order. A component's
//! [`View`] is the pair `(H′, S′)` where `S′` is materialized from `H′`.
//!
//! The metrics here quantify the §4.2 challenge patterns:
//! *staleness* ([`View::lag`]), *interior gaps* ([`View::interior_gaps`],
//! the raw material of observability gaps), and *time traveling*
//! ([`FrontierLog::time_travels`]).

use std::collections::BTreeMap;

/// What a change did to its entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChangeOp {
    /// The entity came into existence.
    Create,
    /// The entity's content changed. The `u64` distinguishes payload
    /// versions (two updates with equal payloads are indistinguishable in a
    /// state read).
    Update(u64),
    /// The entity was removed.
    Delete,
}

/// One committed change — an element of `H`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Change {
    /// Position in `H` (dense, starting at 1).
    pub seq: u64,
    /// The entity changed.
    pub entity: String,
    /// What happened to it.
    pub op: ChangeOp,
}

/// The materialized state of one entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityState {
    /// Sequence number of the last change applied to this entity.
    pub last_seq: u64,
    /// The payload version (0 for a fresh create).
    pub version: u64,
}

/// The ground-truth history `H`.
#[derive(Debug, Default, Clone)]
pub struct History {
    changes: Vec<Change>,
}

impl History {
    /// An empty history.
    pub fn new() -> History {
        History::default()
    }

    /// Appends a change, assigning the next sequence number. Returns it.
    pub fn append(&mut self, entity: impl Into<String>, op: ChangeOp) -> u64 {
        let seq = self.changes.len() as u64 + 1;
        self.changes.push(Change {
            seq,
            entity: entity.into(),
            op,
        });
        seq
    }

    /// Number of committed changes (== highest sequence number).
    pub fn len(&self) -> u64 {
        self.changes.len() as u64
    }

    /// `true` if nothing has been committed.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// All changes, in order.
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }

    /// The change at sequence number `seq` (1-based).
    pub fn at(&self, seq: u64) -> Option<&Change> {
        if seq == 0 {
            None
        } else {
            self.changes.get(seq as usize - 1)
        }
    }

    /// Materializes the state `S` after applying the prefix up to and
    /// including `upto` (pass [`History::len`] for the latest state).
    pub fn state_at(&self, upto: u64) -> BTreeMap<String, EntityState> {
        let mut s: BTreeMap<String, EntityState> = BTreeMap::new();
        for c in self.changes.iter().take_while(|c| c.seq <= upto) {
            apply(&mut s, c);
        }
        s
    }

    /// The latest state `S`.
    pub fn state(&self) -> BTreeMap<String, EntityState> {
        self.state_at(self.len())
    }

    /// The full history viewed as a (complete) partial history.
    pub fn as_view(&self) -> PartialHistory {
        PartialHistory {
            changes: self.changes.clone(),
        }
    }
}

fn apply(s: &mut BTreeMap<String, EntityState>, c: &Change) {
    match c.op {
        ChangeOp::Create => {
            s.insert(
                c.entity.clone(),
                EntityState {
                    last_seq: c.seq,
                    version: 0,
                },
            );
        }
        ChangeOp::Update(v) => {
            if let Some(e) = s.get_mut(&c.entity) {
                e.last_seq = c.seq;
                e.version = v;
            }
        }
        ChangeOp::Delete => {
            s.remove(&c.entity);
        }
    }
}

/// A partial history `H′` — a subsequence of some `H`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct PartialHistory {
    changes: Vec<Change>,
}

impl PartialHistory {
    /// An empty partial history.
    pub fn new() -> PartialHistory {
        PartialHistory::default()
    }

    /// Records observation of a change. The §3 invariant (subsequence of
    /// `H`, order preserved) is *not* enforced here — components under test
    /// may be fed violating sequences on purpose (replays, reorderings);
    /// use [`PartialHistory::is_partial_of`] to check it.
    pub fn observe(&mut self, change: Change) {
        self.changes.push(change);
    }

    /// The observed changes, in observation order.
    pub fn changes(&self) -> &[Change] {
        &self.changes
    }

    /// Number of observed changes.
    pub fn len(&self) -> u64 {
        self.changes.len() as u64
    }

    /// `true` if nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// The highest sequence number observed (the view's *frontier*), or 0.
    pub fn frontier(&self) -> u64 {
        self.changes.iter().map(|c| c.seq).max().unwrap_or(0)
    }

    /// Checks the §3 definition: every observed change appears in `h` at
    /// its claimed position, each at most once, and observation order
    /// preserves `H`'s order. A view that replayed or reordered events is
    /// *not* a partial history — that is precisely what time-travel
    /// injection creates.
    pub fn is_partial_of(&self, h: &History) -> bool {
        let mut prev = 0u64;
        for c in &self.changes {
            if c.seq <= prev {
                return false; // reordered or duplicated
            }
            match h.at(c.seq) {
                Some(truth) if truth == c => prev = c.seq,
                _ => return false, // fabricated or corrupted
            }
        }
        true
    }

    /// Materializes `S′` from this view.
    pub fn state(&self) -> BTreeMap<String, EntityState> {
        let mut s = BTreeMap::new();
        for c in &self.changes {
            apply(&mut s, c);
        }
        s
    }
}

/// A component's view `(H′, S′)` with divergence metrics against `(H, S)`.
#[derive(Debug, Clone, Default)]
pub struct View {
    /// The observed partial history.
    pub history: PartialHistory,
}

impl View {
    /// An empty view.
    pub fn new() -> View {
        View::default()
    }

    /// Observes one change.
    pub fn observe(&mut self, change: Change) {
        self.history.observe(change);
    }

    /// `S′`.
    pub fn state(&self) -> BTreeMap<String, EntityState> {
        self.history.state()
    }

    /// Staleness in events: how far the view's frontier trails `H`
    /// (Figure 3a). 0 means fully caught up.
    pub fn lag(&self, h: &History) -> u64 {
        h.len().saturating_sub(self.history.frontier())
    }

    /// Changes of `H` *behind the frontier* that this view never observed —
    /// interior gaps. Unlike tail lag, these can never be healed by waiting:
    /// the stream skipped them (Figure 3c's raw material).
    pub fn interior_gaps<'h>(&self, h: &'h History) -> Vec<&'h Change> {
        let frontier = self.history.frontier();
        let mut seen = vec![false; frontier as usize + 1];
        for c in self.history.changes() {
            if c.seq <= frontier {
                seen[c.seq as usize] = true;
            }
        }
        h.changes()
            .iter()
            .filter(|c| c.seq <= frontier && !seen[c.seq as usize])
            .collect()
    }

    /// Entities whose `S′` disagrees with `S` (missing, phantom, or at a
    /// different version) — the divergence developers must tolerate (§4.2).
    pub fn divergent_entities(&self, h: &History) -> Vec<String> {
        let s = h.state();
        let sp = self.state();
        let mut out = Vec::new();
        for (k, v) in &s {
            match sp.get(k) {
                Some(vp) if vp.version == v.version => {}
                _ => out.push(k.clone()),
            }
        }
        for k in sp.keys() {
            if !s.contains_key(k) {
                out.push(k.clone());
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

/// A log of a component's view frontier over (logical) time, used to detect
/// *time traveling* (§4.2.2, Figure 3b): the frontier must be monotone; a
/// regression means the component re-synchronized with a staler upstream
/// and is re-observing its own past.
#[derive(Debug, Default, Clone)]
pub struct FrontierLog {
    samples: Vec<(u64, u64)>, // (timestamp_ns, frontier)
}

impl FrontierLog {
    /// An empty log.
    pub fn new() -> FrontierLog {
        FrontierLog::default()
    }

    /// Records the component's frontier at a point in time. Timestamps must
    /// be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `at_ns` precedes the previous sample's timestamp.
    pub fn record(&mut self, at_ns: u64, frontier: u64) {
        if let Some(&(t, _)) = self.samples.last() {
            assert!(at_ns >= t, "frontier samples must be in time order");
        }
        self.samples.push((at_ns, frontier));
    }

    /// All samples.
    pub fn samples(&self) -> &[(u64, u64)] {
        &self.samples
    }

    /// Every regression of the frontier: `(at_ns, from, to)` with
    /// `to < from`. An empty result means the component never time-traveled.
    pub fn time_travels(&self) -> Vec<(u64, u64, u64)> {
        self.samples
            .windows(2)
            .filter(|w| w[1].1 < w[0].1)
            .map(|w| (w[1].0, w[0].1, w[1].1))
            .collect()
    }

    /// The deepest regression in events, or 0.
    pub fn max_travel_depth(&self) -> u64 {
        self.time_travels()
            .iter()
            .map(|(_, from, to)| from - to)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// H: create(a), create(b), update(a,v1), delete(b), create(c)
    fn sample_history() -> History {
        let mut h = History::new();
        h.append("a", ChangeOp::Create);
        h.append("b", ChangeOp::Create);
        h.append("a", ChangeOp::Update(1));
        h.append("b", ChangeOp::Delete);
        h.append("c", ChangeOp::Create);
        h
    }

    #[test]
    fn history_assigns_dense_seqs_and_materializes() {
        let h = sample_history();
        assert_eq!(h.len(), 5);
        let s = h.state();
        assert_eq!(s.len(), 2);
        assert_eq!(s["a"].version, 1);
        assert_eq!(s["a"].last_seq, 3);
        assert!(s.contains_key("c"));
        assert!(!s.contains_key("b"));
        // Intermediate state still has b.
        let s2 = h.state_at(3);
        assert!(s2.contains_key("b"));
    }

    #[test]
    fn full_view_is_partial_history_with_zero_lag() {
        let h = sample_history();
        let v = View {
            history: h.as_view(),
        };
        assert!(v.history.is_partial_of(&h));
        assert_eq!(v.lag(&h), 0);
        assert!(v.interior_gaps(&h).is_empty());
        assert!(v.divergent_entities(&h).is_empty());
    }

    #[test]
    fn subsequence_is_partial_history() {
        let h = sample_history();
        let mut v = View::new();
        v.observe(h.at(1).unwrap().clone());
        v.observe(h.at(4).unwrap().clone());
        assert!(v.history.is_partial_of(&h));
        assert_eq!(v.lag(&h), 1); // frontier 4, H at 5
        let gaps: Vec<u64> = v.interior_gaps(&h).iter().map(|c| c.seq).collect();
        assert_eq!(gaps, vec![2, 3]);
    }

    #[test]
    fn reordered_or_replayed_views_are_not_partial_histories() {
        let h = sample_history();
        // Reordered.
        let mut v = PartialHistory::new();
        v.observe(h.at(3).unwrap().clone());
        v.observe(h.at(1).unwrap().clone());
        assert!(!v.is_partial_of(&h));
        // Replayed (duplicate).
        let mut v = PartialHistory::new();
        v.observe(h.at(2).unwrap().clone());
        v.observe(h.at(2).unwrap().clone());
        assert!(!v.is_partial_of(&h));
        // Fabricated.
        let mut v = PartialHistory::new();
        v.observe(Change {
            seq: 2,
            entity: "zz".into(),
            op: ChangeOp::Create,
        });
        assert!(!v.is_partial_of(&h));
    }

    #[test]
    fn divergence_detects_stale_phantom_and_missing() {
        let h = sample_history();
        // View saw only the first three events: a@v1, b alive (phantom), no c.
        let mut v = View::new();
        for s in 1..=3 {
            v.observe(h.at(s).unwrap().clone());
        }
        let div = v.divergent_entities(&h);
        assert_eq!(div, vec!["b", "c"]);
        // A view that missed the update diverges on version.
        let mut v = View::new();
        v.observe(h.at(1).unwrap().clone());
        v.observe(h.at(2).unwrap().clone());
        v.observe(h.at(4).unwrap().clone());
        v.observe(h.at(5).unwrap().clone());
        let div = v.divergent_entities(&h);
        assert_eq!(div, vec!["a"]);
    }

    #[test]
    fn frontier_log_detects_time_travel() {
        let mut log = FrontierLog::new();
        log.record(10, 3);
        log.record(20, 7);
        log.record(30, 7);
        assert!(log.time_travels().is_empty());
        // Restart against a stale upstream: frontier regresses to 4.
        log.record(40, 4);
        log.record(50, 9);
        let t = log.time_travels();
        assert_eq!(t, vec![(40, 7, 4)]);
        assert_eq!(log.max_travel_depth(), 3);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn frontier_log_rejects_unordered_samples() {
        let mut log = FrontierLog::new();
        log.record(10, 1);
        log.record(5, 2);
    }

    #[test]
    fn state_of_partial_view_applies_in_observation_order() {
        let h = sample_history();
        let mut v = View::new();
        v.observe(h.at(2).unwrap().clone()); // create b
        v.observe(h.at(4).unwrap().clone()); // delete b
        assert!(v.state().is_empty());
        // Update without create is a no-op on S′ (the entity is unknown).
        let mut v = View::new();
        v.observe(h.at(3).unwrap().clone());
        assert!(v.state().is_empty());
    }
}
