//! # ph-core — partial histories: the model and the testing tool
//!
//! This crate is the reproduction of the paper's primary contribution
//! (*"Reasoning about modern datacenter infrastructures using partial
//! histories"*, HotOS '21):
//!
//! * [`history`] — the formal model of §3: the history `H` of committed
//!   changes, the materialized state `S`, partial histories `H′ ⊆ H` that
//!   preserve relative order, per-component views `(H′, S′)`, and the
//!   divergence/staleness/time-travel metrics of §4.2;
//! * [`observe`] — the observability model: which events of `H` a component
//!   can reconstruct from *sparse reads* of `S′` (it cannot, in general —
//!   §3), and the gap analysis behind Figure 3c;
//! * [`epoch`] — the epoch-bounded delivery model sketched in §6.2:
//!   partition `H` into epochs and guarantee all-or-nothing visibility per
//!   epoch, trading coordination for bounded divergence;
//! * [`divergence`] — sampled per-view lag (`|H| − |H′|`) summaries, the
//!   measured counterpart of the §4.2 divergence metrics, folded into every
//!   [`harness::RunReport`];
//! * [`causality`] — happens-before recovery from simulation traces,
//!   used to pick perturbation points causally related to component
//!   decisions (§7);
//! * [`autoguide`] — the §7 automation loop: derive replayable
//!   perturbation candidates from a reference trace's causality and run
//!   them, no hand-tuning required;
//! * [`perturb`] — the §7 testing tool's perturbation strategies:
//!   staleness injection (delay cache updates), time-travel injection
//!   (crash, restart against a stale upstream, replay held events),
//!   observability-gap injection (drop notifications), plus the baseline
//!   fault injectors the paper compares against in §5/§6.1 (uniform random
//!   crashes, CrashTuner-style crash-after-view-update, CoFI-style
//!   partitions);
//! * [`oracle`] — test oracles over simulation traces and world state,
//!   with violation reports carrying the evidence;
//! * [`harness`] — the explorer: run a scenario under a strategy across
//!   seeds, count trials-to-first-violation, and build the detection
//!   matrices reported in EXPERIMENTS.md;
//! * [`parallel`] — the deterministic work-stealing trial scheduler:
//!   positional splitmix64 seed derivation, order-stable merge by trial
//!   index, and cooperative early-cancel, so `explore_parallel(n)` is
//!   byte-identical to the sequential explorer at any thread count;
//! * [`provenance`] — the backward trace slicer: from a violating
//!   destructive action, walk the happens-before graph back to the injected
//!   perturbation and classify the resulting **blame chain** with the §4.2
//!   taxonomy (staleness / time-travel / observability-gap), cross-checkable
//!   against the static witness class from `ph-lint`;
//! * [`telemetry`] — hunt observability: per-(scenario, strategy) trial
//!   counters, per-trial latency histograms, events per simulated second,
//!   time-to-detection, and injection effectiveness, exportable in
//!   Prometheus text-exposition format.
//!
//! The crate depends only on [`ph_sim`] (the substrate) and `ph_lint` (the
//! shared §4.2 [`ph_lint::summary::PatternClass`] taxonomy): the model and
//! tool are substrate-agnostic, and `ph-scenarios` wires them to the
//! Kubernetes-like stack in `ph-cluster`.
//!
//! ## The model in five lines
//!
//! ```
//! use ph_core::history::{ChangeOp, History, View};
//!
//! let mut h = History::new();                    // the ground truth H
//! h.append("pod", ChangeOp::Create);             // seq 1
//! h.append("pod", ChangeOp::Delete);             // seq 2
//! let mut view = View::new();                    // a component's (H′, S′)
//! view.observe(h.at(1).unwrap().clone());        // it saw the create…
//! assert!(view.history.is_partial_of(&h));       // …a valid partial history
//! assert_eq!(view.lag(&h), 1);                   // one event behind (stale)
//! assert!(view.state().contains_key("pod"));     // S′ disagrees with S:
//! assert!(h.state().is_empty());                 // the pod is long gone
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autoguide;
pub mod canon;
pub mod causality;
pub mod crosscheck;
pub mod divergence;
pub mod epoch;
pub mod harness;
pub mod history;
pub mod observe;
pub mod oracle;
pub mod parallel;
pub mod perturb;
pub mod provenance;
pub mod telemetry;

pub use autoguide::{
    candidates, explore, explore_parallel, AutoFinding, Candidate, CandidateStrategy, ClassCensus,
};
pub use canon::{canonicalize, canonicalize_ops, plan_class, PlannedOp};
pub use causality::CausalGraph;
pub use divergence::{DivergenceSummary, LagSampler, ViewLag, ViewSlot};
pub use epoch::{EpochBuffer, EpochPartition};
pub use harness::{DetectionMatrix, Explorer, RunReport, TrialOutcome};
pub use history::{Change, ChangeOp, FrontierLog, History, PartialHistory, View};
pub use observe::{observability_report, ObservabilityReport};
pub use oracle::{FnOracle, Oracle, UniqueExecutionOracle, Violation};
pub use parallel::{default_threads, derive_trial_seed, run_indexed};
pub use perturb::{
    CoFiPartitions, CrashTunerCrashes, NoFault, NotificationDropper, RandomCrashes,
    StalenessInjector, Strategy, Targets, TimeTravelInjector,
};
pub use provenance::{explain, BlameChain, BlameLink, BlameSpec, BlameSummary};
pub use telemetry::{print_prometheus, HuntReport, StrategyStats};
