//! The epoch-bounded programming model sketched in §6.2.
//!
//! The paper proposes bounding divergence by breaking `H` into epochs (as in
//! streaming systems) and guaranteeing: *if a service can see one event
//! within an epoch, it can see all other events within that epoch*. This
//! module implements that contract as a consumer-side buffer:
//! [`EpochBuffer`] holds arriving changes back until their epoch is sealed,
//! then releases the epoch atomically. The cost is delivery delay
//! (coordination); the benefit is that staleness and observability gaps
//! cannot occur *within* an epoch — only at whole-epoch granularity.

use crate::history::Change;

/// A static partition of sequence numbers into fixed-size epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochPartition {
    size: u64,
}

impl EpochPartition {
    /// Epochs of `size` consecutive sequence numbers: epoch 0 is seqs
    /// `1..=size`, epoch 1 is `size+1..=2*size`, …
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: u64) -> EpochPartition {
        assert!(size > 0, "epoch size must be positive");
        EpochPartition { size }
    }

    /// The configured epoch size.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The epoch containing sequence number `seq` (1-based seqs).
    ///
    /// # Panics
    ///
    /// Panics if `seq == 0` (no change has sequence number 0).
    pub fn epoch_of(&self, seq: u64) -> u64 {
        assert!(seq > 0, "sequence numbers start at 1");
        (seq - 1) / self.size
    }

    /// First sequence number of `epoch`.
    pub fn first_seq(&self, epoch: u64) -> u64 {
        epoch * self.size + 1
    }

    /// Last sequence number of `epoch`.
    pub fn last_seq(&self, epoch: u64) -> u64 {
        (epoch + 1) * self.size
    }

    /// An epoch is *sealed* once the history has committed past its last
    /// sequence number.
    pub fn is_sealed(&self, epoch: u64, committed: u64) -> bool {
        committed >= self.last_seq(epoch)
    }

    /// The static worst-case staleness of a gap-free, eagerly-draining
    /// consumer: up to `size - 1` committed events in the still-unsealed
    /// epoch, plus the sealing event itself before release happens. This
    /// is the bound the model checker's epoch-safety verdict leans on —
    /// within it, divergence is coordination delay, not a hazard.
    pub fn staleness_ceiling(&self) -> u64 {
        self.size
    }
}

/// Consumer-side enforcement of the all-or-nothing epoch guarantee.
///
/// Changes are pushed as they arrive (possibly with gaps — the buffer does
/// not heal missing events, it *detects* them) and released strictly in
/// epoch order, each epoch complete, once sealed.
#[derive(Debug, Clone)]
pub struct EpochBuffer {
    partition: EpochPartition,
    /// Buffered changes keyed by seq, sparse.
    pending: std::collections::BTreeMap<u64, Change>,
    /// Next epoch to release.
    next_epoch: u64,
    /// Total changes released so far.
    released: u64,
    /// Peak buffer occupancy (coordination-cost metric).
    peak_buffered: usize,
}

/// Why an epoch could not be released.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpochError {
    /// The epoch is not sealed yet (history hasn't passed its end).
    NotSealed {
        /// The epoch in question.
        epoch: u64,
    },
    /// The epoch is sealed but events are missing from the buffer — the
    /// feed violated the epoch contract (dropped notifications).
    Incomplete {
        /// The epoch in question.
        epoch: u64,
        /// The missing sequence numbers.
        missing: Vec<u64>,
    },
}

impl EpochBuffer {
    /// Creates an empty buffer over the given partition.
    pub fn new(partition: EpochPartition) -> EpochBuffer {
        EpochBuffer {
            partition,
            pending: std::collections::BTreeMap::new(),
            next_epoch: 0,
            released: 0,
            peak_buffered: 0,
        }
    }

    /// The partition in force.
    pub fn partition(&self) -> EpochPartition {
        self.partition
    }

    /// Buffers an arriving change. Late arrivals for already-released
    /// epochs are ignored (they were already delivered or declared missing).
    pub fn push(&mut self, change: Change) {
        if self.partition.epoch_of(change.seq) < self.next_epoch {
            return;
        }
        self.pending.insert(change.seq, change);
        self.peak_buffered = self.peak_buffered.max(self.pending.len());
    }

    /// Attempts to release the next epoch given that the history has
    /// committed up to `committed`.
    ///
    /// # Errors
    ///
    /// [`EpochError::NotSealed`] if the epoch isn't over yet;
    /// [`EpochError::Incomplete`] if it is over but events never arrived.
    pub fn release_next(&mut self, committed: u64) -> Result<Vec<Change>, EpochError> {
        let epoch = self.next_epoch;
        if !self.partition.is_sealed(epoch, committed) {
            return Err(EpochError::NotSealed { epoch });
        }
        let lo = self.partition.first_seq(epoch);
        let hi = self.partition.last_seq(epoch);
        let missing: Vec<u64> = (lo..=hi)
            .filter(|s| !self.pending.contains_key(s))
            .collect();
        if !missing.is_empty() {
            return Err(EpochError::Incomplete { epoch, missing });
        }
        let mut out = Vec::with_capacity(self.partition.size() as usize);
        for s in lo..=hi {
            out.push(self.pending.remove(&s).expect("checked"));
        }
        self.next_epoch += 1;
        self.released += out.len() as u64;
        Ok(out)
    }

    /// Releases every currently releasable epoch, in order, stopping at the
    /// first unsealed or incomplete one.
    pub fn drain_ready(&mut self, committed: u64) -> Vec<Vec<Change>> {
        let mut out = Vec::new();
        while let Ok(epoch) = self.release_next(committed) {
            out.push(epoch);
        }
        out
    }

    /// Skips an incomplete epoch (the consumer chose to re-list instead of
    /// waiting for lost events), discarding whatever was buffered for it.
    pub fn skip_epoch(&mut self) {
        let hi = self.partition.last_seq(self.next_epoch);
        let keys: Vec<u64> = self.pending.range(..=hi).map(|(&s, _)| s).collect();
        for k in keys {
            self.pending.remove(&k);
        }
        self.next_epoch += 1;
    }

    /// Number of changes delivered so far.
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Number of changes currently held back.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// Highest buffer occupancy ever reached — the coordination cost the
    /// §6.2 granularity knob trades against staleness bounds.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// The §6.2 guarantee as a checkable property: with the consumer's view
    /// being everything released so far, its staleness relative to
    /// `committed` is bounded by buffered + up to one unsealed epoch.
    pub fn staleness_bound(&self, committed: u64) -> u64 {
        committed.saturating_sub(self.partition.first_seq(self.next_epoch) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::ChangeOp;

    fn ch(seq: u64) -> Change {
        Change {
            seq,
            entity: format!("e{seq}"),
            op: ChangeOp::Create,
        }
    }

    #[test]
    fn partition_maps_seqs_to_epochs() {
        let p = EpochPartition::new(3);
        assert_eq!(p.epoch_of(1), 0);
        assert_eq!(p.epoch_of(3), 0);
        assert_eq!(p.epoch_of(4), 1);
        assert_eq!(p.first_seq(1), 4);
        assert_eq!(p.last_seq(1), 6);
        assert!(p.is_sealed(0, 3));
        assert!(!p.is_sealed(1, 5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_epoch_size_panics() {
        EpochPartition::new(0);
    }

    #[test]
    fn complete_epoch_releases_atomically() {
        let mut b = EpochBuffer::new(EpochPartition::new(2));
        b.push(ch(1));
        // Sealed? History only at 1 → no.
        assert_eq!(b.release_next(1), Err(EpochError::NotSealed { epoch: 0 }));
        b.push(ch(2));
        let epoch = b.release_next(2).expect("complete");
        assert_eq!(epoch.iter().map(|c| c.seq).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(b.released(), 2);
    }

    #[test]
    fn out_of_order_arrival_within_epoch_is_fine() {
        let mut b = EpochBuffer::new(EpochPartition::new(3));
        b.push(ch(3));
        b.push(ch(1));
        b.push(ch(2));
        let epoch = b.release_next(3).expect("complete");
        let seqs: Vec<u64> = epoch.iter().map(|c| c.seq).collect();
        assert_eq!(
            seqs,
            vec![1, 2, 3],
            "released in seq order regardless of arrival"
        );
    }

    #[test]
    fn missing_event_blocks_whole_epoch() {
        let mut b = EpochBuffer::new(EpochPartition::new(2));
        b.push(ch(2)); // 1 never arrives (dropped notification)
        match b.release_next(5) {
            Err(EpochError::Incomplete { epoch: 0, missing }) => {
                assert_eq!(missing, vec![1]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // The all-or-nothing guarantee: the consumer saw event 2's arrival
        // but the buffer refuses to expose it without event 1.
        assert_eq!(b.released(), 0);
    }

    #[test]
    fn skip_epoch_unblocks_after_a_gap() {
        let mut b = EpochBuffer::new(EpochPartition::new(2));
        b.push(ch(2));
        b.push(ch(3));
        b.push(ch(4));
        assert!(b.release_next(4).is_err());
        b.skip_epoch(); // give up on epoch 0
        let epoch = b.release_next(4).expect("epoch 1 complete");
        assert_eq!(epoch.iter().map(|c| c.seq).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn drain_ready_releases_multiple_epochs_in_order() {
        let mut b = EpochBuffer::new(EpochPartition::new(2));
        for s in 1..=6 {
            b.push(ch(s));
        }
        let epochs = b.drain_ready(5); // epoch 2 (seqs 5,6) not sealed
        assert_eq!(epochs.len(), 2);
        assert_eq!(b.buffered(), 2);
        let epochs = b.drain_ready(6);
        assert_eq!(epochs.len(), 1);
        assert_eq!(b.buffered(), 0);
    }

    #[test]
    fn late_arrivals_for_released_epochs_are_ignored() {
        let mut b = EpochBuffer::new(EpochPartition::new(1));
        b.push(ch(1));
        b.release_next(1).expect("ok");
        b.push(ch(1)); // replay
        assert_eq!(b.buffered(), 0);
    }

    #[test]
    fn smaller_epochs_buffer_less() {
        // Coordination-cost shape behind the E2 bench: with the same feed,
        // a finer partition holds fewer events back at peak.
        let feed: Vec<Change> = (1..=64).map(ch).collect();
        let mut peaks = Vec::new();
        for size in [1u64, 4, 16, 64] {
            let mut b = EpochBuffer::new(EpochPartition::new(size));
            for c in &feed {
                b.push(c.clone());
                b.drain_ready(c.seq);
            }
            peaks.push(b.peak_buffered());
        }
        assert!(peaks.windows(2).all(|w| w[0] <= w[1]), "peaks {peaks:?}");
        assert_eq!(peaks[0], 1);
        assert_eq!(peaks[3], 64);
    }

    #[test]
    fn staleness_ceiling_bounds_gap_free_eager_consumers() {
        for size in [1u64, 2, 4, 8] {
            let p = EpochPartition::new(size);
            let mut b = EpochBuffer::new(p);
            let mut tight = false;
            for s in 1..=32 {
                b.push(ch(s));
                // Just before draining, the sealing event itself may sit
                // at the ceiling — never beyond it.
                assert!(b.staleness_bound(s) <= p.staleness_ceiling());
                tight |= b.staleness_bound(s) == p.staleness_ceiling();
                b.drain_ready(s);
                // After an eager drain only the open epoch's prefix lags.
                assert!(b.staleness_bound(s) < p.staleness_ceiling().max(1));
            }
            assert!(tight, "ceiling is reached for size {size}");
        }
    }

    #[test]
    fn staleness_bound_tracks_unreleased_span() {
        let mut b = EpochBuffer::new(EpochPartition::new(4));
        assert_eq!(b.staleness_bound(0), 0);
        for s in 1..=3 {
            b.push(ch(s));
        }
        // Committed 3, nothing released: bound = 3.
        assert_eq!(b.staleness_bound(3), 3);
        b.push(ch(4));
        b.drain_ready(4);
        assert_eq!(b.staleness_bound(4), 0);
    }
}
