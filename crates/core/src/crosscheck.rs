//! Static/dynamic cross-check: does the hazard checker agree with the
//! explorer?
//!
//! The static pass ([`ph_lint::summary::check_summary`]) predicts, from a
//! scenario's access summaries alone, which §4.2 pattern class its buggy
//! variant can exhibit; the dynamic explorer actually detects a violation
//! under guided perturbation. A [`CrossCheckTable`] lines the two up, one
//! row per scenario, and `phtool lint` renders it. Agreement is
//! *containment*: static analysis is conservative and may report several
//! classes (a ByInstance component with an unfenced cache gate is both
//! stale-able and time-travel-able), so a row agrees statically when the
//! expected class is among the flagged ones for the buggy variant — and
//! the fixed variant flags nothing at all.

use ph_lint::findings::esc;
use ph_lint::summary::{Hazard, PatternClass};

/// One scenario's static (and optionally dynamic) verdicts.
#[derive(Debug, Clone)]
pub struct CrossCheckRow {
    /// Scenario name, e.g. `k8s-59848`.
    pub scenario: String,
    /// The §4.2 class the scenario is documented to exercise.
    pub expected: PatternClass,
    /// Hazards flagged on the buggy variant's summaries.
    pub buggy_hazards: Vec<Hazard>,
    /// Hazards flagged on the fixed variant's summaries (should be empty).
    pub fixed_hazards: Vec<Hazard>,
    /// Did the guided dynamic run on the buggy variant detect a violation?
    /// `None` when only the static pass ran (e.g. `phtool lint`).
    pub dynamic_buggy_detected: Option<bool>,
    /// Was the guided dynamic run on the fixed variant clean?
    pub dynamic_fixed_clean: Option<bool>,
}

impl CrossCheckRow {
    /// Distinct classes flagged on the buggy variant, sorted.
    pub fn buggy_classes(&self) -> Vec<PatternClass> {
        let mut out: Vec<PatternClass> = self.buggy_hazards.iter().map(|h| h.class).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Static agreement: expected class flagged on buggy, fixed clean.
    pub fn static_agrees(&self) -> bool {
        self.buggy_classes().contains(&self.expected) && self.fixed_hazards.is_empty()
    }

    /// Full agreement: static agreement plus (when the dynamic side ran)
    /// buggy detected and fixed clean dynamically too.
    pub fn agrees(&self) -> bool {
        self.static_agrees()
            && self.dynamic_buggy_detected.unwrap_or(true)
            && self.dynamic_fixed_clean.unwrap_or(true)
    }
}

/// The full static/dynamic agreement table.
#[derive(Debug, Clone, Default)]
pub struct CrossCheckTable {
    /// One row per scenario.
    pub rows: Vec<CrossCheckRow>,
}

impl CrossCheckTable {
    /// Do all rows agree statically?
    pub fn all_static_agree(&self) -> bool {
        self.rows.iter().all(|r| r.static_agrees())
    }

    /// Do all rows agree fully (static and, where run, dynamic)?
    pub fn all_agree(&self) -> bool {
        self.rows.iter().all(|r| r.agrees())
    }

    /// Human-readable table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:<18} {:<30} {:<8} {}\n",
            "scenario", "expected", "static(buggy)", "fixed", "verdict"
        ));
        for r in &self.rows {
            let classes = r
                .buggy_classes()
                .iter()
                .map(|c| c.as_str())
                .collect::<Vec<_>>()
                .join(",");
            let fixed = if r.fixed_hazards.is_empty() {
                "clean"
            } else {
                "FLAGGED"
            };
            let verdict = if r.static_agrees() {
                "agree"
            } else {
                "MISMATCH"
            };
            out.push_str(&format!(
                "{:<16} {:<18} {:<30} {:<8} {}\n",
                r.scenario,
                r.expected.as_str(),
                classes,
                fixed,
                verdict
            ));
        }
        out
    }

    /// Deterministic JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"rows\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let classes = r
                .buggy_classes()
                .iter()
                .map(|c| format!("\"{}\"", c.as_str()))
                .collect::<Vec<_>>()
                .join(",");
            let hazards = r
                .buggy_hazards
                .iter()
                .map(|h| h.to_json())
                .collect::<Vec<_>>()
                .join(",");
            let fixed_hazards = r
                .fixed_hazards
                .iter()
                .map(|h| h.to_json())
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{{\"scenario\":\"{}\",\"expected\":\"{}\",\"static_buggy_classes\":[{}],\
                 \"buggy_hazards\":[{}],\"fixed_hazards\":[{}],\"static_agrees\":{}}}",
                esc(&r.scenario),
                r.expected.as_str(),
                classes,
                hazards,
                fixed_hazards,
                r.static_agrees()
            ));
        }
        out.push_str(&format!(
            "],\"all_static_agree\":{}}}",
            self.all_static_agree()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hazard(class: PatternClass) -> Hazard {
        Hazard {
            component: "c".into(),
            action: "a".into(),
            class,
            detail: "d".into(),
        }
    }

    #[test]
    fn containment_semantics() {
        let row = CrossCheckRow {
            scenario: "s".into(),
            expected: PatternClass::Staleness,
            buggy_hazards: vec![
                hazard(PatternClass::Staleness),
                hazard(PatternClass::TimeTravel),
            ],
            fixed_hazards: vec![],
            dynamic_buggy_detected: None,
            dynamic_fixed_clean: None,
        };
        assert!(row.static_agrees());
        assert_eq!(
            row.buggy_classes(),
            vec![PatternClass::Staleness, PatternClass::TimeTravel]
        );
    }

    #[test]
    fn flagged_fixed_variant_breaks_agreement() {
        let row = CrossCheckRow {
            scenario: "s".into(),
            expected: PatternClass::Staleness,
            buggy_hazards: vec![hazard(PatternClass::Staleness)],
            fixed_hazards: vec![hazard(PatternClass::Staleness)],
            dynamic_buggy_detected: None,
            dynamic_fixed_clean: None,
        };
        assert!(!row.static_agrees());
    }

    #[test]
    fn dynamic_side_feeds_full_agreement() {
        let mut row = CrossCheckRow {
            scenario: "s".into(),
            expected: PatternClass::TimeTravel,
            buggy_hazards: vec![hazard(PatternClass::TimeTravel)],
            fixed_hazards: vec![],
            dynamic_buggy_detected: Some(true),
            dynamic_fixed_clean: Some(true),
        };
        assert!(row.agrees());
        row.dynamic_buggy_detected = Some(false);
        assert!(!row.agrees());
    }

    #[test]
    fn json_is_stable() {
        let table = CrossCheckTable {
            rows: vec![CrossCheckRow {
                scenario: "s".into(),
                expected: PatternClass::ObservabilityGap,
                buggy_hazards: vec![hazard(PatternClass::ObservabilityGap)],
                fixed_hazards: vec![],
                dynamic_buggy_detected: None,
                dynamic_fixed_clean: None,
            }],
        };
        let json = table.to_json();
        assert!(json.contains("\"expected\":\"observability-gap\""));
        assert!(json.contains("\"all_static_agree\":true"));
    }
}
