//! Static/dynamic cross-check: does the hazard checker agree with the
//! explorer?
//!
//! The static pass ([`ph_lint::summary::check_summary`]) predicts, from a
//! scenario's access summaries alone, which §4.2 pattern class its buggy
//! variant can exhibit; the dynamic explorer actually detects a violation
//! under guided perturbation. A [`CrossCheckTable`] lines the two up, one
//! row per scenario, and `phtool lint` renders it. Agreement is
//! *containment*: static analysis is conservative and may report several
//! classes (a ByInstance component with an unfenced cache gate is both
//! stale-able and time-travel-able), so a row agrees statically when the
//! expected class is among the flagged ones for the buggy variant — and
//! the fixed variant flags nothing at all.

use ph_lint::findings::esc;
use ph_lint::summary::{Hazard, PatternClass};

/// One scenario's static (and optionally dynamic) verdicts.
#[derive(Debug, Clone)]
pub struct CrossCheckRow {
    /// Scenario name, e.g. `k8s-59848`.
    pub scenario: String,
    /// The §4.2 class the scenario is documented to exercise.
    pub expected: PatternClass,
    /// Hazards flagged on the buggy variant's summaries.
    pub buggy_hazards: Vec<Hazard>,
    /// Hazards flagged on the fixed variant's summaries (should be empty).
    pub fixed_hazards: Vec<Hazard>,
    /// Did the guided dynamic run on the buggy variant detect a violation?
    /// `None` when only the static pass ran (e.g. `phtool lint`).
    pub dynamic_buggy_detected: Option<bool>,
    /// Was the guided dynamic run on the fixed variant clean?
    pub dynamic_fixed_clean: Option<bool>,
    /// Components covered by the static pass (one summary each).
    pub static_components: Vec<String>,
    /// Components implicated dynamically that have *no* static row: an
    /// oracle blamed them but `access_summaries` never declared them, so
    /// the static side is silent for the wrong reason. Rendered as
    /// `static=missing` and always a disagreement.
    pub missing_static: Vec<String>,
    /// Rendered minimal witnesses from the model checker for the buggy
    /// variant (`ph_lint::modelcheck`), in canonical order.
    pub buggy_witnesses: Vec<String>,
}

impl CrossCheckRow {
    /// Distinct classes flagged on the buggy variant, sorted.
    pub fn buggy_classes(&self) -> Vec<PatternClass> {
        let mut out: Vec<PatternClass> = self.buggy_hazards.iter().map(|h| h.class).collect();
        out.sort();
        out.dedup();
        out
    }

    /// Records a component the dynamic side implicated. If the static
    /// pass has no summary for it, the row gains a `static=missing` entry
    /// — previously such components silently vanished from the table.
    pub fn record_dynamic_component(&mut self, component: &str) {
        if self.static_components.iter().any(|c| c == component)
            || self.missing_static.iter().any(|c| c == component)
        {
            return;
        }
        self.missing_static.push(component.to_string());
        self.missing_static.sort();
    }

    /// Static agreement: expected class flagged on buggy, fixed clean,
    /// and no dynamically-implicated component missing a static row.
    pub fn static_agrees(&self) -> bool {
        self.buggy_classes().contains(&self.expected)
            && self.fixed_hazards.is_empty()
            && self.missing_static.is_empty()
    }

    /// Full agreement: static agreement plus (when the dynamic side ran)
    /// buggy detected and fixed clean dynamically too.
    pub fn agrees(&self) -> bool {
        self.static_agrees()
            && self.dynamic_buggy_detected.unwrap_or(true)
            && self.dynamic_fixed_clean.unwrap_or(true)
    }
}

/// The full static/dynamic agreement table.
#[derive(Debug, Clone, Default)]
pub struct CrossCheckTable {
    /// One row per scenario.
    pub rows: Vec<CrossCheckRow>,
}

impl CrossCheckTable {
    /// Do all rows agree statically?
    pub fn all_static_agree(&self) -> bool {
        self.rows.iter().all(|r| r.static_agrees())
    }

    /// Do all rows agree fully (static and, where run, dynamic)?
    pub fn all_agree(&self) -> bool {
        self.rows.iter().all(|r| r.agrees())
    }

    /// Human-readable table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:<18} {:<30} {:<8} {}\n",
            "scenario", "expected", "static(buggy)", "fixed", "verdict"
        ));
        for r in &self.rows {
            let classes = r
                .buggy_classes()
                .iter()
                .map(|c| c.as_str())
                .collect::<Vec<_>>()
                .join(",");
            let fixed = if r.fixed_hazards.is_empty() {
                "clean"
            } else {
                "FLAGGED"
            };
            let verdict = if !r.missing_static.is_empty() {
                "static=missing"
            } else if r.static_agrees() {
                "agree"
            } else {
                "MISMATCH"
            };
            out.push_str(&format!(
                "{:<16} {:<18} {:<30} {:<8} {}\n",
                r.scenario,
                r.expected.as_str(),
                classes,
                fixed,
                verdict
            ));
            for m in &r.missing_static {
                out.push_str(&format!(
                    "{:<16}   dynamic implicates `{m}` but access_summaries has no row\n",
                    ""
                ));
            }
            for w in &r.buggy_witnesses {
                out.push_str(&format!("{:<16}   witness: {w}\n", ""));
            }
        }
        out
    }

    /// Deterministic JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"rows\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let classes = r
                .buggy_classes()
                .iter()
                .map(|c| format!("\"{}\"", c.as_str()))
                .collect::<Vec<_>>()
                .join(",");
            let hazards = r
                .buggy_hazards
                .iter()
                .map(|h| h.to_json())
                .collect::<Vec<_>>()
                .join(",");
            let fixed_hazards = r
                .fixed_hazards
                .iter()
                .map(|h| h.to_json())
                .collect::<Vec<_>>()
                .join(",");
            let missing = r
                .missing_static
                .iter()
                .map(|m| format!("\"{}\"", esc(m)))
                .collect::<Vec<_>>()
                .join(",");
            let witnesses = r
                .buggy_witnesses
                .iter()
                .map(|w| format!("\"{}\"", esc(w)))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{{\"scenario\":\"{}\",\"expected\":\"{}\",\"static_buggy_classes\":[{}],\
                 \"buggy_hazards\":[{}],\"fixed_hazards\":[{}],\"missing_static\":[{}],\
                 \"witnesses\":[{}],\"static_agrees\":{}}}",
                esc(&r.scenario),
                r.expected.as_str(),
                classes,
                hazards,
                fixed_hazards,
                missing,
                witnesses,
                r.static_agrees()
            ));
        }
        out.push_str(&format!(
            "],\"all_static_agree\":{}}}",
            self.all_static_agree()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hazard(class: PatternClass) -> Hazard {
        Hazard {
            component: "c".into(),
            action: "a".into(),
            class,
            detail: "d".into(),
        }
    }

    #[test]
    fn containment_semantics() {
        let row = CrossCheckRow {
            scenario: "s".into(),
            expected: PatternClass::Staleness,
            buggy_hazards: vec![
                hazard(PatternClass::Staleness),
                hazard(PatternClass::TimeTravel),
            ],
            fixed_hazards: vec![],
            dynamic_buggy_detected: None,
            dynamic_fixed_clean: None,
            static_components: vec!["c".into()],
            missing_static: vec![],
            buggy_witnesses: vec![],
        };
        assert!(row.static_agrees());
        assert_eq!(
            row.buggy_classes(),
            vec![PatternClass::Staleness, PatternClass::TimeTravel]
        );
    }

    #[test]
    fn flagged_fixed_variant_breaks_agreement() {
        let row = CrossCheckRow {
            scenario: "s".into(),
            expected: PatternClass::Staleness,
            buggy_hazards: vec![hazard(PatternClass::Staleness)],
            fixed_hazards: vec![hazard(PatternClass::Staleness)],
            dynamic_buggy_detected: None,
            dynamic_fixed_clean: None,
            static_components: vec!["c".into()],
            missing_static: vec![],
            buggy_witnesses: vec![],
        };
        assert!(!row.static_agrees());
    }

    #[test]
    fn dynamic_side_feeds_full_agreement() {
        let mut row = CrossCheckRow {
            scenario: "s".into(),
            expected: PatternClass::TimeTravel,
            buggy_hazards: vec![hazard(PatternClass::TimeTravel)],
            fixed_hazards: vec![],
            dynamic_buggy_detected: Some(true),
            dynamic_fixed_clean: Some(true),
            static_components: vec!["c".into()],
            missing_static: vec![],
            buggy_witnesses: vec![],
        };
        assert!(row.agrees());
        row.dynamic_buggy_detected = Some(false);
        assert!(!row.agrees());
    }

    #[test]
    fn dynamically_implicated_component_without_static_row_is_a_disagreement() {
        // Regression: such a component used to vanish from the table.
        let mut row = CrossCheckRow {
            scenario: "s".into(),
            expected: PatternClass::Staleness,
            buggy_hazards: vec![hazard(PatternClass::Staleness)],
            fixed_hazards: vec![],
            dynamic_buggy_detected: Some(true),
            dynamic_fixed_clean: Some(true),
            static_components: vec!["c".into()],
            missing_static: vec![],
            buggy_witnesses: vec![],
        };
        assert!(row.static_agrees());
        row.record_dynamic_component("c"); // covered — no change
        assert!(row.static_agrees());
        row.record_dynamic_component("rogue");
        assert_eq!(row.missing_static, vec!["rogue".to_string()]);
        assert!(!row.static_agrees());
        assert!(!row.agrees());
        let table = CrossCheckTable { rows: vec![row] };
        let text = table.render_text();
        assert!(text.contains("static=missing"), "{text}");
        assert!(text.contains("`rogue`"), "{text}");
        assert!(table.to_json().contains("\"missing_static\":[\"rogue\"]"));
    }

    #[test]
    fn json_is_stable() {
        let table = CrossCheckTable {
            rows: vec![CrossCheckRow {
                scenario: "s".into(),
                expected: PatternClass::ObservabilityGap,
                buggy_hazards: vec![hazard(PatternClass::ObservabilityGap)],
                fixed_hazards: vec![],
                dynamic_buggy_detected: None,
                dynamic_fixed_clean: None,
                static_components: vec!["c".into()],
                missing_static: vec![],
                buggy_witnesses: vec!["a [staleness] via [delay-cache(pods)]".into()],
            }],
        };
        let json = table.to_json();
        assert!(json.contains("\"expected\":\"observability-gap\""));
        assert!(json.contains("\"witnesses\":[\"a [staleness] via [delay-cache(pods)]\"]"));
        assert!(json.contains("\"all_static_agree\":true"));
    }
}
