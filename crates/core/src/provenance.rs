//! Violation provenance: backward causal blame chains (§7).
//!
//! A detected violation used to be a bit plus a seed — the human still had
//! to replay the trace by hand to learn *which* injected perturbation made
//! *which* view stale. This module is the dynamic counterpart of the static
//! witnesses in `ph-lint::modelcheck`: given a violating run's [`Trace`] and
//! a per-scenario [`BlameSpec`] (who acts, and under which annotation
//! labels), [`explain`] slices the trace backward from the destructive
//! action and reconstructs the minimal causal chain
//!
//! > injected perturbation → store commit(s) → delayed/dropped/reordered
//! > view update → stale read → action
//!
//! classifying it with the same §4.2 taxonomy the model checker uses
//! ([`PatternClass`]): **staleness** (acted on an old-but-once-true view),
//! **time-travel** (re-entered a state it had provably moved past, across a
//! crash/restart), **observability-gap** (the required fact never reached
//! the view — including omission sinks, where the component never acted at
//! all), or **congestion-staleness** (no perturbation was injected at all:
//! queue-delay and queue-drop artifacts from `ph_sim::net`'s finite-
//! bandwidth queues aged the view under offered load alone). The dynamic
//! class is cross-checked against the static witness class for every
//! scenario in CI.
//!
//! Everything here is a pure function of the trace, so same-seed runs
//! produce byte-identical explanations (`BlameChain::to_json`) at any
//! thread count.

use std::collections::{BTreeMap, BTreeSet};

use ph_lint::summary::PatternClass;
use ph_sim::{ActorId, DropReason, SimTime, Trace, TraceEventKind};

use crate::causality::CausalGraph;
use crate::oracle::Violation;

/// How many artifact groups (suppressed view updates / partition drops) a
/// chain lists in full; the rest are counted in [`BlameChain::truncated`].
/// Keeps hbase-style runs (hundreds of delayed replication messages) from
/// drowning the explanation while the effectiveness numbers still cover
/// every artifact.
pub const MAX_ARTIFACT_GROUPS: usize = 6;

/// What a scenario tells the slicer about its acting component.
#[derive(Debug, Clone, Copy)]
pub struct BlameSpec {
    /// Scenario name (appears in the explanation).
    pub scenario: &'static str,
    /// Name of the acting (destructive) component — the blame sink's actor.
    pub component: &'static str,
    /// Annotation labels that mark the destructive action.
    pub action_labels: &'static [&'static str],
    /// Names of the component's possible view caches (apiservers, store
    /// followers): suppression of updates *toward these* is what makes the
    /// component's view partial.
    pub caches: &'static [&'static str],
}

/// One step of a blame chain, anchored to a trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameLink {
    /// Trace sequence number of the anchoring event.
    pub seq: u64,
    /// Logical time of the event.
    pub at: SimTime,
    /// The step's role in the chain (`"crash"`, `"store-commit"`,
    /// `"update-held"`, `"stale-read"`, `"action"`, …).
    pub role: &'static str,
    /// Human-readable account of the step.
    pub detail: String,
}

/// The compact form folded into `RunReport`s and detection matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlameSummary {
    /// §4.2 class of the chain.
    pub class: PatternClass,
    /// Number of links in the (display-capped) chain.
    pub links: usize,
    /// Total injected perturbation artifacts in the run.
    pub injected: usize,
    /// How many of those appear in the blame chain.
    pub in_chain: usize,
}

impl BlameSummary {
    /// Injection effectiveness as an integer percentage (floor), or `None`
    /// when nothing was injected.
    pub fn effectiveness_pct(&self) -> Option<u64> {
        (self.in_chain as u64 * 100).checked_div(self.injected as u64)
    }
}

/// A classified backward slice from a violating destructive action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameChain {
    /// Scenario name, from the spec.
    pub scenario: String,
    /// §4.2 class of the chain (cross-checkable against the static witness
    /// class of the same scenario).
    pub class: PatternClass,
    /// One sentence naming the classification rule that fired.
    pub rationale: String,
    /// Trace seq of the sink action annotation; `None` for omission sinks
    /// (the component never performed the required action).
    pub sink: Option<u64>,
    /// The chain, in trace order.
    pub links: Vec<BlameLink>,
    /// Total injected perturbation artifacts in the run (held, delayed,
    /// interceptor-dropped, partition-dropped messages; victim crashes and
    /// restarts).
    pub injected: usize,
    /// How many injected artifacts appear in the chain (before display
    /// capping) — the paper's "perturb causally related events" heuristic,
    /// measured.
    pub in_chain: usize,
    /// Artifact groups omitted from `links` by the display cap.
    pub truncated: usize,
    /// The first violation the chain explains, if any were reported.
    pub violation: Option<Violation>,
}

impl BlameChain {
    /// The compact summary for reports and matrices.
    pub fn summary(&self) -> BlameSummary {
        BlameSummary {
            class: self.class,
            links: self.links.len(),
            injected: self.injected,
            in_chain: self.in_chain,
        }
    }

    /// Injection effectiveness as an integer percentage (floor), or `None`
    /// when nothing was injected.
    pub fn effectiveness_pct(&self) -> Option<u64> {
        self.summary().effectiveness_pct()
    }

    /// Deterministic JSON rendering — byte-identical across same-seed runs
    /// and thread counts (only integers and escaped strings, no floats).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256 + self.links.len() * 96);
        let _ = write!(
            out,
            "{{\"scenario\":{},\"class\":{},\"rationale\":{},\"sink\":",
            esc(&self.scenario),
            esc(self.class.as_str()),
            esc(&self.rationale)
        );
        match self.sink {
            Some(s) => {
                let _ = write!(out, "{s}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"injected\":{},\"in_chain\":{},\"effectiveness_pct\":",
            self.injected, self.in_chain
        );
        match self.effectiveness_pct() {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"truncated\":{},\"links\":[", self.truncated);
        for (i, l) in self.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"seq\":{},\"at_ns\":{},\"role\":{},\"detail\":{}}}",
                l.seq,
                l.at.0,
                esc(l.role),
                esc(&l.detail)
            );
        }
        out.push_str("],\"violation\":");
        match &self.violation {
            Some(v) => {
                let _ = write!(
                    out,
                    "{{\"oracle\":{},\"at_ns\":{},\"details\":{}}}",
                    esc(&v.oracle),
                    v.at.0,
                    esc(&v.details)
                );
            }
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Fixed-width text rendering for `phtool explain`.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "blame chain for {} — class: {}",
            self.scenario,
            self.class.as_str()
        );
        let _ = writeln!(out, "  rationale: {}", self.rationale);
        match self.effectiveness_pct() {
            Some(p) => {
                let _ = writeln!(
                    out,
                    "  injection effectiveness: {}/{} artifacts in chain ({p}%)",
                    self.in_chain, self.injected
                );
            }
            None => {
                let _ = writeln!(out, "  injection effectiveness: n/a (nothing injected)");
            }
        }
        let _ = writeln!(out, "  {:<8} {:<12} {:<16} detail", "seq", "at", "role");
        for l in &self.links {
            let _ = writeln!(
                out,
                "  {:<8} {:<12} {:<16} {}",
                l.seq, l.at.0, l.role, l.detail
            );
        }
        if self.truncated > 0 {
            let _ = writeln!(out, "  … {} more artifact group(s) omitted", self.truncated);
        }
        match &self.violation {
            Some(v) => {
                let _ = writeln!(out, "  violation: {v}");
            }
            None => {
                let _ = writeln!(out, "  violation: (none reported)");
            }
        }
        out
    }
}

/// JSON string escape (local, to keep `ph-sim`'s internal helper private).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A suppressed view update (one message) and the trace events that tell
/// its story.
#[derive(Debug, Default, Clone)]
struct ArtifactGroup {
    first_seq: u64,
    links: Vec<BlameLink>,
}

/// Computes the blame chain for a run.
///
/// `violations` should be the run's reported violations (possibly empty —
/// the chain is still computed, with the sink search bounded by the end of
/// the trace; callers typically only attach chains to failing runs).
pub fn explain(trace: &Trace, spec: &BlameSpec, violations: &[Violation]) -> BlameChain {
    let mut names: BTreeMap<ActorId, String> = BTreeMap::new();
    for e in trace.iter() {
        if let TraceEventKind::Spawned { actor, name } = &e.kind {
            names.entry(*actor).or_insert_with(|| name.to_string());
        }
    }
    let by_name = |n: &str| -> Option<ActorId> {
        names
            .iter()
            .find(|(_, name)| name.as_str() == n)
            .map(|(&a, _)| a)
    };
    let victim = by_name(spec.component);
    let caches: BTreeSet<ActorId> = spec.caches.iter().filter_map(|c| by_name(c)).collect();
    let name_of = |a: ActorId| -> &str { names.get(&a).map(|s| s.as_str()).unwrap_or("?") };

    let bound = violations
        .iter()
        .map(|v| v.at)
        .min()
        .or_else(|| trace.events().last().map(|e| e.at))
        .unwrap_or(SimTime(0));

    // The sink: the victim's last destructive-action annotation at or
    // before the first violation. Absent => omission sink (the bug is that
    // the action never happened).
    let mut sink: Option<(u64, SimTime, String, String)> = None;
    if let Some(v) = victim {
        for e in trace.iter() {
            if e.at > bound {
                break;
            }
            if let TraceEventKind::Annotation { actor, label, data } = &e.kind {
                if *actor == v && spec.action_labels.iter().any(|l| label.as_str() == *l) {
                    sink = Some((e.seq, e.at, label.to_string(), data.clone()));
                }
            }
        }
    }
    let class_bound = sink.as_ref().map(|s| s.1).unwrap_or(bound);

    // Artifact scan: everything a perturbation strategy (or the scenario's
    // injected faults) left in the trace.
    let mut injected = 0usize;
    let mut in_chain = 0usize;
    let mut crash_links: Vec<BlameLink> = Vec::new();
    let mut victim_crash_seqs: Vec<(u64, SimTime)> = Vec::new();
    let mut victim_restart_seqs: Vec<(u64, SimTime)> = Vec::new();
    // Message id -> suppression artifact group under construction.
    let mut groups: BTreeMap<u64, ArtifactGroup> = BTreeMap::new();
    let mut partition_groups: Vec<ArtifactGroup> = Vec::new();
    let mut suppressed_ids: BTreeSet<u64> = BTreeSet::new();
    let mut any_suppression = false;
    let mut any_partition = false;
    // Congestion artifacts are *emergent*, not injected: the network's
    // queue discipline produced them from offered load, so they count
    // toward neither `injected` nor `in_chain`.
    let mut any_congestion = false;

    let toward_view = |dst: ActorId| -> bool { Some(dst) == victim || caches.contains(&dst) };

    for e in trace.iter() {
        match &e.kind {
            TraceEventKind::MessageHeld { id, src, dst, kind }
            | TraceEventKind::MessageDelayed {
                id, src, dst, kind, ..
            } => {
                injected += 1;
                if toward_view(*dst) && e.at <= class_bound {
                    in_chain += 1;
                    any_suppression = true;
                    suppressed_ids.insert(id.0);
                    let role = if matches!(e.kind, TraceEventKind::MessageHeld { .. }) {
                        "update-held"
                    } else {
                        "update-delayed"
                    };
                    let g = groups.entry(id.0).or_insert_with(|| ArtifactGroup {
                        first_seq: e.seq,
                        links: Vec::new(),
                    });
                    g.links.push(BlameLink {
                        seq: e.seq,
                        at: e.at,
                        role,
                        detail: format!("{kind} {} → {}", name_of(*src), name_of(*dst)),
                    });
                }
            }
            TraceEventKind::MessageDropped {
                id,
                src,
                dst,
                kind,
                reason,
            } => match reason {
                DropReason::Interceptor => {
                    injected += 1;
                    if toward_view(*dst) && e.at <= class_bound {
                        in_chain += 1;
                        any_suppression = true;
                        suppressed_ids.insert(id.0);
                        let g = groups.entry(id.0).or_insert_with(|| ArtifactGroup {
                            first_seq: e.seq,
                            links: Vec::new(),
                        });
                        g.links.push(BlameLink {
                            seq: e.seq,
                            at: e.at,
                            role: "update-dropped",
                            detail: format!("{kind} {} → {}", name_of(*src), name_of(*dst)),
                        });
                    }
                }
                DropReason::Partitioned => {
                    injected += 1;
                    if e.at <= class_bound {
                        in_chain += 1;
                        any_partition = true;
                        partition_groups.push(ArtifactGroup {
                            first_seq: e.seq,
                            links: vec![BlameLink {
                                seq: e.seq,
                                at: e.at,
                                role: "partition-drop",
                                detail: format!("{kind} {} → {}", name_of(*src), name_of(*dst)),
                            }],
                        });
                    }
                }
                // Emergent: a drop-tail queue on the feed overflowed
                // under offered load. Not an injected artifact.
                DropReason::QueueFull if toward_view(*dst) && e.at <= class_bound => {
                    any_congestion = true;
                    suppressed_ids.insert(id.0);
                    let g = groups.entry(id.0).or_insert_with(|| ArtifactGroup {
                        first_seq: e.seq,
                        links: Vec::new(),
                    });
                    g.links.push(BlameLink {
                        seq: e.seq,
                        at: e.at,
                        role: "queue-drop",
                        detail: format!(
                            "{kind} {} → {} tail-dropped by a full transmit queue",
                            name_of(*src),
                            name_of(*dst)
                        ),
                    });
                }
                _ => {}
            },
            // Emergent queueing delay on the feed (recorded only when
            // the message actually waited). Not an injected artifact.
            TraceEventKind::MessageQueued {
                id,
                src,
                dst,
                kind,
                depth,
                waited,
            } if toward_view(*dst) && e.at <= class_bound => {
                any_congestion = true;
                suppressed_ids.insert(id.0);
                let g = groups.entry(id.0).or_insert_with(|| ArtifactGroup {
                    first_seq: e.seq,
                    links: Vec::new(),
                });
                g.links.push(BlameLink {
                    seq: e.seq,
                    at: e.at,
                    role: "queue-delay",
                    detail: format!(
                        "{kind} {} → {} waited {waited} in a transmit queue (depth {depth})",
                        name_of(*src),
                        name_of(*dst)
                    ),
                });
            }
            TraceEventKind::Crashed { actor } if Some(*actor) == victim => {
                injected += 1;
                if e.at <= class_bound {
                    in_chain += 1;
                    victim_crash_seqs.push((e.seq, e.at));
                    crash_links.push(BlameLink {
                        seq: e.seq,
                        at: e.at,
                        role: "crash",
                        detail: format!("{} crashed (view lost)", spec.component),
                    });
                }
            }
            TraceEventKind::Restarted { actor } if Some(*actor) == victim => {
                injected += 1;
                if e.at <= class_bound {
                    in_chain += 1;
                    victim_restart_seqs.push((e.seq, e.at));
                    crash_links.push(BlameLink {
                        seq: e.seq,
                        at: e.at,
                        role: "restart",
                        detail: format!("{} restarted (rebuilding view)", spec.component),
                    });
                }
            }
            _ => {}
        }
    }

    // Second pass: complete each suppressed-update group with its story —
    // the send that committed the update, its release (if any), and its
    // eventual delivery (a stale read if it causally precedes the sink).
    let graph = sink.as_ref().map(|_| CausalGraph::from_trace(trace));
    let slice: BTreeSet<u64> = match (&graph, &sink) {
        (Some(g), Some((s, ..))) => g.slice(*s).into_iter().collect(),
        _ => BTreeSet::new(),
    };
    for e in trace.iter() {
        match &e.kind {
            TraceEventKind::MessageSent { id, src, dst, kind }
                if suppressed_ids.contains(&id.0) =>
            {
                if let Some(g) = groups.get_mut(&id.0) {
                    g.links.push(BlameLink {
                        seq: e.seq,
                        at: e.at,
                        role: "store-commit",
                        detail: format!(
                            "{kind} emitted by {} for {}",
                            name_of(*src),
                            name_of(*dst)
                        ),
                    });
                }
            }
            TraceEventKind::MessageReleased { id } if suppressed_ids.contains(&id.0) => {
                if let Some(g) = groups.get_mut(&id.0) {
                    g.links.push(BlameLink {
                        seq: e.seq,
                        at: e.at,
                        role: "update-released",
                        detail: format!("held update {} re-enters the network", id.0),
                    });
                }
            }
            TraceEventKind::MessageDelivered { id, dst, kind, .. }
                if suppressed_ids.contains(&id.0) =>
            {
                if let Some(g) = groups.get_mut(&id.0) {
                    let (role, what) = if slice.contains(&e.seq) {
                        ("stale-read", "observed before the action")
                    } else {
                        ("late-delivery", "arrived too late to matter")
                    };
                    g.links.push(BlameLink {
                        seq: e.seq,
                        at: e.at,
                        role,
                        detail: format!("{kind} reaches {} ({what})", name_of(*dst)),
                    });
                }
            }
            _ => {}
        }
    }

    // Classify with the §4.2 taxonomy.
    let crashed = !victim_crash_seqs.is_empty();
    let restarted = !victim_restart_seqs.is_empty();
    let (class, rationale) = if crashed && restarted {
        let time_travel = sink.as_ref().is_some_and(|(_, _, label, data)| {
            let v = victim.expect("sink implies victim resolved");
            let (crash_seq, _) = *victim_crash_seqs.last().unwrap();
            // The sink repeats a pre-crash annotation the victim had
            // provably moved past: a same-(label, data) twin exists before
            // the crash AND a later same-data annotation (different label)
            // intervened before the crash — the state was re-entered, not
            // merely re-asserted.
            let mut twin = false;
            let mut last_same_data_label: Option<String> = None;
            for e in trace.iter() {
                if e.seq >= crash_seq {
                    break;
                }
                if let TraceEventKind::Annotation {
                    actor,
                    label: l,
                    data: d,
                } = &e.kind
                {
                    if *actor == v && d == data {
                        if l.as_str() == label.as_str() {
                            twin = true;
                        }
                        last_same_data_label = Some(l.to_string());
                    }
                }
            }
            twin && last_same_data_label.as_deref() != Some(label.as_str())
        });
        if time_travel {
            (
                PatternClass::TimeTravel,
                format!(
                    "{} crashed and restarted, then re-performed an action it had already \
                     superseded before the crash — its view travelled back in time",
                    spec.component
                ),
            )
        } else if any_suppression {
            (
                PatternClass::Staleness,
                format!(
                    "{} acted after a crash/restart while updates toward its view were \
                     suppressed — it acted on an old-but-once-true view",
                    spec.component
                ),
            )
        } else {
            (
                PatternClass::ObservabilityGap,
                format!(
                    "{} crashed and restarted with no suppressed updates in flight — the \
                     fact it needed was never observable from its rebuilt view",
                    spec.component
                ),
            )
        }
    } else if any_suppression {
        if sink.is_some() {
            (
                PatternClass::Staleness,
                format!(
                    "updates toward {}'s view were suppressed before it acted — it acted \
                     on an old-but-once-true view",
                    spec.component
                ),
            )
        } else {
            (
                PatternClass::ObservabilityGap,
                format!(
                    "updates toward {}'s view were suppressed and it never performed the \
                     required action — the triggering fact never became observable",
                    spec.component
                ),
            )
        }
    } else if any_partition {
        (
            PatternClass::ObservabilityGap,
            format!(
                "a partition cut view updates off wholesale — {} cannot distinguish a \
                 dead peer from an unobservable one",
                spec.component
            ),
        )
    } else if any_congestion && sink.is_some() {
        (
            PatternClass::CongestionStaleness,
            format!(
                "offered load alone aged {}'s view — updates toward it sat in (or were \
                 tail-dropped by) a saturated queue, with no injected perturbation",
                spec.component
            ),
        )
    } else if sink.is_none() {
        (
            PatternClass::ObservabilityGap,
            format!(
                "{} never performed the required action and no suppression was injected \
                 — the fact it needed is invisible in its view",
                spec.component
            ),
        )
    } else {
        (
            PatternClass::Staleness,
            format!(
                "{} acted while its view lagged the store (no explicit suppression \
                 artifacts found — ambient lag)",
                spec.component
            ),
        )
    };

    // Assemble links: crash/restart markers, the first MAX_ARTIFACT_GROUPS
    // artifact groups by first seq, and the sink.
    let mut all_groups: Vec<ArtifactGroup> = groups.into_values().collect();
    all_groups.extend(partition_groups);
    all_groups.sort_by_key(|g| g.first_seq);
    let total_groups = all_groups.len();
    let truncated = total_groups.saturating_sub(MAX_ARTIFACT_GROUPS);
    let mut links: Vec<BlameLink> = crash_links;
    for g in all_groups.into_iter().take(MAX_ARTIFACT_GROUPS) {
        links.extend(g.links);
    }
    if let Some((seq, at, label, data)) = &sink {
        links.push(BlameLink {
            seq: *seq,
            at: *at,
            role: "action",
            detail: format!("{} {label}({data})", spec.component),
        });
    }
    links.sort_by_key(|l| l.seq);

    BlameChain {
        scenario: spec.scenario.to_string(),
        class,
        rationale,
        sink: sink.as_ref().map(|(s, ..)| *s),
        links,
        injected,
        in_chain,
        truncated,
        violation: violations.first().cloned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_sim::{Duration, Trace};

    const SPEC: BlameSpec = BlameSpec {
        scenario: "synthetic",
        component: "worker",
        action_labels: &["worker.act"],
        caches: &["cache"],
    };

    fn base_trace() -> Trace {
        Trace::new()
    }

    // Building raw traces requires the crate-private `push`; go through a
    // real world instead for integration-grade coverage.
    struct Echo;
    impl ph_sim::Actor for Echo {
        fn on_start(&mut self, _ctx: &mut ph_sim::Ctx) {}
        fn on_message(&mut self, from: ph_sim::ActorId, _m: ph_sim::AnyMsg, ctx: &mut ph_sim::Ctx) {
            ctx.annotate("worker.act", "x");
            let _ = from;
        }
    }
    struct Pinger {
        peer: ph_sim::ActorId,
    }
    impl ph_sim::Actor for Pinger {
        fn on_start(&mut self, ctx: &mut ph_sim::Ctx) {
            ctx.send(self.peer, 1u32);
        }
        fn on_message(&mut self, _f: ph_sim::ActorId, _m: ph_sim::AnyMsg, _c: &mut ph_sim::Ctx) {}
    }

    #[test]
    fn suppressed_update_before_action_classifies_as_staleness() {
        let mut w = ph_sim::World::new(ph_sim::WorldConfig::default(), 3);
        let worker = w.spawn("worker", Echo);
        let delay_dst = worker;
        w.set_interceptor(move |env: &ph_sim::Envelope, _t: ph_sim::SimTime| {
            if env.dst == delay_dst {
                ph_sim::Verdict::Delay(Duration::millis(5))
            } else {
                ph_sim::Verdict::Pass
            }
        });
        w.spawn("pinger", Pinger { peer: worker });
        w.run_for(Duration::millis(20));
        let violations = vec![Violation {
            oracle: "test".into(),
            at: w.now(),
            details: "acted stale".into(),
        }];
        let chain = explain(w.trace(), &SPEC, &violations);
        assert_eq!(chain.class, PatternClass::Staleness);
        assert!(chain.sink.is_some(), "worker annotated the action");
        assert!(chain.injected >= 1);
        assert!(chain.in_chain >= 1);
        assert!(chain.links.iter().any(|l| l.role == "update-delayed"));
        assert!(chain.links.iter().any(|l| l.role == "action"));
        // Deterministic JSON.
        assert_eq!(
            chain.to_json(),
            explain(w.trace(), &SPEC, &violations).to_json()
        );
        assert!(chain.to_json().contains("\"class\":\"staleness\""));
    }

    /// Sends a burst of sized messages so a finite-bandwidth link queues
    /// (and, past capacity, tail-drops) them. Fires from a timer so the
    /// test can configure the link after spawning (`on_start` runs at
    /// spawn time, before `set_link`).
    struct Burst {
        peer: ph_sim::ActorId,
    }
    impl ph_sim::Actor for Burst {
        fn on_start(&mut self, ctx: &mut ph_sim::Ctx) {
            ctx.set_timer(Duration::micros(10), 0);
        }
        fn on_message(&mut self, _f: ph_sim::ActorId, _m: ph_sim::AnyMsg, _c: &mut ph_sim::Ctx) {}
        fn on_timer(&mut self, _t: ph_sim::TimerId, _tag: u64, ctx: &mut ph_sim::Ctx) {
            for i in 0..5u32 {
                ctx.send_sized(self.peer, i, 64 * 1024);
            }
        }
    }

    #[test]
    fn congested_feed_with_action_classifies_as_congestion_staleness() {
        let mut w = ph_sim::World::new(ph_sim::WorldConfig::default(), 4);
        let worker = w.spawn("worker", Echo);
        let pinger = w.spawn("pinger", Burst { peer: worker });
        w.net_mut().set_link(
            pinger,
            worker,
            ph_sim::LinkConfig {
                bandwidth: 10_000,
                queue: 3,
                ..ph_sim::LinkConfig::default()
            },
        );
        w.run_for(Duration::millis(60_000));
        let violations = vec![Violation {
            oracle: "test".into(),
            at: w.now(),
            details: "acted on a congestion-aged view".into(),
        }];
        let chain = explain(w.trace(), &SPEC, &violations);
        assert_eq!(chain.class, PatternClass::CongestionStaleness);
        assert_eq!(chain.injected, 0, "queue artifacts are emergent");
        assert_eq!(chain.in_chain, 0);
        assert!(chain.links.iter().any(|l| l.role == "queue-delay"));
        assert!(chain.links.iter().any(|l| l.role == "queue-drop"));
        assert!(chain.links.iter().any(|l| l.role == "action"));
        assert!(chain
            .to_json()
            .contains("\"class\":\"congestion-staleness\""));
    }

    #[test]
    fn no_action_and_no_artifacts_is_an_observability_gap() {
        let t = base_trace();
        let chain = explain(&t, &SPEC, &[]);
        assert_eq!(chain.class, PatternClass::ObservabilityGap);
        assert_eq!(chain.sink, None);
        assert_eq!(chain.injected, 0);
        assert_eq!(chain.effectiveness_pct(), None);
        assert!(chain.to_json().contains("\"sink\":null"));
        assert!(chain.to_json().contains("\"effectiveness_pct\":null"));
    }

    #[test]
    fn render_mentions_class_and_rationale() {
        let t = base_trace();
        let chain = explain(&t, &SPEC, &[]);
        let text = chain.render();
        assert!(text.contains("observability-gap"));
        assert!(text.contains("rationale:"));
        assert!(text.contains("violation: (none reported)"));
    }
}
