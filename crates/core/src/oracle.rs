//! Test oracles: safety checks over traces and world state.
//!
//! §6.2 asks "what workloads and test oracles to use?" — our answer mirrors
//! the paper's practice: scenario authors supply system-specific oracles
//! (easy to express as closures over the [`ph_sim::World`], via
//! [`FnOracle`]), while common safety shapes ship here. The flagship
//! reusable oracle is [`UniqueExecutionOracle`]: *no entity may be executed
//! by two components at once* — exactly the "critical pod safety guarantee"
//! Kubernetes-59848 violates (two kubelets running the same pod).
//!
//! Components advertise their actions through trace annotations with
//! conventional labels; oracles read those annotations plus any direct
//! world state the scenario exposes.

use ph_sim::{ActorId, SimTime, TraceEventKind, World};

/// A detected safety violation, with the evidence to reproduce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which oracle fired.
    pub oracle: String,
    /// Logical time of detection.
    pub at: SimTime,
    /// Human-readable account of what went wrong.
    pub details: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} @ {}] {}", self.oracle, self.at, self.details)
    }
}

/// A safety/liveness check evaluated against the running world.
///
/// `check` may be called repeatedly during a run and once at the end; it
/// must be idempotent (re-reporting the same violation is fine — the
/// harness deduplicates on `details`).
pub trait Oracle {
    /// The oracle's name (appears in [`Violation::oracle`]).
    fn name(&self) -> String;

    /// Inspect the world; report any violations visible now.
    fn check(&mut self, world: &World) -> Vec<Violation>;
}

/// Wraps a closure as an oracle — the vehicle for scenario-specific checks.
pub struct FnOracle<F> {
    name: String,
    f: F,
}

impl<F> FnOracle<F>
where
    F: FnMut(&World) -> Vec<String>,
{
    /// Creates an oracle that reports each returned string as a violation.
    pub fn new(name: impl Into<String>, f: F) -> FnOracle<F> {
        FnOracle {
            name: name.into(),
            f,
        }
    }
}

impl<F> Oracle for FnOracle<F>
where
    F: FnMut(&World) -> Vec<String>,
{
    fn name(&self) -> String {
        self.name.clone()
    }

    fn check(&mut self, world: &World) -> Vec<Violation> {
        (self.f)(world)
            .into_iter()
            .map(|details| Violation {
                oracle: self.name.clone(),
                at: world.now(),
                details,
            })
            .collect()
    }
}

/// Checks that no entity is ever "executed" by two actors simultaneously.
///
/// Convention: an actor annotates `start_label` with the entity name when it
/// begins running the entity, and `stop_label` when it stops (crashes also
/// implicitly stop everything the actor was running). Overlapping run
/// intervals on *different* actors violate the guarantee.
#[derive(Debug, Clone)]
pub struct UniqueExecutionOracle {
    start_label: String,
    stop_label: String,
}

impl UniqueExecutionOracle {
    /// Creates the oracle for a start/stop annotation pair, e.g.
    /// `("kubelet.pod_start", "kubelet.pod_stop")`.
    pub fn new(start_label: impl Into<String>, stop_label: impl Into<String>) -> Self {
        UniqueExecutionOracle {
            start_label: start_label.into(),
            stop_label: stop_label.into(),
        }
    }
}

impl Oracle for UniqueExecutionOracle {
    fn name(&self) -> String {
        format!("unique-execution({})", self.start_label)
    }

    fn check(&mut self, world: &World) -> Vec<Violation> {
        // Replay the annotation stream, tracking who currently runs what.
        use std::collections::BTreeMap;
        let mut running: BTreeMap<String, BTreeMap<ActorId, SimTime>> = BTreeMap::new();
        let mut out = Vec::new();
        for e in world.trace().iter() {
            match &e.kind {
                TraceEventKind::Annotation { actor, label, data } => {
                    if *label == self.start_label {
                        let holders = running.entry(data.clone()).or_default();
                        holders.insert(*actor, e.at);
                        if holders.len() > 1 {
                            let who: Vec<String> = holders
                                .keys()
                                .map(|a| world.name_of(*a).to_string())
                                .collect();
                            out.push(Violation {
                                oracle: self.name(),
                                at: e.at,
                                details: format!(
                                    "entity {:?} running on {} actors at once: {}",
                                    data,
                                    holders.len(),
                                    who.join(", ")
                                ),
                            });
                        }
                    } else if *label == self.stop_label {
                        if let Some(holders) = running.get_mut(data) {
                            holders.remove(actor);
                        }
                    }
                }
                TraceEventKind::Crashed { actor } => {
                    // A crash stops everything the actor was running.
                    for holders in running.values_mut() {
                        holders.remove(actor);
                    }
                }
                _ => {}
            }
        }
        out
    }
}

/// Runs every oracle and returns the deduplicated union of violations.
pub fn check_all(oracles: &mut [Box<dyn Oracle>], world: &World) -> Vec<Violation> {
    let mut out: Vec<Violation> = Vec::new();
    for o in oracles.iter_mut() {
        for v in o.check(world) {
            if !out
                .iter()
                .any(|x| x.oracle == v.oracle && x.details == v.details)
            {
                out.push(v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_sim::{Actor, AnyMsg, Ctx, World, WorldConfig};

    struct Annotator;
    impl Actor for Annotator {
        fn on_start(&mut self, _ctx: &mut Ctx) {}
        fn on_message(&mut self, _f: ActorId, _m: AnyMsg, _c: &mut Ctx) {}
    }

    fn world_with(n: usize) -> (World, Vec<ActorId>) {
        let mut w = World::new(WorldConfig::default(), 1);
        let ids = (0..n)
            .map(|i| w.spawn(&format!("node-{i}"), Annotator))
            .collect();
        (w, ids)
    }

    fn start(w: &mut World, a: ActorId, entity: &str) {
        w.invoke::<Annotator, _>(a, |_, ctx| ctx.annotate("run.start", entity.to_string()));
    }
    fn stop(w: &mut World, a: ActorId, entity: &str) {
        w.invoke::<Annotator, _>(a, |_, ctx| ctx.annotate("run.stop", entity.to_string()));
    }

    fn oracle() -> UniqueExecutionOracle {
        UniqueExecutionOracle::new("run.start", "run.stop")
    }

    #[test]
    fn sequential_handoff_is_clean() {
        let (mut w, ids) = world_with(2);
        start(&mut w, ids[0], "p1");
        stop(&mut w, ids[0], "p1");
        start(&mut w, ids[1], "p1");
        assert!(oracle().check(&w).is_empty());
    }

    #[test]
    fn concurrent_execution_is_flagged() {
        let (mut w, ids) = world_with(2);
        start(&mut w, ids[0], "p1");
        start(&mut w, ids[1], "p1");
        let v = oracle().check(&w);
        assert_eq!(v.len(), 1);
        assert!(v[0].details.contains("p1"));
        assert!(v[0].details.contains("node-0") && v[0].details.contains("node-1"));
    }

    #[test]
    fn different_entities_do_not_conflict() {
        let (mut w, ids) = world_with(2);
        start(&mut w, ids[0], "p1");
        start(&mut w, ids[1], "p2");
        assert!(oracle().check(&w).is_empty());
    }

    #[test]
    fn same_actor_restarting_an_entity_is_fine() {
        let (mut w, ids) = world_with(1);
        start(&mut w, ids[0], "p1");
        start(&mut w, ids[0], "p1"); // idempotent re-assert
        assert!(oracle().check(&w).is_empty());
    }

    #[test]
    fn crash_releases_everything_the_actor_ran() {
        let (mut w, ids) = world_with(2);
        start(&mut w, ids[0], "p1");
        w.crash(ids[0]);
        w.restart(ids[0]);
        start(&mut w, ids[1], "p1");
        assert!(oracle().check(&w).is_empty(), "crash must release p1");
    }

    #[test]
    fn fn_oracle_wraps_closures_and_check_all_dedups() {
        let (w, _ids) = world_with(1);
        let mut oracles: Vec<Box<dyn Oracle>> = vec![
            Box::new(FnOracle::new("always", |_w: &World| vec!["bad".into()])),
            Box::new(FnOracle::new("always", |_w: &World| vec!["bad".into()])),
            Box::new(FnOracle::new("never", |_w: &World| Vec::new())),
        ];
        let v = check_all(&mut oracles, &w);
        assert_eq!(v.len(), 1, "identical reports deduplicate");
        assert_eq!(v[0].oracle, "always");
        assert!(v[0].to_string().contains("bad"));
    }
}
