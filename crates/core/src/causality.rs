//! Happens-before recovery from simulation traces (§7).
//!
//! The paper argues that "recording causal relationships between events can
//! be useful: perturbing events that are causally related to a component's
//! action are likely to trigger bugs". [`CausalGraph`] reconstructs the
//! happens-before partial order of a [`ph_sim::Trace`] with vector clocks —
//! program order within each actor, plus send→deliver edges — and answers
//! the query the tool needs: *which message sends causally precede this
//! component decision?* Those sends are the candidate perturbation points.

use std::collections::BTreeMap;

use ph_sim::{ActorId, MsgId, Trace, TraceEventKind};

/// A vector clock (indexed by dense actor id).
type Clock = Vec<u64>;

fn join(a: &mut Clock, b: &Clock) {
    if a.len() < b.len() {
        a.resize(b.len(), 0);
    }
    for (i, &v) in b.iter().enumerate() {
        if a[i] < v {
            a[i] = v;
        }
    }
}

fn leq(a: &Clock, b: &Clock) -> bool {
    a.iter()
        .enumerate()
        .all(|(i, &v)| v <= b.get(i).copied().unwrap_or(0))
}

/// Metadata retained per clocked trace event.
#[derive(Debug, Clone)]
struct Node {
    actor: ActorId,
    clock: Clock,
    msg: Option<MsgId>,
    is_send: bool,
    label: Option<String>,
}

/// The happens-before partial order of one run.
#[derive(Debug, Clone)]
pub struct CausalGraph {
    /// Keyed by trace sequence number; only events attributable to an actor
    /// (sends, deliveries, timers, annotations, crashes, restarts) appear.
    nodes: BTreeMap<u64, Node>,
}

impl CausalGraph {
    /// Builds the graph from a trace.
    pub fn from_trace(trace: &Trace) -> CausalGraph {
        let mut actor_clock: Vec<Clock> = Vec::new();
        let mut send_clock: BTreeMap<MsgId, Clock> = BTreeMap::new();
        let mut nodes = BTreeMap::new();

        let ensure = |clocks: &mut Vec<Clock>, a: ActorId| {
            if clocks.len() <= a.index() {
                clocks.resize(a.index() + 1, Clock::new());
            }
        };
        let tick = |clocks: &mut Vec<Clock>, a: ActorId| {
            let c = &mut clocks[a.index()];
            if c.len() <= a.index() {
                c.resize(a.index() + 1, 0);
            }
            c[a.index()] += 1;
            c.clone()
        };

        for e in trace.iter() {
            match &e.kind {
                TraceEventKind::Spawned { actor, .. } => {
                    ensure(&mut actor_clock, *actor);
                }
                TraceEventKind::MessageSent { id, src, .. } => {
                    ensure(&mut actor_clock, *src);
                    let clock = tick(&mut actor_clock, *src);
                    send_clock.insert(*id, clock.clone());
                    nodes.insert(
                        e.seq,
                        Node {
                            actor: *src,
                            clock,
                            msg: Some(*id),
                            is_send: true,
                            label: None,
                        },
                    );
                }
                TraceEventKind::MessageDelivered { id, dst, .. } => {
                    ensure(&mut actor_clock, *dst);
                    if let Some(sc) = send_clock.get(id) {
                        let sc = sc.clone();
                        join(&mut actor_clock[dst.index()], &sc);
                    }
                    let clock = tick(&mut actor_clock, *dst);
                    nodes.insert(
                        e.seq,
                        Node {
                            actor: *dst,
                            clock,
                            msg: Some(*id),
                            is_send: false,
                            label: None,
                        },
                    );
                }
                TraceEventKind::TimerFired { actor, .. }
                | TraceEventKind::Crashed { actor }
                | TraceEventKind::Restarted { actor } => {
                    ensure(&mut actor_clock, *actor);
                    let clock = tick(&mut actor_clock, *actor);
                    nodes.insert(
                        e.seq,
                        Node {
                            actor: *actor,
                            clock,
                            msg: None,
                            is_send: false,
                            label: None,
                        },
                    );
                }
                TraceEventKind::Annotation { actor, label, .. } => {
                    ensure(&mut actor_clock, *actor);
                    let clock = tick(&mut actor_clock, *actor);
                    nodes.insert(
                        e.seq,
                        Node {
                            actor: *actor,
                            clock,
                            msg: None,
                            is_send: false,
                            label: Some(label.to_string()),
                        },
                    );
                }
                _ => {}
            }
        }
        CausalGraph { nodes }
    }

    /// Number of clocked events.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the trace contained no clocked events.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// `true` if trace event `a` happens-before trace event `b`.
    /// Returns `false` if either is unknown (not a clocked event) or equal.
    pub fn happens_before(&self, a: u64, b: u64) -> bool {
        match (self.nodes.get(&a), self.nodes.get(&b)) {
            (Some(na), Some(nb)) => a != b && leq(&na.clock, &nb.clock),
            _ => false,
        }
    }

    /// `true` if neither event causally precedes the other.
    pub fn concurrent(&self, a: u64, b: u64) -> bool {
        self.nodes.contains_key(&a)
            && self.nodes.contains_key(&b)
            && a != b
            && !self.happens_before(a, b)
            && !self.happens_before(b, a)
    }

    /// Trace sequence numbers of every clocked event that happens-before
    /// `target`.
    pub fn causes_of(&self, target: u64) -> Vec<u64> {
        let Some(t) = self.nodes.get(&target) else {
            return Vec::new();
        };
        self.nodes
            .iter()
            .filter(|(&s, n)| s != target && leq(&n.clock, &t.clock))
            .map(|(&s, _)| s)
            .collect()
    }

    /// Message ids whose *send* causally precedes `target` — the
    /// perturbation candidates for a given component decision: delaying,
    /// dropping or reordering any of them can change what the component
    /// knew when it decided.
    pub fn message_causes_of(&self, target: u64) -> Vec<MsgId> {
        let Some(t) = self.nodes.get(&target) else {
            return Vec::new();
        };
        self.nodes
            .values()
            .filter(|n| n.is_send && leq(&n.clock, &t.clock))
            .filter_map(|n| n.msg)
            .collect()
    }

    /// Trace seqs of annotations with the given label (component decisions
    /// are annotated by convention; see the workspace annotation glossary in
    /// DESIGN.md).
    pub fn decisions(&self, label: &str) -> Vec<u64> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.label.as_deref() == Some(label))
            .map(|(&s, _)| s)
            .collect()
    }

    /// The actor attributed to a clocked event.
    pub fn actor_of(&self, seq: u64) -> Option<ActorId> {
        self.nodes.get(&seq).map(|n| n.actor)
    }

    /// The vector clock of a clocked event (indexed by dense actor id).
    /// Exposed so callers — and the partial-order law tests — can reason
    /// about clocks directly via [`CausalGraph::clock_leq`].
    pub fn clock(&self, seq: u64) -> Option<&[u64]> {
        self.nodes.get(&seq).map(|n| n.clock.as_slice())
    }

    /// The vector-clock partial order: `true` iff `a[i] <= b[i]` for every
    /// component (missing components read as 0). This is the order
    /// [`CausalGraph::happens_before`] is defined over.
    pub fn clock_leq(a: &[u64], b: &[u64]) -> bool {
        a.iter()
            .enumerate()
            .all(|(i, &v)| v <= b.get(i).copied().unwrap_or(0))
    }

    /// The backward causal slice of `sink`: every clocked event that
    /// happens-before `sink`, plus `sink` itself, in trace order. This is
    /// the "minimal causal chain" a blame explanation is carved from — by
    /// construction every member except the sink causally precedes the
    /// sink (closure), which `tests` in `crates/core/tests` pin as a law.
    /// Unknown sinks yield an empty slice.
    pub fn slice(&self, sink: u64) -> Vec<u64> {
        if !self.nodes.contains_key(&sink) {
            return Vec::new();
        }
        let mut out = self.causes_of(sink);
        out.push(sink);
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_sim::{Actor, AnyMsg, Ctx, Duration, TimerId, World, WorldConfig};

    /// a sends to b; b annotates on receipt, then sends to c; c annotates.
    struct Relay {
        next: Option<ActorId>,
        kick: bool,
    }
    #[derive(Debug)]
    struct Token;

    impl Actor for Relay {
        fn on_start(&mut self, ctx: &mut Ctx) {
            if self.kick {
                ctx.set_timer(Duration::millis(1), 0);
            }
        }
        fn on_message(&mut self, _from: ActorId, _msg: AnyMsg, ctx: &mut Ctx) {
            ctx.annotate("got", "token");
            if let Some(n) = self.next {
                ctx.send(n, Token);
            }
        }
        fn on_timer(&mut self, _t: TimerId, _tag: u64, ctx: &mut Ctx) {
            if let Some(n) = self.next {
                ctx.send(n, Token);
            }
        }
    }

    fn chain_world() -> (World, ActorId, ActorId, ActorId) {
        let mut w = World::new(WorldConfig::default(), 5);
        // Spawn in reverse so `next` ids exist.
        let c = w.spawn(
            "c",
            Relay {
                next: None,
                kick: false,
            },
        );
        let b = w.spawn(
            "b",
            Relay {
                next: Some(c),
                kick: false,
            },
        );
        let a = w.spawn(
            "a",
            Relay {
                next: Some(b),
                kick: true,
            },
        );
        w.run_until_quiescent(1_000_000_000);
        (w, a, b, c)
    }

    #[test]
    fn chain_transfers_causality_transitively() {
        let (w, a, _b, c) = chain_world();
        let g = CausalGraph::from_trace(w.trace());
        let decisions = g.decisions("got");
        assert_eq!(decisions.len(), 2, "b and c each annotate once");
        let last = *decisions.iter().max().unwrap();
        assert_eq!(g.actor_of(last), Some(c));
        // a's send happens-before c's annotation (through b).
        let a_send = w
            .trace()
            .iter()
            .find(|e| matches!(&e.kind, TraceEventKind::MessageSent { src, .. } if *src == a))
            .expect("a sent")
            .seq;
        assert!(g.happens_before(a_send, last));
        assert!(!g.happens_before(last, a_send));
    }

    #[test]
    fn message_causes_cover_the_whole_chain() {
        let (w, _a, _b, _c) = chain_world();
        let g = CausalGraph::from_trace(w.trace());
        let last = *g.decisions("got").iter().max().unwrap();
        let msgs = g.message_causes_of(last);
        assert_eq!(msgs.len(), 2, "both hops precede c's decision");
        let causes = g.causes_of(last);
        assert!(causes.len() >= 4, "timer, sends, deliveries: {causes:?}");
    }

    #[test]
    fn unrelated_actors_are_concurrent() {
        let mut w = World::new(WorldConfig::default(), 6);
        // Two independent ping pairs.
        let c = w.spawn(
            "c",
            Relay {
                next: None,
                kick: false,
            },
        );
        let d = w.spawn(
            "d",
            Relay {
                next: Some(c),
                kick: true,
            },
        );
        let e = w.spawn(
            "e",
            Relay {
                next: None,
                kick: false,
            },
        );
        let f = w.spawn(
            "f",
            Relay {
                next: Some(e),
                kick: true,
            },
        );
        let _ = (d, f);
        w.run_until_quiescent(1_000_000_000);
        let g = CausalGraph::from_trace(w.trace());
        let got = g.decisions("got");
        assert_eq!(got.len(), 2);
        assert!(g.concurrent(got[0], got[1]));
    }

    #[test]
    fn queries_on_unknown_events_are_safe() {
        let (w, ..) = chain_world();
        let g = CausalGraph::from_trace(w.trace());
        assert!(!g.happens_before(999_999, 0));
        assert!(!g.concurrent(999_999, 0));
        assert!(g.causes_of(999_999).is_empty());
        assert!(g.message_causes_of(999_999).is_empty());
        assert_eq!(g.actor_of(999_999), None);
        assert!(!g.is_empty());
    }

    #[test]
    fn delivery_does_not_precede_its_own_send() {
        let (w, ..) = chain_world();
        let g = CausalGraph::from_trace(w.trace());
        let (mut send, mut deliver) = (None, None);
        for e in w.trace().iter() {
            match &e.kind {
                TraceEventKind::MessageSent { id, .. } if send.is_none() => {
                    send = Some((e.seq, *id));
                }
                TraceEventKind::MessageDelivered { id, .. } => {
                    if let Some((_, sid)) = send {
                        if *id == sid && deliver.is_none() {
                            deliver = Some(e.seq);
                        }
                    }
                }
                _ => {}
            }
        }
        let (s, _) = send.expect("send");
        let d = deliver.expect("deliver");
        assert!(g.happens_before(s, d));
        assert!(!g.happens_before(d, s));
    }
}
