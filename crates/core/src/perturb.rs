//! Perturbation strategies — the §7 testing tool.
//!
//! Each [`Strategy`] regulates how a component's view `(H′, S′)` advances
//! relative to `(H, S)` by manipulating the messages and processes of a
//! running [`ph_sim::World`]:
//!
//! * [`StalenessInjector`] — delays view-update notifications to a target
//!   cache ("creates staleness in H′ by delaying updates to H′ against H");
//! * [`TimeTravelInjector`] — freezes one upstream's feed, crashes the
//!   victim and restarts it so it re-synchronizes against the now-stale
//!   upstream ("injects node crashes and forces the restarted component to
//!   synchronize with a stale H′ and receive replayed events");
//! * [`NotificationDropper`] — silently drops selected notifications,
//!   creating interior gaps in H′ ("we force the component to miss
//!   important events in its view H′ by dropping event notifications");
//!
//! plus the baselines the paper positions itself against (§5, §6.1):
//!
//! * [`RandomCrashes`] — uniformly random crash/restart injection;
//! * [`CrashTunerCrashes`] — the CrashTuner heuristic: crash a node right
//!   after it updates its view of the cluster state;
//! * [`CoFiPartitions`] — the CoFI heuristic: partition a component from
//!   its upstream around view updates;
//! * [`NoFault`] — the control.
//!
//! Scenarios hand strategies a [`Targets`] map describing which actors hold
//! caches, which are crash-eligible components, and which message kinds
//! carry view updates. Strategies refer to targets by index so they can be
//! constructed before the world exists (the harness builds them per trial).

use crate::canon::PlannedOp;
use ph_lint::modelcheck::Letter;
use ph_sim::{
    ActorId, Duration, Envelope, Partition, SimRng, SimTime, TraceEventKind, Verdict, World,
};

/// The scenario-provided map of interesting actors and message kinds.
///
/// The lists are shared slices: the harness builds a `Targets` per trial
/// (hunts run hundreds), so cloning the same actor lists into every trial
/// is a refcount bump, not a per-trial allocation.
#[derive(Debug, Clone, Default)]
pub struct Targets {
    /// Members of the central store.
    pub store_nodes: std::rc::Rc<[ActorId]>,
    /// Actors that maintain a cached view `(H′, S′)` (apiservers, informers).
    pub caches: std::rc::Rc<[ActorId]>,
    /// Crash-eligible service components (kubelets, controllers, schedulers).
    pub components: std::rc::Rc<[ActorId]>,
    /// Short message-kind names that carry view updates (e.g. `WatchNotify`).
    pub notify_kinds: std::rc::Rc<[String]>,
    /// Nominal scenario length; random strategies scatter faults within it.
    pub horizon: Duration,
}

impl Targets {
    /// `true` if the envelope carries a view update.
    pub fn is_notify(&self, env: &Envelope) -> bool {
        let k = env.kind_short();
        self.notify_kinds.iter().any(|n| n == k)
    }
}

/// A perturbation strategy's lifecycle.
///
/// The embedding contract (scenarios uphold it):
/// 1. `setup` once, after the world is built but before the workload;
/// 2. `tick` between workload steps (strategies with trace-triggered or
///    time-phased behaviour act here);
/// 3. `teardown` after the workload (default clears the interceptor).
pub trait Strategy {
    /// Human-readable name (appears in reports and EXPERIMENTS.md tables).
    fn name(&self) -> String;

    /// The injections this strategy will perform, as abstract alphabet
    /// letters with behavioral anchors — the input to canonical-schedule
    /// deduplication ([`crate::canon`]). The contract: every parameter
    /// that can change the strategy's effect on a run must appear in a
    /// letter or an anchor, so two strategies with equal planned
    /// schedules are behaviorally identical. Strategies whose injections
    /// depend on the trace or on a per-trial RNG (the random baselines)
    /// return `None` and are never deduplicated.
    fn planned_schedule(&self) -> Option<Vec<PlannedOp>> {
        None
    }

    /// Install interceptors / schedule faults.
    fn setup(&mut self, world: &mut World, targets: &Targets) {
        let _ = (world, targets);
    }

    /// Phase transitions and trace-triggered actions.
    fn tick(&mut self, world: &mut World, targets: &Targets) {
        let _ = (world, targets);
    }

    /// Remove interceptors; release or drop anything still held.
    fn teardown(&mut self, world: &mut World) {
        world.clear_interceptor();
    }
}

// ---------------------------------------------------------------------
// Control
// ---------------------------------------------------------------------

/// The no-fault control strategy.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFault;

impl Strategy for NoFault {
    fn name(&self) -> String {
        "no-fault".into()
    }

    fn planned_schedule(&self) -> Option<Vec<PlannedOp>> {
        Some(Vec::new())
    }
}

// ---------------------------------------------------------------------
// Guided strategies (the paper's tool)
// ---------------------------------------------------------------------

/// Delays view-update notifications to one cache, creating staleness
/// (§4.2.1, Figure 3a).
///
/// Delays preserve per-link FIFO ordering (the notification stream models
/// a TCP connection), so every later message on the same link queues
/// behind a delayed one. Use bounded delays for lag; for an indefinite
/// freeze use [`TimeTravelInjector`]'s hold phase (or a `Hold`-verdict
/// interceptor), which parks messages outside the link entirely and
/// replays them on release.
#[derive(Debug, Clone)]
pub struct StalenessInjector {
    /// Index into [`Targets::caches`] of the victim.
    pub cache: usize,
    /// Extra delay applied to each matching notification.
    pub delay: Duration,
    /// Start injecting at this sim time (0 = from the beginning).
    pub after: Duration,
}

impl Strategy for StalenessInjector {
    fn name(&self) -> String {
        format!("staleness(+{})", self.delay)
    }

    fn planned_schedule(&self) -> Option<Vec<PlannedOp>> {
        Some(vec![PlannedOp::new(
            Letter::DelayCache(format!("cache:{}", self.cache)),
            format!("+{}@{}", self.delay, self.after),
        )])
    }

    fn setup(&mut self, world: &mut World, targets: &Targets) {
        let victim = targets.caches[self.cache];
        let kinds = targets.notify_kinds.clone();
        let delay = self.delay;
        let after = SimTime(self.after.as_nanos());
        world.set_interceptor(move |env: &Envelope, now: SimTime| {
            if now >= after && env.dst == victim && kinds.iter().any(|k| k == env.kind_short()) {
                Verdict::Delay(delay)
            } else {
                Verdict::Pass
            }
        });
    }
}

/// Drops a window of view-update notifications to one cache, creating an
/// interior gap in its `H′` (§4.2.3, Figure 3c).
#[derive(Debug, Clone)]
pub struct NotificationDropper {
    /// Index into [`Targets::caches`] of the victim.
    pub cache: usize,
    /// Matching notifications to let through before dropping starts.
    pub skip: u64,
    /// How many matching notifications to drop (then pass everything).
    pub count: u64,
}

impl Strategy for NotificationDropper {
    fn name(&self) -> String {
        format!("obs-gap(skip {}, drop {})", self.skip, self.count)
    }

    fn planned_schedule(&self) -> Option<Vec<PlannedOp>> {
        Some(vec![PlannedOp::new(
            Letter::DropNotification(format!("cache:{}", self.cache)),
            format!("skip{}+drop{}", self.skip, self.count),
        )])
    }

    fn setup(&mut self, world: &mut World, targets: &Targets) {
        let victim = targets.caches[self.cache];
        let kinds = targets.notify_kinds.clone();
        let (skip, count) = (self.skip, self.count);
        let mut seen = 0u64;
        world.set_interceptor(move |env: &Envelope, _now: SimTime| {
            if env.dst == victim && kinds.iter().any(|k| k == env.kind_short()) {
                seen += 1;
                if seen > skip && seen <= skip + count {
                    return Verdict::Drop;
                }
            }
            Verdict::Pass
        });
    }
}

/// Creates the §4.2.2 time-travel pattern: one upstream's view feed is
/// frozen (held) so it goes stale; the victim component is crashed and
/// restarted, re-synchronizing — by scenario construction — against the
/// stale upstream and thereby re-observing its own past.
#[derive(Debug, Clone)]
pub struct TimeTravelInjector {
    /// Index into [`Targets::caches`] of the upstream to freeze.
    pub stale_upstream: usize,
    /// Index into [`Targets::components`] of the component to crash.
    pub victim: usize,
    /// When to start holding the upstream's feed.
    pub hold_at: Duration,
    /// When to crash the victim.
    pub crash_at: Duration,
    /// When to restart it.
    pub restart_at: Duration,
    /// When (if ever) to release the held feed, letting the stale upstream
    /// catch up after the damage is done.
    pub release_at: Option<Duration>,
    released: bool,
}

impl TimeTravelInjector {
    /// Convenience constructor with `released` initialized.
    #[must_use]
    pub fn new(
        stale_upstream: usize,
        victim: usize,
        hold_at: Duration,
        crash_at: Duration,
        restart_at: Duration,
        release_at: Option<Duration>,
    ) -> TimeTravelInjector {
        TimeTravelInjector {
            stale_upstream,
            victim,
            hold_at,
            crash_at,
            restart_at,
            release_at,
            released: false,
        }
    }
}

impl Strategy for TimeTravelInjector {
    fn name(&self) -> String {
        "time-travel".into()
    }

    fn planned_schedule(&self) -> Option<Vec<PlannedOp>> {
        let release = match self.release_at {
            Some(r) => format!("+release@{r}"),
            None => String::new(),
        };
        Some(vec![
            PlannedOp::new(
                Letter::DelayCache(format!("cache:{}", self.stale_upstream)),
                format!("hold@{}", self.hold_at),
            ),
            PlannedOp::new(
                Letter::CrashRestartReplay,
                format!(
                    "component:{}@{}..{}{release}",
                    self.victim, self.crash_at, self.restart_at
                ),
            ),
        ])
    }

    fn setup(&mut self, world: &mut World, targets: &Targets) {
        let upstream = targets.caches[self.stale_upstream];
        let kinds = targets.notify_kinds.clone();
        let hold_at = SimTime(self.hold_at.as_nanos());
        world.set_interceptor(move |env: &Envelope, now: SimTime| {
            if now >= hold_at && env.dst == upstream && kinds.iter().any(|k| k == env.kind_short())
            {
                Verdict::Hold
            } else {
                Verdict::Pass
            }
        });
        let victim = targets.components[self.victim];
        world.schedule_crash(victim, SimTime(self.crash_at.as_nanos()));
        world.schedule_restart(victim, SimTime(self.restart_at.as_nanos()));
    }

    fn tick(&mut self, world: &mut World, _targets: &Targets) {
        if let Some(rel) = self.release_at {
            if !self.released && world.now() >= SimTime(rel.as_nanos()) {
                world.clear_interceptor();
                world.release_all_held();
                self.released = true;
            }
        }
    }

    fn teardown(&mut self, world: &mut World) {
        world.clear_interceptor();
        if !self.released {
            world.release_all_held();
            self.released = true;
        }
    }
}

/// The `traffic-surge` axis: for a window, every link into one cache is
/// reconfigured to a finite bandwidth with a drop-tail queue, modeling a
/// burst of competing traffic that eats the feed's capacity. Unlike every
/// other guided strategy this injects **no fault at all** — no message is
/// dropped, held or reordered by the harness; staleness emerges from
/// queueing delay and tail drops computed by [`ph_sim::net`]'s queue
/// discipline, which is exactly the congestion-staleness hazard class.
#[derive(Debug, Clone)]
pub struct TrafficSurge {
    /// Index into [`Targets::caches`] of the congested cache: its fan-out
    /// links — the watch feed toward every component's view — are
    /// throttled, so updates from this cache queue (and, past the queue
    /// capacity, tail-drop) instead of arriving on schedule.
    pub cache: usize,
    /// Available bandwidth during the surge, bytes per second.
    pub bandwidth: u64,
    /// Drop-tail queue capacity during the surge (0 = unbounded, pure
    /// queueing delay).
    pub queue: usize,
    /// When the surge begins.
    pub from: Duration,
    /// When the surge ends and the links are restored (`None` = never).
    pub until: Option<Duration>,
    /// When set, only the feed toward this component (an index into
    /// [`Targets::components`]) is throttled — a surge of traffic that
    /// competes with one victim's watch stream while the rest of the
    /// fan-out keeps its capacity. `None` squeezes the whole fan-out.
    pub only: Option<usize>,
    saved: Vec<(ActorId, ActorId, ph_sim::LinkConfig)>,
    applied: bool,
    restored: bool,
}

impl TrafficSurge {
    /// Convenience constructor with internal state initialized.
    #[must_use]
    pub fn new(
        cache: usize,
        bandwidth: u64,
        queue: usize,
        from: Duration,
        until: Option<Duration>,
    ) -> TrafficSurge {
        TrafficSurge {
            cache,
            bandwidth,
            queue,
            from,
            until,
            only: None,
            saved: Vec::new(),
            applied: false,
            restored: false,
        }
    }

    /// Narrows the surge to a single victim component's feed. Chainable,
    /// consuming builder — the same shape as every other perturbation
    /// builder, so `TrafficSurge::new(..).focused(2)` reads like one
    /// declaration.
    #[must_use]
    pub fn focused(mut self, component: usize) -> TrafficSurge {
        self.only = Some(component);
        self
    }

    fn apply(&mut self, world: &mut World, targets: &Targets) {
        let cache = targets.caches[self.cache];
        let victims: Vec<ActorId> = match self.only {
            Some(i) => vec![targets.components[i]],
            None => targets.components.to_vec(),
        };
        for comp in victims {
            if comp == cache {
                continue;
            }
            let old = world.net().link(cache, comp);
            self.saved.push((cache, comp, old));
            world.net_mut().set_link(
                cache,
                comp,
                ph_sim::LinkConfig {
                    bandwidth: self.bandwidth,
                    queue: self.queue,
                    ..old
                },
            );
        }
        self.applied = true;
    }

    fn restore(&mut self, world: &mut World) {
        for (src, dst, cfg) in self.saved.drain(..) {
            world.net_mut().set_link(src, dst, cfg);
        }
        self.restored = true;
    }
}

impl Strategy for TrafficSurge {
    fn name(&self) -> String {
        match self.only {
            Some(i) => format!("traffic-surge({}B/s,q{},@{i})", self.bandwidth, self.queue),
            None => format!("traffic-surge({}B/s,q{})", self.bandwidth, self.queue),
        }
    }

    fn planned_schedule(&self) -> Option<Vec<PlannedOp>> {
        let until = match self.until {
            Some(u) => format!("..{u}"),
            None => String::new(),
        };
        let focus = match self.only {
            Some(i) => format!("->component:{i}"),
            None => String::new(),
        };
        Some(vec![PlannedOp::new(
            Letter::TrafficSurge(format!("cache:{}", self.cache)),
            format!(
                "{}B/s,q{}@{}{until}{focus}",
                self.bandwidth, self.queue, self.from
            ),
        )])
    }

    fn setup(&mut self, world: &mut World, targets: &Targets) {
        if self.from == Duration::ZERO {
            self.apply(world, targets);
        }
    }

    fn tick(&mut self, world: &mut World, targets: &Targets) {
        let now = world.now();
        if !self.applied && now >= SimTime(self.from.as_nanos()) {
            self.apply(world, targets);
        }
        if let Some(until) = self.until {
            if self.applied && !self.restored && now >= SimTime(until.as_nanos()) {
                self.restore(world);
            }
        }
    }

    fn teardown(&mut self, world: &mut World) {
        if self.applied && !self.restored {
            self.restore(world);
        }
        world.clear_interceptor();
    }
}

// ---------------------------------------------------------------------
// Baselines (§5 / §6.1 comparators)
// ---------------------------------------------------------------------

/// Uniformly random crash/restart injection — the "randomly generate
/// faults" baseline of §1.
#[derive(Debug, Clone)]
pub struct RandomCrashes {
    /// Strategy-local seed (vary per trial).
    pub seed: u64,
    /// Number of crash/restart pairs to scatter over the horizon.
    pub count: u32,
    /// Downtime per crash.
    pub down: Duration,
}

impl Strategy for RandomCrashes {
    fn name(&self) -> String {
        format!("random-crash(x{})", self.count)
    }

    fn setup(&mut self, world: &mut World, targets: &Targets) {
        if targets.components.is_empty() {
            return;
        }
        let mut rng = SimRng::derive(self.seed, 0x0C4A_54E5);
        for _ in 0..self.count {
            let at = SimTime(rng.below(targets.horizon.as_nanos().max(1)));
            let victim = *rng.pick(&targets.components).expect("non-empty");
            world.schedule_crash(victim, at);
            world.schedule_restart(victim, at + self.down);
        }
    }
}

/// The CrashTuner heuristic: crash a component *immediately after it
/// updates its view of the cluster state* (delivery of a notify-kind
/// message), restart it after `down`. Triggers are sampled per matching
/// delivery with probability `p`.
#[derive(Debug, Clone)]
pub struct CrashTunerCrashes {
    /// Strategy-local seed (vary per trial).
    pub seed: u64,
    /// Per-view-update trigger probability.
    pub p: f64,
    /// Maximum number of crashes to perform.
    pub max_crashes: u32,
    /// Downtime per crash.
    pub down: Duration,
    cursor: usize,
    fired: u32,
}

impl CrashTunerCrashes {
    /// Convenience constructor with internal cursors initialized.
    #[must_use]
    pub fn new(seed: u64, p: f64, max_crashes: u32, down: Duration) -> CrashTunerCrashes {
        CrashTunerCrashes {
            seed,
            p,
            max_crashes,
            down,
            cursor: 0,
            fired: 0,
        }
    }
}

impl Strategy for CrashTunerCrashes {
    fn name(&self) -> String {
        format!("crashtuner(p={})", self.p)
    }

    fn tick(&mut self, world: &mut World, targets: &Targets) {
        if self.fired >= self.max_crashes {
            return;
        }
        let mut to_crash = Vec::new();
        {
            let events = world.trace().events();
            while self.cursor < events.len() {
                let e = &events[self.cursor];
                self.cursor += 1;
                if let TraceEventKind::MessageDelivered { dst, kind, .. } = &e.kind {
                    let is_view_update = targets.notify_kinds.iter().any(|k| k == kind);
                    let is_service =
                        targets.components.contains(dst) || targets.caches.contains(dst);
                    if is_view_update && is_service && self.fired < self.max_crashes {
                        // Deterministic per-delivery draw.
                        let mut rng = SimRng::derive(self.seed, 0xC7 ^ e.seq);
                        if rng.chance(self.p) {
                            to_crash.push(*dst);
                            self.fired += 1;
                        }
                    }
                }
            }
        }
        let now = world.now();
        for victim in to_crash {
            if !world.is_crashed(victim) {
                world.crash(victim);
                world.schedule_restart(victim, now + self.down);
            }
        }
    }
}

/// The CoFI heuristic: around a view update, partition the receiving
/// component from the sender (its upstream) for a fixed duration.
#[derive(Debug, Clone)]
pub struct CoFiPartitions {
    /// Strategy-local seed (vary per trial).
    pub seed: u64,
    /// Per-view-update trigger probability.
    pub p: f64,
    /// Maximum number of partitions to create.
    pub max_partitions: u32,
    /// How long each partition lasts.
    pub duration: Duration,
    cursor: usize,
    fired: u32,
    healing: Vec<(SimTime, Partition)>,
}

impl CoFiPartitions {
    /// Convenience constructor with internal cursors initialized.
    #[must_use]
    pub fn new(seed: u64, p: f64, max_partitions: u32, duration: Duration) -> CoFiPartitions {
        CoFiPartitions {
            seed,
            p,
            max_partitions,
            duration,
            cursor: 0,
            fired: 0,
            healing: Vec::new(),
        }
    }
}

impl Strategy for CoFiPartitions {
    fn name(&self) -> String {
        format!("cofi(p={})", self.p)
    }

    fn tick(&mut self, world: &mut World, targets: &Targets) {
        // Heal expired partitions first.
        let now = world.now();
        let mut still = Vec::new();
        for (heal_at, p) in self.healing.drain(..) {
            if now >= heal_at {
                world.heal(p);
            } else {
                still.push((heal_at, p));
            }
        }
        self.healing = still;

        if self.fired >= self.max_partitions {
            return;
        }
        let mut to_cut: Vec<(ActorId, ActorId)> = Vec::new();
        {
            let events = world.trace().events();
            while self.cursor < events.len() {
                let e = &events[self.cursor];
                self.cursor += 1;
                if let TraceEventKind::MessageDelivered { src, dst, kind, .. } = &e.kind {
                    let is_view_update = targets.notify_kinds.iter().any(|k| k == kind);
                    let is_service =
                        targets.components.contains(dst) || targets.caches.contains(dst);
                    if is_view_update && is_service && self.fired < self.max_partitions {
                        let mut rng = SimRng::derive(self.seed, 0xF1 ^ e.seq);
                        if rng.chance(self.p) {
                            to_cut.push((*dst, *src));
                            self.fired += 1;
                        }
                    }
                }
            }
        }
        for (a, b) in to_cut {
            let p = world.partition(&[a], &[b]);
            self.healing.push((world.now() + self.duration, p));
        }
    }

    fn teardown(&mut self, world: &mut World) {
        for (_, p) in self.healing.drain(..) {
            world.heal(p);
        }
        world.clear_interceptor();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_sim::{Actor, AnyMsg, Ctx, TimerId, WorldConfig};

    /// Emits a "ViewUpdate" message to its peer every 10ms.
    struct Feeder {
        peer: ActorId,
    }
    #[derive(Debug)]
    struct ViewUpdate(u64);
    struct Cache {
        seen: Vec<u64>,
    }

    impl Actor for Feeder {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(Duration::millis(10), 0);
        }
        fn on_message(&mut self, _f: ActorId, _m: AnyMsg, _c: &mut Ctx) {}
        fn on_timer(&mut self, _t: TimerId, tag: u64, ctx: &mut Ctx) {
            ctx.send(self.peer, ViewUpdate(tag));
            ctx.set_timer(Duration::millis(10), tag + 1);
        }
    }
    impl Actor for Cache {
        fn on_start(&mut self, _ctx: &mut Ctx) {}
        fn on_message(&mut self, _f: ActorId, m: AnyMsg, _c: &mut Ctx) {
            if let Some(ViewUpdate(n)) = m.downcast_ref::<ViewUpdate>() {
                self.seen.push(*n);
            }
        }
        fn on_restart(&mut self, ctx: &mut Ctx) {
            self.seen.clear();
            self.on_start(ctx);
        }
    }

    fn feed_world(seed: u64) -> (World, Targets, ActorId) {
        let mut w = World::new(WorldConfig::default(), seed);
        let cache = w.spawn("cache", Cache { seen: vec![] });
        let _feeder = w.spawn("feeder", Feeder { peer: cache });
        let targets = Targets {
            store_nodes: [].into(),
            caches: [cache].into(),
            components: [cache].into(),
            notify_kinds: ["ViewUpdate".to_string()].into(),
            horizon: Duration::millis(500),
        };
        (w, targets, cache)
    }

    #[test]
    fn staleness_injector_delays_updates() {
        let (mut w, t, cache) = feed_world(1);
        let mut s = StalenessInjector {
            cache: 0,
            delay: Duration::millis(100),
            after: Duration::ZERO,
        };
        s.setup(&mut w, &t);
        w.run_for(Duration::millis(105));
        // Without delay ~10 updates would have arrived; with +100ms, ~1.
        let seen = w.actor_ref::<Cache>(cache).unwrap().seen.len();
        assert!(seen <= 2, "saw {seen} updates despite delay");
        s.teardown(&mut w);
        w.run_for(Duration::millis(200));
        let seen = w.actor_ref::<Cache>(cache).unwrap().seen.len();
        assert!(seen >= 15, "updates must flow after teardown, saw {seen}");
    }

    #[test]
    fn dropper_creates_an_interior_gap() {
        let (mut w, t, cache) = feed_world(2);
        let mut s = NotificationDropper {
            cache: 0,
            skip: 3,
            count: 2,
        };
        s.setup(&mut w, &t);
        w.run_for(Duration::millis(120));
        s.teardown(&mut w);
        let seen = &w.actor_ref::<Cache>(cache).unwrap().seen;
        // Tags 0,1,2 pass; 3,4 dropped; 5.. pass.
        assert!(seen.contains(&0) && seen.contains(&2));
        assert!(!seen.contains(&3) && !seen.contains(&4), "seen {seen:?}");
        assert!(seen.contains(&5));
    }

    #[test]
    fn time_travel_holds_then_replays() {
        let (mut w, t, cache) = feed_world(3);
        let mut s = TimeTravelInjector::new(
            0,
            0,
            Duration::millis(30), // hold feed from 30ms
            Duration::millis(60), // crash cache at 60ms
            Duration::millis(80), // restart at 80ms
            Some(Duration::millis(120)),
        );
        s.setup(&mut w, &t);
        for _ in 0..20 {
            w.run_for(Duration::millis(10));
            s.tick(&mut w, &t);
        }
        s.teardown(&mut w);
        let seen = &w.actor_ref::<Cache>(cache).unwrap().seen;
        // Restarted at 80ms (volatile state cleared), held updates (tags
        // 2..) replayed after 120ms: the cache re-observes its past.
        assert!(seen.contains(&2), "replayed past event missing: {seen:?}");
        assert_eq!(w.incarnation(cache), 1);
    }

    #[test]
    fn random_crashes_schedule_within_horizon() {
        let (mut w, t, cache) = feed_world(4);
        let mut s = RandomCrashes {
            seed: 9,
            count: 3,
            down: Duration::millis(20),
        };
        s.setup(&mut w, &t);
        w.run_for(Duration::millis(600));
        s.teardown(&mut w);
        // Overlapping crash windows coalesce, so incarnations ∈ [1, count].
        let inc = w.incarnation(cache);
        assert!((1..=3).contains(&inc), "incarnations {inc}");
        assert!(!w.is_crashed(cache), "every crash has a later restart");
    }

    #[test]
    fn crashtuner_crashes_after_view_updates_only() {
        let (mut w, t, cache) = feed_world(5);
        let mut s = CrashTunerCrashes::new(7, 1.0, 1, Duration::millis(10));
        s.setup(&mut w, &t);
        for _ in 0..10 {
            w.run_for(Duration::millis(10));
            s.tick(&mut w, &t);
        }
        s.teardown(&mut w);
        assert_eq!(w.incarnation(cache), 1, "exactly one triggered crash");
    }

    #[test]
    fn cofi_partitions_and_heals() {
        let (mut w, t, cache) = feed_world(6);
        let mut s = CoFiPartitions::new(8, 1.0, 1, Duration::millis(50));
        s.setup(&mut w, &t);
        for _ in 0..30 {
            w.run_for(Duration::millis(10));
            s.tick(&mut w, &t);
        }
        s.teardown(&mut w);
        // After healing, updates flow again: the cache keeps receiving.
        let seen = w.actor_ref::<Cache>(cache).unwrap().seen.clone();
        let max = *seen.iter().max().expect("some updates");
        assert!(max >= 25, "stream must resume after heal, max tag {max}");
        // And there must be a gap from the partition window.
        let missing = (0..max).filter(|n| !seen.contains(n)).count();
        assert!(missing >= 3, "partition should have cost messages");
    }

    /// Like [`Feeder`] but each update carries real bytes, so finite-
    /// bandwidth links actually queue.
    struct SizedFeeder {
        peer: ActorId,
        size: u64,
    }
    impl Actor for SizedFeeder {
        fn on_start(&mut self, ctx: &mut Ctx) {
            ctx.set_timer(Duration::millis(10), 0);
        }
        fn on_message(&mut self, _f: ActorId, _m: AnyMsg, _c: &mut Ctx) {}
        fn on_timer(&mut self, _t: TimerId, tag: u64, ctx: &mut Ctx) {
            ctx.send_sized(self.peer, ViewUpdate(tag), self.size);
            ctx.set_timer(Duration::millis(10), tag + 1);
        }
    }

    #[test]
    fn traffic_surge_starves_the_view_without_injected_faults() {
        let mut w = World::new(WorldConfig::default(), 11);
        let view = w.spawn("component", Cache { seen: vec![] });
        // The feeder plays the cache (apiserver): the surge throttles its
        // fan-out link toward the component's view.
        let feeder = w.spawn(
            "cache",
            SizedFeeder {
                peer: view,
                size: 8 * 1024,
            },
        );
        let cache = view;
        let t = Targets {
            store_nodes: [].into(),
            caches: [feeder].into(),
            components: [view].into(),
            notify_kinds: ["ViewUpdate".to_string()].into(),
            horizon: Duration::millis(500),
        };
        // 8 KB every 10 ms offered to a 10 KB/s link: ~80× over capacity
        // for the first 100 ms.
        let mut s = TrafficSurge::new(0, 10_000, 2, Duration::ZERO, Some(Duration::millis(100)));
        s.setup(&mut w, &t);
        for _ in 0..10 {
            w.run_for(Duration::millis(10));
            s.tick(&mut w, &t);
        }
        let during = w.actor_ref::<Cache>(cache).unwrap().seen.len();
        assert!(during <= 2, "surge must starve the feed, saw {during}");
        // After restore, new sends take the legacy path again — but FIFO
        // keeps them behind the messages still queued from the surge, so
        // give the tail room to drain.
        for _ in 0..30 {
            w.run_for(Duration::millis(100));
            s.tick(&mut w, &t);
        }
        s.teardown(&mut w);
        let after = w.actor_ref::<Cache>(cache).unwrap().seen.len();
        assert!(after >= 15, "flow must resume after the surge, saw {after}");
        // Every loss is a queue tail-drop — the strategy itself never
        // dropped, held or reordered a message.
        for e in w.trace().iter() {
            if let TraceEventKind::MessageDropped { reason, .. } = &e.kind {
                assert_eq!(*reason, ph_sim::DropReason::QueueFull, "{e:?}");
            }
        }
    }

    #[test]
    fn no_fault_changes_nothing() {
        let (mut w1, t, cache) = feed_world(7);
        let mut s = NoFault;
        s.setup(&mut w1, &t);
        w1.run_for(Duration::millis(200));
        s.teardown(&mut w1);
        let with = w1.actor_ref::<Cache>(cache).unwrap().seen.clone();

        let (mut w2, _t, cache2) = feed_world(7);
        w2.run_for(Duration::millis(200));
        let without = w2.actor_ref::<Cache>(cache2).unwrap().seen.clone();
        assert_eq!(with, without);
    }
}
