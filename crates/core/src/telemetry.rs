//! Hunt telemetry: the explorer, observed.
//!
//! The §7 tool is itself a distributed-systems workload — trials, strategies,
//! events, simulated time — and this module makes it observable. A
//! [`HuntReport`] aggregates one [`StrategyStats`] row per explored
//! (scenario, strategy) cell: trial counters, per-trial sim-time latency
//! histograms, events per simulated second, time-to-detection, and the
//! paper's "perturb causally related events" heuristic made measurable —
//! *injection effectiveness*, the fraction of injected perturbations that
//! appear in the violation's blame chain ([`crate::provenance`]).
//!
//! The report renders as a text table and as Prometheus text-exposition
//! format (`to_prometheus`), so the planned `phtool serve` has a scrape
//! body ready-made. Everything is a pure function of the trial outcomes:
//! byte-identical across same-seed runs and thread counts.

use std::fmt::Write as _;

use ph_sim::{Histogram, DEFAULT_LATENCY_BOUNDS_NS};

use crate::harness::TrialOutcome;
use crate::provenance::BlameSummary;

/// Telemetry for one explored (scenario, strategy) cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyStats {
    /// Scenario name.
    pub scenario: String,
    /// Strategy name.
    pub strategy: String,
    /// Trials executed.
    pub trials: u32,
    /// Distinct canonical schedule classes among the considered trials.
    pub distinct_classes: u32,
    /// Trials skipped as canonical-schedule duplicates of an already-run
    /// (class, seed) pair.
    pub deduped_trials: u32,
    /// 1-based index of the first violating trial, if any.
    pub first_violation: Option<u32>,
    /// Total trace events generated across all trials.
    pub total_events: u64,
    /// Total simulated nanoseconds across all trials.
    pub total_sim_ns: u64,
    /// Cumulative simulated nanoseconds burned until (and including) the
    /// first violating trial — the time-to-detection, in the only clock the
    /// simulator has.
    pub time_to_detection_ns: Option<u64>,
    /// Distribution of per-trial simulated run lengths.
    pub trial_latency: Histogram,
    /// Injected perturbation artifacts in the violating run, if one exists.
    pub injected: u64,
    /// Of those, how many appeared in the blame chain.
    pub in_chain: u64,
}

impl StrategyStats {
    /// Builds one row from a harness [`TrialOutcome`]; blame numbers come
    /// from the example report's attached [`BlameSummary`], when present.
    pub fn from_outcome(outcome: &TrialOutcome) -> StrategyStats {
        let mut trial_latency = Histogram::new(&DEFAULT_LATENCY_BOUNDS_NS);
        let mut time_to_detection_ns = None;
        let mut cumulative = 0u64;
        for (t, &ns) in outcome.trial_sim_ns.iter().enumerate() {
            trial_latency.observe(ns);
            cumulative += ns;
            if Some(t as u32 + 1) == outcome.first_violation {
                time_to_detection_ns = Some(cumulative);
            }
        }
        let blame: Option<BlameSummary> = outcome.example.as_ref().and_then(|r| r.blame);
        StrategyStats {
            scenario: outcome.scenario.clone(),
            strategy: outcome.strategy.clone(),
            trials: outcome.trials_run,
            distinct_classes: outcome.distinct_classes,
            deduped_trials: outcome.deduped_trials,
            first_violation: outcome.first_violation,
            total_events: outcome.total_events,
            total_sim_ns: outcome.total_sim_ns,
            time_to_detection_ns,
            trial_latency,
            injected: blame.map(|b| b.injected as u64).unwrap_or(0),
            in_chain: blame.map(|b| b.in_chain as u64).unwrap_or(0),
        }
    }

    /// Trace events per simulated second (integer, deterministic); 0 when
    /// no simulated time elapsed.
    pub fn events_per_sim_sec(&self) -> u64 {
        self.total_events
            .saturating_mul(1_000_000_000)
            .checked_div(self.total_sim_ns)
            .unwrap_or(0)
    }

    /// Injection effectiveness as an integer percentage (floor), or `None`
    /// when the cell has no violating run or nothing was injected.
    pub fn effectiveness_pct(&self) -> Option<u64> {
        (self.in_chain * 100).checked_div(self.injected)
    }
}

/// Aggregated telemetry across every explored cell of a hunt or matrix.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct HuntReport {
    rows: Vec<StrategyStats>,
}

impl HuntReport {
    /// An empty report.
    pub fn new() -> HuntReport {
        HuntReport::default()
    }

    /// Builds a report from a batch of trial outcomes, preserving order.
    pub fn from_outcomes<'a>(outcomes: impl IntoIterator<Item = &'a TrialOutcome>) -> HuntReport {
        HuntReport {
            rows: outcomes
                .into_iter()
                .map(StrategyStats::from_outcome)
                .collect(),
        }
    }

    /// Appends one row.
    pub fn push(&mut self, row: StrategyStats) {
        self.rows.push(row);
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[StrategyStats] {
        &self.rows
    }

    /// `true` with no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table, one row per cell.
    pub fn render(&self) -> String {
        let first_col = self
            .rows
            .iter()
            .map(|r| r.scenario.len() + r.strategy.len() + 3)
            .max()
            .unwrap_or(8)
            .max("cell".len());
        let mut out = format!(
            "{:<first_col$}  {:>6}  {:>7}  {:>7}  {:>9}  {:>11}  {:>12}  {:>12}  {:>9}\n",
            "cell",
            "trials",
            "classes",
            "deduped",
            "events",
            "events/sec",
            "p95-trial",
            "detect-ns",
            "inj-eff"
        );
        for r in &self.rows {
            let label = format!("{} / {}", r.scenario, r.strategy);
            let ttd = match r.time_to_detection_ns {
                Some(ns) => ns.to_string(),
                None => "-".to_string(),
            };
            let eff = match r.effectiveness_pct() {
                Some(p) => format!("{p}%"),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "{label:<first_col$}  {:>6}  {:>7}  {:>7}  {:>9}  {:>11}  {:>12}  {ttd:>12}  \
                 {eff:>9}",
                r.trials,
                r.distinct_classes,
                r.deduped_trials,
                r.total_events,
                r.events_per_sim_sec(),
                r.trial_latency.quantile(0.95),
            );
        }
        out
    }

    /// Renders the report in Prometheus text-exposition format (counters,
    /// gauges and one cumulative histogram per cell), deterministically:
    /// rows in insertion order, fixed label order, no timestamps.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let labels =
            |r: &StrategyStats| format!("scenario=\"{}\",strategy=\"{}\"", r.scenario, r.strategy);
        out.push_str("# HELP ph_hunt_trials_total Trials executed per (scenario, strategy).\n");
        out.push_str("# TYPE ph_hunt_trials_total counter\n");
        for r in &self.rows {
            let _ = writeln!(out, "ph_hunt_trials_total{{{}}} {}", labels(r), r.trials);
        }
        out.push_str(
            "# HELP ph_hunt_distinct_classes Distinct canonical schedule classes considered \
             per cell.\n",
        );
        out.push_str("# TYPE ph_hunt_distinct_classes gauge\n");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "ph_hunt_distinct_classes{{{}}} {}",
                labels(r),
                r.distinct_classes
            );
        }
        out.push_str(
            "# HELP ph_hunt_deduped_trials_total Trials skipped as canonical-schedule \
             duplicates per cell.\n",
        );
        out.push_str("# TYPE ph_hunt_deduped_trials_total counter\n");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "ph_hunt_deduped_trials_total{{{}}} {}",
                labels(r),
                r.deduped_trials
            );
        }
        out.push_str("# HELP ph_hunt_events_total Trace events generated per cell.\n");
        out.push_str("# TYPE ph_hunt_events_total counter\n");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "ph_hunt_events_total{{{}}} {}",
                labels(r),
                r.total_events
            );
        }
        out.push_str("# HELP ph_hunt_events_per_sim_second Trace events per simulated second.\n");
        out.push_str("# TYPE ph_hunt_events_per_sim_second gauge\n");
        for r in &self.rows {
            let _ = writeln!(
                out,
                "ph_hunt_events_per_sim_second{{{}}} {}",
                labels(r),
                r.events_per_sim_sec()
            );
        }
        out.push_str(
            "# HELP ph_hunt_time_to_detection_ns Simulated ns burned until the first \
             violating trial (absent if none).\n",
        );
        out.push_str("# TYPE ph_hunt_time_to_detection_ns gauge\n");
        for r in &self.rows {
            if let Some(ns) = r.time_to_detection_ns {
                let _ = writeln!(out, "ph_hunt_time_to_detection_ns{{{}}} {ns}", labels(r));
            }
        }
        out.push_str(
            "# HELP ph_hunt_injection_effectiveness_pct Percent of injected perturbations \
             appearing in the violation's blame chain.\n",
        );
        out.push_str("# TYPE ph_hunt_injection_effectiveness_pct gauge\n");
        for r in &self.rows {
            if let Some(p) = r.effectiveness_pct() {
                let _ = writeln!(
                    out,
                    "ph_hunt_injection_effectiveness_pct{{{}}} {p}",
                    labels(r)
                );
            }
        }
        out.push_str("# HELP ph_hunt_trial_sim_ns Per-trial simulated run length.\n");
        out.push_str("# TYPE ph_hunt_trial_sim_ns histogram\n");
        for r in &self.rows {
            let l = labels(r);
            let mut cumulative = 0u64;
            for (i, &c) in r.trial_latency.counts.iter().enumerate() {
                cumulative += c;
                match r.trial_latency.bounds.get(i) {
                    Some(&b) => {
                        let _ = writeln!(
                            out,
                            "ph_hunt_trial_sim_ns_bucket{{{l},le=\"{b}\"}} {cumulative}"
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "ph_hunt_trial_sim_ns_bucket{{{l},le=\"+Inf\"}} {cumulative}"
                        );
                    }
                }
            }
            let _ = writeln!(
                out,
                "ph_hunt_trial_sim_ns_sum{{{l}}} {}",
                r.trial_latency.sum
            );
            let _ = writeln!(
                out,
                "ph_hunt_trial_sim_ns_count{{{l}}} {}",
                r.trial_latency.count
            );
        }
        out
    }
}

/// Prints the Prometheus exposition to stdout — the metrics endpoint body
/// the planned `phtool serve` will return; until then, pipe it to a file
/// or node-exporter textfile collector.
pub fn print_prometheus(report: &HuntReport) {
    // ph-lint: allow(stray-print, the Prometheus text exposition IS this writer's output stream)
    println!("{}", report.to_prometheus());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::TrialOutcome;

    fn outcome(first: Option<u32>) -> TrialOutcome {
        TrialOutcome {
            scenario: "s".into(),
            strategy: "guided".into(),
            trials_run: 3,
            distinct_classes: 2,
            deduped_trials: 1,
            first_violation: first,
            example: None,
            total_events: 300,
            total_sim_ns: 3_000_000_000,
            trial_sim_ns: vec![1_000_000_000; 3],
        }
    }

    #[test]
    fn stats_derive_rates_and_detection_time() {
        let s = StrategyStats::from_outcome(&outcome(Some(2)));
        assert_eq!(s.trials, 3);
        assert_eq!(s.distinct_classes, 2);
        assert_eq!(s.deduped_trials, 1);
        assert_eq!(s.events_per_sim_sec(), 100);
        assert_eq!(s.time_to_detection_ns, Some(2_000_000_000));
        assert_eq!(s.trial_latency.count, 3);
        assert_eq!(s.effectiveness_pct(), None, "no blame attached");
    }

    #[test]
    fn undetected_cells_have_no_detection_time() {
        let s = StrategyStats::from_outcome(&outcome(None));
        assert_eq!(s.time_to_detection_ns, None);
    }

    #[test]
    fn prometheus_exposition_is_deterministic_and_typed() {
        let outcomes = [outcome(Some(1)), outcome(None)];
        let r = HuntReport::from_outcomes(outcomes.iter());
        let prom = r.to_prometheus();
        assert_eq!(
            prom,
            HuntReport::from_outcomes(outcomes.iter()).to_prometheus()
        );
        assert!(prom.contains("# TYPE ph_hunt_trials_total counter"));
        assert!(prom.contains("ph_hunt_trials_total{scenario=\"s\",strategy=\"guided\"} 3"));
        assert!(prom.contains("# TYPE ph_hunt_distinct_classes gauge"));
        assert!(prom.contains("ph_hunt_distinct_classes{scenario=\"s\",strategy=\"guided\"} 2"));
        assert!(prom.contains("# TYPE ph_hunt_deduped_trials_total counter"));
        assert!(prom.contains("ph_hunt_deduped_trials_total{scenario=\"s\",strategy=\"guided\"} 1"));
        assert!(prom.contains("le=\"+Inf\""));
        assert!(prom.contains("ph_hunt_trial_sim_ns_count{scenario=\"s\",strategy=\"guided\"} 3"));
        // Both rows appear; the undetected one contributes no detection gauge.
        assert_eq!(prom.matches("ph_hunt_time_to_detection_ns{").count(), 1);
    }

    #[test]
    fn render_is_a_table_with_one_row_per_cell() {
        let outcomes = [outcome(Some(1)), outcome(None)];
        let r = HuntReport::from_outcomes(outcomes.iter());
        let text = r.render();
        assert!(text.contains("cell"));
        assert!(text.contains("inj-eff"));
        assert_eq!(text.lines().count(), 3);
    }
}
