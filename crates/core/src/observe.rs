//! Observability of history through sparse state reads (§3, Figure 3c).
//!
//! A component that only issues reads of `S′` at discrete points sees, per
//! entity and per read interval, only the *net* effect of the interval's
//! changes. Everything an intervening change did that a later change undid
//! is invisible: "the impact of e1 is cancelled by e2 in S′, which makes e1
//! unobservable" (§4.2.3). This module computes exactly which events of a
//! history are reconstructible from a given read schedule.

use std::collections::BTreeMap;

use crate::history::{Change, ChangeOp, History};

/// The outcome of the sparse-read observability analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservabilityReport {
    /// Sequence numbers of changes whose occurrence a sparse reader can
    /// infer (it sees the entity appear, disappear, or change version
    /// across some pair of consecutive reads).
    pub observable: Vec<u64>,
    /// Sequence numbers of changes invisible to the reader: their effect
    /// was cancelled or superseded within a read interval, or they lie
    /// beyond the last read.
    pub unobservable: Vec<u64>,
}

impl ObservabilityReport {
    /// Fraction of the history that is unobservable, in `[0, 1]`.
    pub fn gap_fraction(&self) -> f64 {
        let total = self.observable.len() + self.unobservable.len();
        if total == 0 {
            0.0
        } else {
            self.unobservable.len() as f64 / total as f64
        }
    }
}

/// Analyzes which changes of `h` a reader observing the state only at the
/// given history positions can reconstruct.
///
/// `read_points` are positions in `H` (a read at position `p` sees
/// `state_at(p)`); they are sorted and deduplicated internally, and an
/// implicit initial read at position 0 (empty state) is assumed.
///
/// Within one read interval `(p, q]`, for each entity, the reader compares
/// the entity's state at `p` and `q`:
///
/// * state differs → the *last* change to that entity in the interval is
///   observable (the reader sees its net effect); all earlier ones are not;
/// * state equal (e.g. create then delete, or delete then re-create at the
///   same version) → *every* change to that entity in the interval is
///   unobservable.
///
/// Changes after the final read point are unobservable (the reader has not
/// looked yet).
pub fn observability_report(h: &History, read_points: &[u64]) -> ObservabilityReport {
    let mut points: Vec<u64> = read_points.iter().copied().filter(|&p| p > 0).collect();
    points.sort_unstable();
    points.dedup();

    let mut observable = Vec::new();
    let mut unobservable = Vec::new();

    let mut prev = 0u64;
    for &q in &points {
        let q = q.min(h.len());
        if q <= prev {
            continue;
        }
        analyze_interval(h, prev, q, &mut observable, &mut unobservable);
        prev = q;
    }
    // Tail: never read.
    for c in h.changes().iter().filter(|c| c.seq > prev) {
        unobservable.push(c.seq);
    }

    observable.sort_unstable();
    unobservable.sort_unstable();
    ObservabilityReport {
        observable,
        unobservable,
    }
}

fn analyze_interval(
    h: &History,
    p: u64,
    q: u64,
    observable: &mut Vec<u64>,
    unobservable: &mut Vec<u64>,
) {
    // Group the interval's changes by entity, preserving order.
    let mut per_entity: BTreeMap<&str, Vec<&Change>> = BTreeMap::new();
    for c in h.changes().iter().filter(|c| c.seq > p && c.seq <= q) {
        per_entity.entry(c.entity.as_str()).or_default().push(c);
    }
    if per_entity.is_empty() {
        return;
    }
    let before = h.state_at(p);
    let after = h.state_at(q);
    for (entity, changes) in per_entity {
        let b = before.get(entity).map(|e| e.version);
        let a = after.get(entity).map(|e| e.version);
        let net_visible = match (b, a) {
            (None, None) => false,            // never seen alive
            (Some(vb), Some(va)) => vb != va, // version must differ
            _ => true,                        // appeared or vanished
        };
        if net_visible {
            let (last, earlier) = changes.split_last().expect("non-empty");
            observable.push(last.seq);
            for c in earlier {
                unobservable.push(c.seq);
            }
        } else {
            for c in changes {
                unobservable.push(c.seq);
            }
        }
    }
    let _ = ChangeOp::Create; // (ops are folded into versions by state_at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::ChangeOp;

    #[test]
    fn figure_3c_create_then_delete_between_reads_is_invisible() {
        // The paper's volume-controller bug [17]: pod marked for deletion
        // (e1) and deleted (e2) between two sparse reads — the controller
        // sees neither.
        let mut h = History::new();
        h.append("pod", ChangeOp::Create); // 1
        h.append("pod", ChangeOp::Delete); // 2
        let r = observability_report(&h, &[2]);
        assert!(r.observable.is_empty());
        assert_eq!(r.unobservable, vec![1, 2]);
        assert!((r.gap_fraction() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn reads_between_events_see_everything() {
        let mut h = History::new();
        h.append("pod", ChangeOp::Create); // 1
        h.append("pod", ChangeOp::Delete); // 2
        let r = observability_report(&h, &[1, 2]);
        assert_eq!(r.observable, vec![1, 2]);
        assert!(r.unobservable.is_empty());
        assert_eq!(r.gap_fraction(), 0.0);
    }

    #[test]
    fn intermediate_updates_are_masked_by_the_last_one() {
        let mut h = History::new();
        h.append("cfg", ChangeOp::Create); // 1
        h.append("cfg", ChangeOp::Update(1)); // 2
        h.append("cfg", ChangeOp::Update(2)); // 3
        let r = observability_report(&h, &[3]);
        assert_eq!(r.observable, vec![3]);
        assert_eq!(r.unobservable, vec![1, 2]);
    }

    #[test]
    fn delete_and_recreate_at_same_version_is_invisible() {
        let mut h = History::new();
        h.append("n", ChangeOp::Create); // 1
        let r0 = observability_report(&h, &[1]);
        assert_eq!(r0.observable, vec![1]);
        h.append("n", ChangeOp::Delete); // 2
        h.append("n", ChangeOp::Create); // 3 (same version 0)
        let r = observability_report(&h, &[1, 3]);
        // Interval (1,3]: n existed at v0 before and after → both invisible.
        assert_eq!(r.observable, vec![1]);
        assert_eq!(r.unobservable, vec![2, 3]);
    }

    #[test]
    fn events_after_last_read_are_unobservable() {
        let mut h = History::new();
        h.append("a", ChangeOp::Create); // 1
        h.append("b", ChangeOp::Create); // 2
        let r = observability_report(&h, &[1]);
        assert_eq!(r.observable, vec![1]);
        assert_eq!(r.unobservable, vec![2]);
    }

    #[test]
    fn independent_entities_are_analyzed_separately() {
        let mut h = History::new();
        h.append("a", ChangeOp::Create); // 1
        h.append("b", ChangeOp::Create); // 2
        h.append("a", ChangeOp::Delete); // 3
        let r = observability_report(&h, &[3]);
        // a: created+deleted in one interval → both invisible. b: visible.
        assert_eq!(r.observable, vec![2]);
        assert_eq!(r.unobservable, vec![1, 3]);
    }

    #[test]
    fn denser_reads_monotonically_reduce_gaps() {
        let mut h = History::new();
        // Three entities, each: create → update(1) → update(2) → delete,
        // interleaved round-robin (12 events total).
        for round in 0..4 {
            for e in 0..3 {
                let entity = format!("e{e}");
                match round {
                    0 => h.append(entity, ChangeOp::Create),
                    3 => h.append(entity, ChangeOp::Delete),
                    k => h.append(entity, ChangeOp::Update(k as u64)),
                };
            }
        }
        let sparse = observability_report(&h, &[12]);
        let medium = observability_report(&h, &[4, 8, 12]);
        let dense: Vec<u64> = (1..=12).collect();
        let full = observability_report(&h, &dense);
        assert!(sparse.gap_fraction() >= medium.gap_fraction());
        assert!(medium.gap_fraction() >= full.gap_fraction());
        assert_eq!(full.gap_fraction(), 0.0);
    }

    #[test]
    fn read_points_are_normalized() {
        let mut h = History::new();
        h.append("a", ChangeOp::Create);
        // Duplicates, zeros and beyond-end points are tolerated.
        let r = observability_report(&h, &[0, 1, 1, 99]);
        assert_eq!(r.observable, vec![1]);
        assert!(r.unobservable.is_empty());
    }

    #[test]
    fn read_past_end_equals_read_at_end() {
        let mut h = History::new();
        h.append("a", ChangeOp::Create); // 1
        h.append("a", ChangeOp::Update(1)); // 2
        let at_end = observability_report(&h, &[2]);
        let past_end = observability_report(&h, &[1_000_000]);
        assert_eq!(at_end, past_end, "points beyond |H| clamp to |H|");
    }

    #[test]
    fn zero_only_read_points_see_nothing() {
        // A read at position 0 is the implicit initial (empty) read; a
        // schedule of only zeros is equivalent to never reading.
        let mut h = History::new();
        h.append("a", ChangeOp::Create); // 1
        let zeros = observability_report(&h, &[0, 0, 0]);
        let none = observability_report(&h, &[]);
        assert_eq!(zeros, none);
        assert_eq!(zeros.unobservable, vec![1]);
        assert!((zeros.gap_fraction() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn rewrite_to_the_same_version_is_invisible() {
        let mut h = History::new();
        h.append("a", ChangeOp::Create); // 1: version 0
        h.append("a", ChangeOp::Update(3)); // 2
        h.append("a", ChangeOp::Update(3)); // 3: same version as read 2 saw
        let r = observability_report(&h, &[2, 3]);
        // Interval (2,3]: version 3 before and after → change 3 invisible.
        assert_eq!(r.observable, vec![2]);
        assert!(r.unobservable.contains(&3));
    }

    #[test]
    fn gap_fraction_stays_within_bounds() {
        // Across a deterministic sweep of schedules, every report must
        // partition the history and keep the gap fraction in [0, 1].
        let mut h = History::new();
        for i in 0..8u64 {
            let entity = format!("e{}", i % 3);
            match i % 4 {
                0 => h.append(entity, ChangeOp::Create),
                3 => h.append(entity, ChangeOp::Delete),
                k => h.append(entity, ChangeOp::Update(k)),
            };
        }
        let schedules: &[&[u64]] = &[
            &[],
            &[0],
            &[1],
            &[8],
            &[3, 6, 8],
            &[2, 2, 4, 4, 99],
            &[1, 2, 3, 4, 5, 6, 7, 8],
        ];
        for points in schedules {
            let r = observability_report(&h, points);
            let g = r.gap_fraction();
            assert!(
                (0.0..=1.0).contains(&g),
                "gap {g} out of bounds for {points:?}"
            );
            assert_eq!(
                r.observable.len() + r.unobservable.len(),
                h.len() as usize,
                "report must partition the history for {points:?}"
            );
        }
    }

    #[test]
    fn empty_history_or_no_reads() {
        let h = History::new();
        let r = observability_report(&h, &[1, 2]);
        assert!(r.observable.is_empty() && r.unobservable.is_empty());
        assert_eq!(r.gap_fraction(), 0.0);

        let mut h = History::new();
        h.append("a", ChangeOp::Create);
        let r = observability_report(&h, &[]);
        assert_eq!(r.unobservable, vec![1]);
    }
}
