//! Canonical perturbation schedules — one representative per
//! commutation class.
//!
//! The static independence analysis ([`ph_lint::independence`]) says
//! which perturbation letters commute. Two planned schedules that differ
//! only by swapping adjacent *independent* operations are the same test:
//! they drive the model (and, for footprint-disjoint concrete injections,
//! the simulated cluster) to identical states. This module picks the
//! representative: [`canonicalize`] computes the lexicographically least
//! word of the schedule's trace-equivalence class ([`Letter`]'s derived
//! `Ord` — the same order the model checker's witnesses use), the unique
//! normal form every commuting permutation maps to. Dependent pairs —
//! same view, gate-coupled, or involving a global crash/switch letter —
//! are never reordered.
//!
//! The explorer and the witness bridge fingerprint each trial's
//! [`PlannedOp`] schedule via [`plan_class`] and skip duplicates of an
//! already-run canonical form, spending the freed budget on novel
//! classes. Anchors carry every behavioral parameter (target cache,
//! injection times, payload selectors), so equal fingerprints mean
//! *behaviorally identical* strategies — the dedup is provably
//! verdict-preserving, which the canonical-equivalence property tests pin
//! end to end.

use ph_lint::independence::IndependenceMatrix;
use ph_lint::modelcheck::Letter;

/// One planned concrete injection: its abstract alphabet letter plus an
/// anchor string carrying every behavioral parameter (victim, times,
/// selectors). Two ops are the same operation iff letter and anchor both
/// match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedOp {
    /// The abstract perturbation this injection realizes.
    pub letter: Letter,
    /// Behavioral parameters, e.g. `cache:1@1500+900`.
    pub anchor: String,
}

impl PlannedOp {
    /// Convenience constructor.
    pub fn new(letter: Letter, anchor: impl Into<String>) -> PlannedOp {
        PlannedOp {
            letter,
            anchor: anchor.into(),
        }
    }
}

/// The lexicographically least word of a trace-equivalence class.
///
/// Greedy: at each step the candidates are the items with no *dependent*
/// item still ahead of them (the minimal elements of the remaining
/// word's dependence partial order — a property of the class, not of the
/// particular representative), and the one with the least letter is
/// emitted. A naive adjacent-swap bubble is **not** confluent here — an
/// independent pair separated by letters that block one path but not the
/// other can strand two equivalent words at different fixpoints — while
/// this greedy form is unique by construction. Items sharing a letter
/// are same-view dependent, so their relative order always survives.
fn least_linearization<T: Clone>(
    items: &[T],
    letter: impl Fn(&T) -> &Letter,
    matrix: &IndependenceMatrix,
) -> Vec<T> {
    let mut rest = items.to_vec();
    let mut out = Vec::with_capacity(rest.len());
    while !rest.is_empty() {
        let mut best = 0usize;
        'candidates: for i in 1..rest.len() {
            for j in 0..i {
                if !matrix.independent(letter(&rest[j]), letter(&rest[i])) {
                    continue 'candidates;
                }
            }
            if letter(&rest[i]) < letter(&rest[best]) {
                best = i;
            }
        }
        out.push(rest.remove(best));
    }
    out
}

/// Reorders commuting letters into the canonical normal form: the unique
/// lexicographically least representative (under [`Letter`]'s derived
/// `Ord` — the same order the model checker's witnesses use) of the
/// schedule's trace-equivalence class. Equivalent schedules, and only
/// those, canonicalize identically; dependent pairs — same view,
/// gate-coupled, or involving a global crash/switch letter — keep their
/// order.
pub fn canonicalize(schedule: &[Letter], matrix: &IndependenceMatrix) -> Vec<Letter> {
    least_linearization(schedule, |l| l, matrix)
}

/// [`canonicalize`] lifted to planned ops: ops travel with their anchors,
/// and only the letters consult the matrix. Ops sharing a letter are
/// same-view dependent by definition, so their relative order (and thus
/// anchor order) is always preserved.
pub fn canonicalize_ops(ops: &[PlannedOp], matrix: &IndependenceMatrix) -> Vec<PlannedOp> {
    least_linearization(ops, |op| &op.letter, matrix)
}

/// FNV-1a over the ops' labels and anchors, with separators so adjacent
/// fields cannot alias.
pub fn fingerprint(ops: &[PlannedOp]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    for op in ops {
        eat(op.letter.label().as_bytes());
        eat(b"@");
        eat(op.anchor.as_bytes());
        eat(b";");
    }
    h
}

/// The footprint-only independence matrix of a plan: derived from the
/// plan's own letters (sorted, deduplicated), with the global/same-view
/// rules but no IR gate information — concrete injection anchors name
/// caches and components, not IR views, so gate coupling cannot apply.
pub fn plan_matrix(ops: &[PlannedOp]) -> IndependenceMatrix {
    let mut letters: Vec<Letter> = ops.iter().map(|op| op.letter.clone()).collect();
    letters.sort();
    letters.dedup();
    IndependenceMatrix::for_alphabet("plan", letters)
}

/// The canonical fingerprint of a planned schedule: permuting commuting
/// ops never changes it; reordering dependent ops or changing any anchor
/// does.
pub fn plan_class(ops: &[PlannedOp]) -> u64 {
    fingerprint(&canonicalize_ops(ops, &plan_matrix(ops)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delay(r: &str, anchor: &str) -> PlannedOp {
        PlannedOp::new(Letter::DelayCache(r.into()), anchor)
    }

    fn drop_n(r: &str, anchor: &str) -> PlannedOp {
        PlannedOp::new(Letter::DropNotification(r.into()), anchor)
    }

    #[test]
    fn canonicalize_sorts_commuting_letters_and_is_idempotent() {
        let letters = vec![
            Letter::DropNotification("cache:1".into()),
            Letter::DelayCache("cache:0".into()),
        ];
        let matrix = IndependenceMatrix::for_alphabet("t", {
            let mut l = letters.clone();
            l.sort();
            l
        });
        let canon = canonicalize(&letters, &matrix);
        assert_eq!(
            canon,
            vec![
                Letter::DelayCache("cache:0".into()),
                Letter::DropNotification("cache:1".into()),
            ]
        );
        assert_eq!(canonicalize(&canon, &matrix), canon);
    }

    #[test]
    fn dependent_letters_keep_their_order() {
        // Same view: a delay then a drop on cache:0 must not commute.
        let letters = vec![
            Letter::DropNotification("cache:0".into()),
            Letter::DelayCache("cache:0".into()),
        ];
        let matrix = IndependenceMatrix::for_alphabet("t", {
            let mut l = letters.clone();
            l.sort();
            l
        });
        assert_eq!(canonicalize(&letters, &matrix), letters);
        // Global: nothing moves across a crash.
        let with_crash = vec![
            Letter::CrashRestartReplay,
            Letter::DelayCache("cache:0".into()),
        ];
        let matrix = IndependenceMatrix::for_alphabet("t", {
            let mut l = with_crash.clone();
            l.sort();
            l
        });
        assert_eq!(canonicalize(&with_crash, &matrix), with_crash);
    }

    #[test]
    fn plan_class_identifies_commuting_permutations_only() {
        let a = vec![delay("cache:0", "x"), drop_n("cache:1", "y")];
        let b = vec![drop_n("cache:1", "y"), delay("cache:0", "x")];
        assert_eq!(plan_class(&a), plan_class(&b));

        // Different anchor → different class.
        let c = vec![delay("cache:0", "z"), drop_n("cache:1", "y")];
        assert_ne!(plan_class(&a), plan_class(&c));

        // Dependent reorder (same view) → different class.
        let d1 = vec![delay("cache:0", "x"), drop_n("cache:0", "y")];
        let d2 = vec![drop_n("cache:0", "y"), delay("cache:0", "x")];
        assert_ne!(plan_class(&d1), plan_class(&d2));
    }

    #[test]
    fn fingerprint_separators_prevent_field_aliasing() {
        let a = vec![delay("cache:0", "ab")];
        let b = vec![delay("cache:0a", "b")];
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&[]), fingerprint(&a));
    }
}
