//! Shard-count invisibility, end to end.
//!
//! The slab-level model tests pin that a `ShardedCache` behaves like one
//! `BTreeMap` for any shard count; this suite pins the whole-run claim: a
//! mega-cluster trial at `shards ∈ {1, 2, 8}` produces byte-identical
//! `RunReport` JSON and identical trace digests. Parameters are drawn as
//! tuples from a fixed-seed [`SimRng`], so every trial is reproducible
//! from the seed alone.

use ph_scenarios::mega_cluster::{run, ScaleParams};
use ph_sim::{Duration, SimRng};

#[test]
fn shard_count_never_changes_a_run_report() {
    let mut rng = SimRng::from_seed(0xE10);
    for trial in 0..3u64 {
        // One tuple draw per trial: cluster shape first, then the run seed.
        let (nodes, pods, watchers, seed) = (
            1 + rng.below(12) as usize,
            50 + rng.below(250) as usize,
            1 + rng.below(3) as usize,
            1 + rng.below(1 << 20),
        );
        let params = |shards: usize| ScaleParams {
            nodes,
            pods,
            shards,
            watchers,
            churn: Duration::millis(400),
        };
        let reference = run(seed, &params(1));
        let reference_json = reference.to_json();
        for shards in [2usize, 8] {
            let report = run(seed, &params(shards));
            assert_eq!(
                report.trace_digest, reference.trace_digest,
                "trial {trial} (nodes {nodes}, pods {pods}, seed {seed}): \
                 trace digest moved at shards={shards}"
            );
            assert_eq!(
                report.to_json(),
                reference_json,
                "trial {trial} (nodes {nodes}, pods {pods}, seed {seed}): \
                 report bytes moved at shards={shards}"
            );
        }
    }
}
