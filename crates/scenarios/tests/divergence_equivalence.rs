//! Regression gate for the incremental divergence sampler.
//!
//! `Runner::sample_divergence` has two paths: the default incremental one
//! (pre-resolved slots and syms, gauge writes only on change) and the
//! legacy full diff (string-keyed, rewrite everything each quantum) kept
//! behind `PH_DIVERGENCE_FULL=1`. The two must be *report-identical* — not
//! just statistically close — on every scenario and variant: identical
//! divergence summaries (max/mean lag, per-view gap fractions) and
//! identical full report JSON, metrics included.
//!
//! This lives in its own integration-test binary because the toggle is a
//! process-global environment variable: a dedicated process keeps the
//! flips from racing other tests.

use ph_scenarios::{scenario_statics, Variant};

#[test]
fn incremental_sampling_matches_the_full_diff_everywhere() {
    std::env::remove_var("PH_DIVERGENCE_FULL");
    for e in scenario_statics() {
        for variant in [Variant::Buggy, Variant::Fixed] {
            let mut guided = (e.guided)(7);
            let fast = (e.run)(7, guided.as_mut(), variant);

            std::env::set_var("PH_DIVERGENCE_FULL", "1");
            let mut guided = (e.guided)(7);
            let full = (e.run)(7, guided.as_mut(), variant);
            std::env::remove_var("PH_DIVERGENCE_FULL");

            // The headline statistics, named explicitly so a failure reads
            // directly...
            assert_eq!(
                fast.divergence.max_lag(),
                full.divergence.max_lag(),
                "{} {variant}: max lag diverged",
                e.name
            );
            assert_eq!(
                fast.divergence.mean_lag().to_bits(),
                full.divergence.mean_lag().to_bits(),
                "{} {variant}: mean lag diverged",
                e.name
            );
            let gaps = |r: &ph_core::harness::RunReport| -> Vec<(String, u64)> {
                r.divergence
                    .iter()
                    .map(|(n, v)| (n.to_string(), v.gap_fraction().to_bits()))
                    .collect()
            };
            assert_eq!(
                gaps(&fast),
                gaps(&full),
                "{} {variant}: per-view gap fractions diverged",
                e.name
            );
            // ...and the sledgehammer: the whole report, byte for byte
            // (covers the histogram/gauge metrics both paths write).
            assert_eq!(
                fast.to_json(),
                full.to_json(),
                "{} {variant}: full report diverged",
                e.name
            );
        }
    }
}
