//! cassandra-operator-402 — "PVC can be accidentally deleted when the
//! controller reads stale data from apiserver" (§7).
//!
//! The operator's orphaned-PVC sweep trusts its cached pod list. Freeze the
//! pod's events (but not the PVC's) on their way to apiserver-2, restart
//! the operator so it re-synchronizes there, and its view shows the PVC
//! with no owning pod — so it deletes the storage of a **live** Cassandra
//! node. Data loss from a stale read.
//!
//! Guided injection: a composition of the selective staleness injector
//! ([`HoldMatching`] on `pods/dc1-2` toward apiserver-2) and the
//! trace-triggered restart ([`CrashOnAnnotation`] on the operator's
//! `operator.create_pod` decision).
//!
//! * **buggy** (`fresh_confirm_orphan = false`): deletes `dc1-pvc-2` while
//!   `dc1-2` runs — the wrongful-delete oracle fires;
//! * **fixed**: confirms the owner's absence with a quorum read, finds the
//!   pod alive, and leaves the PVC alone.
//!
//! Schedule: `1.0s` seed + dc1 desired 2 → converge → hold `pods/dc1-2`
//! events to api-2 from `2.4s` → `2.5s` desired 3 (operator creates
//! `dc1-pvc-2` then `dc1-2`) → crash operator 300 ms after the create,
//! restart 300 ms later on api-2 → release backlog at teardown → `6.5s` end.

use ph_cluster::objects::{Body, Object};
use ph_cluster::operator::OperatorFlags;
use ph_cluster::topology::ClusterConfig;
use ph_core::harness::RunReport;
use ph_core::perturb::Strategy;
use ph_sim::Duration;

use crate::common::{Runner, Variant};
use crate::oracles;
use crate::strategies::{Compose, CrashOnAnnotation, EventSelector, HoldMatching, TargetRef};

/// Scenario name used in reports and matrices.
pub const NAME: &str = "cass-op-402";

/// Defect switches for this scenario's buggy variant: only bug 402.
fn flags(variant: Variant) -> OperatorFlags {
    if variant.is_buggy() {
        OperatorFlags {
            pvc_requires_observed_terminating: false,
            handle_decommission_notfound: true,
            fresh_confirm_orphan: false,
        }
    } else {
        OperatorFlags::fixed()
    }
}

/// The tuned §7 injection (see module docs). The operator is component 3;
/// apiserver-2 is cache 1.
pub fn guided(_seed: u64) -> Box<dyn Strategy> {
    Box::new(Compose::new(
        "staleness+time-travel",
        vec![
            Box::new(HoldMatching::new(
                TargetRef::Cache(1),
                EventSelector::key("pods/dc1-2"),
                Duration::millis(2400),
                None,
            )),
            Box::new(CrashOnAnnotation::new(
                "operator.create_pod",
                None,
                Duration::millis(300),
                Duration::millis(300),
                1,
            )),
        ],
    ))
}

/// The §4.2 pattern class this scenario's buggy variant exercises.
pub const PATTERN: ph_lint::summary::PatternClass = ph_lint::summary::PatternClass::Staleness;

/// What the blame slicer needs to know: the operator's orphan sweep deletes
/// a live pod's PVC (`operator.delete_pvc`) off a stale apiserver view.
pub fn blame_spec() -> ph_core::provenance::BlameSpec {
    ph_core::provenance::BlameSpec {
        scenario: NAME,
        component: "cassandra-operator",
        action_labels: &["operator.delete_pvc"],
        caches: &["apiserver-1", "apiserver-2"],
    }
}

/// The cluster this scenario spawns (shared by [`run`] and the static
/// hazard pass, so the analysis sees exactly what executes).
fn cluster_config(variant: Variant) -> ClusterConfig {
    ClusterConfig {
        store_nodes: 3,
        apiservers: 2,
        nodes: vec!["node-1".into(), "node-2".into()],
        scheduler: Some(true),
        operator: Some(flags(variant)),
        ..ClusterConfig::default()
    }
}

/// Static access summaries of the focal component (the operator, whose
/// cache-trusting orphan sweep is the bug-402 staleness vector).
pub fn access_summaries(variant: Variant) -> Vec<ph_lint::summary::AccessSummary> {
    ph_cluster::topology::access_summaries(&cluster_config(variant))
        .into_iter()
        .filter(|s| s.component == "cassandra-operator")
        .collect()
}

/// Runs one trial under `strategy`.
pub fn run(seed: u64, strategy: &mut dyn Strategy, variant: Variant) -> RunReport {
    run_with_trace(seed, strategy, variant).0
}

/// Like [`run`], but also returns the full trace (consumed by the blame
/// slicer and the causality-guided auto-explorer).
pub fn run_with_trace(
    seed: u64,
    strategy: &mut dyn Strategy,
    variant: Variant,
) -> (RunReport, ph_sim::Trace) {
    let cfg = cluster_config(variant);
    let mut runner = Runner::new(NAME, seed, &cfg, Duration::secs(1), Duration::millis(6500));
    runner.seed(&Object::node("node-1"));
    runner.seed(&Object::node("node-2"));
    runner.seed(&Object::new(
        "dc1",
        Body::CassandraDatacenter { desired: 2 },
    ));

    strategy.setup(&mut runner.world, &runner.targets);
    runner.drive(strategy, Duration::millis(2500), Duration::millis(10));

    // Scale up: the operator creates dc1-pvc-2, then pod dc1-2.
    runner.seed(&Object::new(
        "dc1",
        Body::CassandraDatacenter { desired: 3 },
    ));

    runner.drive(strategy, Duration::millis(6500), Duration::millis(10));
    let cluster = runner.cluster.clone();
    let mut oracles: Vec<Box<dyn ph_core::oracle::Oracle>> =
        vec![oracles::no_wrongful_pvc_delete(cluster)];
    let (mut report, trace) =
        runner.finish_with_trace(strategy, Duration::millis(500), &mut oracles);
    report.attach_blame(&trace, &blame_spec());
    (report, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_core::perturb::NoFault;

    #[test]
    fn stale_view_deletes_a_live_pods_storage() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Buggy);
        assert!(report.failed(), "expected a wrongful PVC deletion");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.details.contains("dc1-pvc-2") && v.details.contains("alive")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn fresh_confirmation_protects_the_pvc() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Fixed);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn no_fault_run_is_clean_even_when_buggy() {
        let mut strategy = NoFault;
        let report = run(1, &mut strategy, Variant::Buggy);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }
}
