//! Kubernetes-56261 — the scheduler misses a node deletion (§4.2.3).
//!
//! "The scheduler falls into a cycle of failing pod placement attempts
//! after missing a node deletion event. It keeps scheduling pods to the
//! deleted node without synchronizing S′ with S."
//!
//! Setup: two nodes, a scheduler, a replica-set controller. `node-2` is
//! deleted (its kubelet crashes with it); the guided injection drops the
//! deletion notification on its way to the scheduler, leaving a ghost node
//! in the scheduler's cache. A subsequent scale-up then binds fresh pods to
//! the ghost; they can never run.
//!
//! * **buggy** scheduler: purely event-driven node cache, no recovery —
//!   the pods stay wedged (liveness violation);
//! * **fixed** scheduler: periodically re-lists its node cache and rebinds
//!   pods stuck on nonexistent nodes — converges despite the same drop.
//!
//! Schedule: `1.0s` seed nodes + `web` rs (replicas 0) → `2.0s` delete
//! `node-2` (+ crash its kubelet) → `2.5s` scale `web` to 3 → `6.0s` end.

use ph_cluster::objects::{Body, Object};
use ph_cluster::topology::ClusterConfig;
use ph_core::harness::RunReport;
use ph_core::perturb::Strategy;
use ph_sim::Duration;

use crate::common::{Runner, Variant};
use crate::oracles;
use crate::strategies::{DropMatching, EventSelector, TargetRef};

/// Scenario name used in reports and matrices.
pub const NAME: &str = "k8s-56261";

/// The tuned §7 observability-gap injection: drop the `nodes/node-2`
/// deletion notification to the scheduler (components: kubelet-1, kubelet-2,
/// scheduler, rs-controller → index 2).
pub fn guided(_seed: u64) -> Box<dyn Strategy> {
    Box::new(DropMatching {
        dst: TargetRef::Component(2),
        selector: EventSelector::deletes_of("nodes/node-2"),
        from: Duration::millis(1500),
        max: 4,
    })
}

/// Runs one trial under `strategy`.
pub fn run(seed: u64, strategy: &mut dyn Strategy, variant: Variant) -> RunReport {
    run_with_trace(seed, strategy, variant).0
}

/// The §4.2 pattern class this scenario's buggy variant exercises.
pub const PATTERN: ph_lint::summary::PatternClass = ph_lint::summary::PatternClass::Staleness;

/// What the blame slicer needs to know: the scheduler acts (binds pods)
/// on a node view fed through the apiservers.
pub fn blame_spec() -> ph_core::provenance::BlameSpec {
    ph_core::provenance::BlameSpec {
        scenario: NAME,
        component: "scheduler",
        action_labels: &["scheduler.bind"],
        caches: &["apiserver-1", "apiserver-2"],
    }
}

/// The cluster this scenario spawns (shared by [`run`] and the static
/// hazard pass, so the analysis sees exactly what executes).
fn cluster_config(variant: Variant) -> ClusterConfig {
    ClusterConfig {
        store_nodes: 3,
        apiservers: 2,
        nodes: vec!["node-1".into(), "node-2".into()],
        scheduler: Some(!variant.is_buggy()),
        rs_controller: Some(false),
        ..ClusterConfig::default()
    }
}

/// Static access summaries of the focal component (the scheduler, whose
/// never-resynced node view is the 56261 staleness vector).
pub fn access_summaries(variant: Variant) -> Vec<ph_lint::summary::AccessSummary> {
    ph_cluster::topology::access_summaries(&cluster_config(variant))
        .into_iter()
        .filter(|s| s.component == "scheduler")
        .collect()
}

/// Like [`run`], but also returns the full trace (consumed by the
/// causality-guided auto-explorer).
pub fn run_with_trace(
    seed: u64,
    strategy: &mut dyn Strategy,
    variant: Variant,
) -> (RunReport, ph_sim::Trace) {
    let cfg = cluster_config(variant);
    let mut runner = Runner::new(NAME, seed, &cfg, Duration::secs(1), Duration::secs(6));
    runner.seed(&Object::node("node-1"));
    runner.seed(&Object::node("node-2"));
    runner.seed(&Object::new("web", Body::ReplicaSet { replicas: 0 }));

    strategy.setup(&mut runner.world, &runner.targets);
    runner.drive(strategy, Duration::secs(2), Duration::millis(10));

    // node-2 dies: its kubelet crashes and the node object is removed.
    let k2 = runner.cluster.kubelets[1];
    runner.world.crash(k2);
    let dl = runner.admin_deadline();
    runner
        .cluster
        .delete_key(&mut runner.world, "nodes/node-2", dl);

    runner.drive(strategy, Duration::millis(2500), Duration::millis(10));
    // Scale up: the scheduler must place 3 new pods.
    runner.seed(&Object::new("web", Body::ReplicaSet { replicas: 3 }));

    runner.drive(strategy, Duration::secs(6), Duration::millis(10));
    let cluster = runner.cluster.clone();
    let mut oracles: Vec<Box<dyn ph_core::oracle::Oracle>> =
        vec![oracles::all_pods_running(cluster)];
    let (mut report, trace) =
        runner.finish_with_trace(strategy, Duration::millis(500), &mut oracles);
    report.attach_blame(&trace, &blame_spec());
    (report, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_core::perturb::NoFault;

    #[test]
    fn dropped_deletion_wedges_the_buggy_scheduler() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Buggy);
        assert!(report.failed(), "expected pods wedged on the ghost node");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.details.contains("node-2") || v.details.contains("stuck")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn fixed_scheduler_recovers_from_the_same_drop() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Fixed);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn no_fault_run_is_clean_even_when_buggy() {
        let mut strategy = NoFault;
        let report = run(1, &mut strategy, Variant::Buggy);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }
}
