//! Node fencing — a partial-history hazard of the paper's §2 family,
//! beyond its seven case studies (the class behind reference \[5\],
//! "Disallow ApiServer HA for Pod Safety").
//!
//! A kubelet that stops heartbeating might be dead — or merely partitioned
//! from the apiservers while its containers keep running. The
//! node-lifecycle controller cannot tell the difference from its view
//! `(H′, S′)`: the history it *doesn't* see (the containers still running)
//! is exactly the gap. The aggressive controller force-evicts the pods so
//! they are rescheduled; the replacements then run concurrently with the
//! originals on the partitioned node — the same duplicate-execution
//! violation as Kubernetes-59848, reached through a different partial
//! history.
//!
//! * **buggy** (`force_evict = true`): fast failover, unsafe under
//!   partitions;
//! * **fixed** (`force_evict = false`): marks the node not-ready and waits
//!   (Kubernetes' actual stance: never force-delete pods from unreachable
//!   nodes), trading availability for safety.
//!
//! The guided injection here is the simplest one in the suite: a plain
//! network partition of the kubelet from the apiservers — the scenario
//! exists to show that even "ordinary" faults become safety violations
//! when a controller trusts its partial view.
//!
//! Schedule: `1.0s` seed nodes + `web` rs (replicas 2) → converge →
//! `2.5s` partition kubelet-node-2 from the apiservers → lease expires,
//! buggy controller evicts, scheduler reschedules onto node-1 → `5.5s`
//! heal → `7.0s` end.

use ph_cluster::objects::{Body, Object};
use ph_cluster::topology::ClusterConfig;
use ph_core::harness::RunReport;
use ph_core::perturb::Strategy;
use ph_sim::Duration;

use crate::common::{Runner, Variant};
use crate::oracles;
use crate::strategies::PartitionComponent;

/// Scenario name used in reports and matrices.
pub const NAME: &str = "node-fencing";

/// The guided injection: partition kubelet-node-2 (component 1) from the
/// apiservers between 2.5 s and 5.5 s.
pub fn guided(_seed: u64) -> Box<dyn Strategy> {
    Box::new(PartitionComponent::new(
        1,
        Duration::millis(2500),
        Duration::millis(5500),
    ))
}

/// The §4.2 pattern class this scenario's buggy variant exercises.
pub const PATTERN: ph_lint::summary::PatternClass =
    ph_lint::summary::PatternClass::ObservabilityGap;

/// What the blame slicer needs to know: the node-lifecycle controller
/// force-evicts (`nlc.force_evict`) a node it cannot distinguish from a
/// merely-unobservable one behind the partition.
pub fn blame_spec() -> ph_core::provenance::BlameSpec {
    ph_core::provenance::BlameSpec {
        scenario: NAME,
        component: "node-lifecycle",
        action_labels: &["nlc.force_evict"],
        caches: &["apiserver-1", "apiserver-2"],
    }
}

/// The cluster this scenario spawns (shared by [`run`] and the static
/// hazard pass, so the analysis sees exactly what executes). The buggy
/// variant enables force eviction; the fixed one only marks nodes.
fn cluster_config(variant: Variant) -> ClusterConfig {
    ClusterConfig {
        store_nodes: 3,
        apiservers: 2,
        nodes: vec!["node-1".into(), "node-2".into()],
        scheduler: Some(true),
        rs_controller: Some(false),
        node_lifecycle: Some(variant.is_buggy()),
        ..ClusterConfig::default()
    }
}

/// Static access summaries of the focal component (the node-lifecycle
/// controller, whose lease-silence eviction is the unobservable-liveness
/// gap).
pub fn access_summaries(variant: Variant) -> Vec<ph_lint::summary::AccessSummary> {
    ph_cluster::topology::access_summaries(&cluster_config(variant))
        .into_iter()
        .filter(|s| s.component == "node-lifecycle")
        .collect()
}

/// Runs one trial under `strategy`.
pub fn run(seed: u64, strategy: &mut dyn Strategy, variant: Variant) -> RunReport {
    run_with_trace(seed, strategy, variant).0
}

/// Like [`run`], but also returns the full trace (consumed by the blame
/// slicer and the causality-guided auto-explorer).
pub fn run_with_trace(
    seed: u64,
    strategy: &mut dyn Strategy,
    variant: Variant,
) -> (RunReport, ph_sim::Trace) {
    let cfg = cluster_config(variant);
    let mut runner = Runner::new(NAME, seed, &cfg, Duration::secs(1), Duration::secs(7));
    runner.seed(&Object::node("node-1"));
    runner.seed(&Object::node("node-2"));
    runner.seed(&Object::new("web", Body::ReplicaSet { replicas: 2 }));

    strategy.setup(&mut runner.world, &runner.targets);
    runner.drive(strategy, Duration::secs(7), Duration::millis(10));

    let mut oracles: Vec<Box<dyn ph_core::oracle::Oracle>> = vec![oracles::unique_pod_execution()];
    let (mut report, trace) =
        runner.finish_with_trace(strategy, Duration::millis(500), &mut oracles);
    report.attach_blame(&trace, &blame_spec());
    (report, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_core::perturb::NoFault;

    #[test]
    fn partition_plus_force_eviction_duplicates_pods() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Buggy);
        assert!(
            report.failed(),
            "expected duplicate execution after force eviction"
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.details.contains("running on 2 actors")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn conservative_controller_stays_safe_under_the_same_partition() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Fixed);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn no_fault_run_is_clean_even_when_buggy() {
        let mut strategy = NoFault;
        let report = run(1, &mut strategy, Variant::Buggy);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }
}
