//! Mega-cluster scale — the parameterized load family behind experiment E10.
//!
//! No upstream ticket and no injected fault: this family exists to measure
//! (and regression-gate) the simulator's throughput and memory at datacenter
//! scale — hundreds to thousands of nodes, tens of thousands of pods — with
//! the slab/struct-of-arrays watch cache, sharded by key hash, and the
//! incremental divergence sampler all under load at once.
//!
//! The workload is a synthetic *demand curve*: a [`DemandGen`] actor writes
//! pod objects straight to the store (batched puts/deletes per tick, like a
//! burst-driven deployment pipeline), tracking a triangle wave between 20%
//! and 100% of the pod population. The cluster's single apiserver mirrors
//! the churn through its watch cache and fans batches out to [`PodWatcher`]
//! consumers. Everything is deterministic: a `(seed, params)` pair fully
//! determines the trace digest, and the shard count is observationally
//! invisible — `run` at `shards = 8` is byte-identical to `shards = 1`
//! (the scenario-level property test pins this).
//!
//! Scale points (the E10 sweep): nodes ∈ {100, 1k, 5k} with
//! `pods = clamp(20 × nodes, 10k, 100k)`. `phtool scale` runs one point.

use ph_cluster::apiclient::{ApiClient, ApiClientConfig};
use ph_cluster::apiserver::ApiServer;
use ph_cluster::informer::{Informer, InformerConfig, InformerEvent};
use ph_cluster::objects::Object;
use ph_cluster::topology::ClusterConfig;
use ph_core::harness::RunReport;
use ph_core::perturb::NoFault;
use ph_sim::{Actor, ActorId, AnyMsg, Ctx, Duration, TimerId};
use ph_store::msgs::Expect;
use ph_store::{Completion, StoreClient, StoreClientConfig};

use crate::common::Runner;

/// Scenario name used in reports and the E10 bench.
pub const NAME: &str = "mega-cluster";

/// One point of the scale family.
#[derive(Debug, Clone)]
pub struct ScaleParams {
    /// Node objects the demand generator registers up front.
    pub nodes: usize,
    /// Distinct pod slots the demand curve oscillates over.
    pub pods: usize,
    /// Apiserver watch-cache shard count (byte-invisible; a perf knob).
    pub shards: usize,
    /// Watch consumers following `pods/` through the apiserver.
    pub watchers: usize,
    /// Churn phase length (simulated time after warm-up).
    pub churn: Duration,
}

impl ScaleParams {
    /// The canonical E10 point for a node count: `pods = 20 × nodes`,
    /// clamped to the 10k–100k band, two watch consumers, 3 s of churn.
    pub fn for_nodes(nodes: usize, shards: usize) -> ScaleParams {
        ScaleParams {
            nodes,
            pods: (nodes * 20).clamp(10_000, 100_000),
            shards,
            watchers: 2,
            churn: Duration::secs(3),
        }
    }
}

/// The cluster under the scale load: 3 store nodes, one apiserver (the
/// watch cache being measured), no kubelets and no controllers — every
/// event in the run is either demand churn or view maintenance, so the
/// throughput numbers measure the data path, not scenario logic.
fn cluster_config(p: &ScaleParams) -> ClusterConfig {
    ClusterConfig {
        store_nodes: 3,
        apiservers: 1,
        nodes: vec![],
        api_shards: p.shards,
        // The window must ride out a curve swing without evicting past the
        // consumers' resume points, or relist storms dominate the run.
        api_window: (p.pods / 2).max(1024),
        api_scale_telemetry: true,
        ..ClusterConfig::default()
    }
}

const TAG_TICK: u64 = 1;

/// How often the demand generator wakes to reconcile live pods against the
/// curve, and the cap on ops it issues per wake-up.
const DEMAND_TICK: Duration = Duration::millis(5);
const DEMAND_BATCH: usize = 500;
/// Triangle-wave period, in demand ticks (256 × 5 ms ≈ 1.3 s per swing).
const CURVE_PERIOD: u64 = 256;

/// The synthetic demand driver: a store-level client that creates the node
/// population, then tracks the demand curve with batched pod puts/deletes.
/// Fire-and-forget — completions are drained and dropped; the store's
/// revision history is the ground truth the views chase.
#[derive(Debug)]
struct DemandGen {
    client: StoreClient,
    nodes: usize,
    pods: usize,
    nodes_created: usize,
    /// Liveness per pod slot (index = pod number).
    live: Vec<bool>,
    live_count: usize,
    /// Round-robin scan position over pod slots.
    cursor: usize,
    ticks: u64,
    sink: Vec<Completion>,
}

impl DemandGen {
    fn new(store: StoreClientConfig, p: &ScaleParams) -> DemandGen {
        DemandGen {
            client: StoreClient::new(store),
            nodes: p.nodes,
            pods: p.pods,
            nodes_created: 0,
            live: vec![false; p.pods],
            live_count: 0,
            cursor: 0,
            ticks: 0,
            sink: Vec::new(),
        }
    }

    /// The demand curve: a triangle wave between 20% and 100% of the pod
    /// population. Integer arithmetic only, so every platform agrees.
    fn target_live(&self, tick: u64) -> usize {
        let half = CURVE_PERIOD / 2;
        let pos = tick % CURVE_PERIOD;
        let tri = if pos < half { pos } else { CURVE_PERIOD - pos };
        let min = self.pods / 5;
        min + (self.pods - min) * tri as usize / half as usize
    }

    /// Advances `cursor` to the next pod slot with liveness `want`,
    /// scanning at most one full lap. Returns the slot index.
    fn next_slot(&mut self, want: bool) -> Option<usize> {
        for _ in 0..self.pods {
            let i = self.cursor;
            self.cursor = (self.cursor + 1) % self.pods;
            if self.live[i] == want {
                return Some(i);
            }
        }
        None
    }

    fn reconcile(&mut self, ctx: &mut Ctx) {
        let mut budget = DEMAND_BATCH;
        // Node population first (batch-capped, so large clusters register
        // over the first few ticks instead of one giant burst).
        while self.nodes_created < self.nodes && budget > 0 {
            let obj = Object::node(format!("node-{}", self.nodes_created));
            self.client.put(obj.key(), obj.encode(), ctx);
            self.nodes_created += 1;
            budget -= 1;
            ctx.counter_inc("demand.node_creates");
        }
        if self.nodes_created < self.nodes {
            return;
        }
        let target = self.target_live(self.ticks);
        while budget > 0 && self.live_count < target {
            let Some(i) = self.next_slot(false) else {
                break;
            };
            let node = format!("node-{}", i % self.nodes.max(1));
            let obj = Object::pod(format!("pod-{i}"), Some(node), None);
            self.client.put(obj.key(), obj.encode(), ctx);
            self.live[i] = true;
            self.live_count += 1;
            budget -= 1;
            ctx.counter_inc("demand.pod_creates");
        }
        while budget > 0 && self.live_count > target {
            let Some(i) = self.next_slot(true) else { break };
            self.client
                .delete(format!("pods/pod-{i}"), Expect::Any, ctx);
            self.live[i] = false;
            self.live_count -= 1;
            budget -= 1;
            ctx.counter_inc("demand.pod_deletes");
        }
        ctx.gauge_set("demand.live_pods", self.live_count as i64);
    }
}

impl Actor for DemandGen {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(DEMAND_TICK, TAG_TICK);
    }

    fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
        // Fire-and-forget: completions only matter for the client's
        // in-flight bookkeeping.
        self.client.on_message(from, &msg, ctx, &mut self.sink);
        self.sink.clear();
    }

    fn on_timer(&mut self, _t: TimerId, _tag: u64, ctx: &mut Ctx) {
        self.client.tick(ctx);
        self.reconcile(ctx);
        self.ticks += 1;
        ctx.set_timer(DEMAND_TICK, TAG_TICK);
    }
}

/// A watch consumer: mirrors `pods/` through an [`Informer`] fed by the
/// apiserver, counting delivered events. This is the fan-out load the
/// sharded cache must serve — a stripped-down kubelet with no reconcile.
#[derive(Debug)]
struct PodWatcher {
    client: ApiClient,
    informer: Informer,
    tick: Duration,
}

impl PodWatcher {
    fn new(apiservers: Vec<ActorId>) -> PodWatcher {
        PodWatcher {
            client: ApiClient::new(ApiClientConfig::new(apiservers), 0),
            informer: Informer::new(InformerConfig {
                prefix: "pods/".into(),
                fresh_lists: false,
                resync_interval: None,
                congestible: false,
            }),
            tick: Duration::millis(20),
        }
    }
}

impl Actor for PodWatcher {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.tick, TAG_TICK);
    }

    fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
        let mut completions = Vec::new();
        if !self.client.on_message(from, &msg, ctx, &mut completions) {
            return;
        }
        let mut events: Vec<InformerEvent> = Vec::new();
        for c in &completions {
            self.informer
                .on_completion(c, &mut self.client, ctx, &mut events);
        }
        if !events.is_empty() {
            ctx.counter_add("watcher.events", events.len() as u64);
            ctx.gauge_set("watcher.objects", self.informer.len() as i64);
        }
    }

    fn on_timer(&mut self, _t: TimerId, _tag: u64, ctx: &mut Ctx) {
        self.client.tick(ctx);
        self.informer.poll(&mut self.client, ctx);
        ctx.set_timer(self.tick, TAG_TICK);
    }
}

/// The deterministic memory probe a scale run hands back *beside* its
/// report: the watch cache's allocation-footprint proxy at churn end.
///
/// Deliberately out-of-band: the proxy counts backing-array capacities,
/// which depend on the shard layout (eight small slabs reserve differently
/// than one big one) — folding it into the [`RunReport`] would break the
/// byte-identical-across-shards guarantee the report carries. Everything
/// *content*-derived (object counts, window peaks) stays in the report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleProbe {
    /// Approximate watch-cache bytes (payloads + backing arrays + keys).
    pub cache_bytes: usize,
    /// Live cache objects at the same instant.
    pub cache_objects: usize,
}

/// Runs one scale point to completion. Clean by construction (no oracles,
/// no faults); the interesting outputs are `trace_events` and the
/// `apiserver.objects` / `apiserver.window_peak` gauges. The report is
/// byte-identical across shard counts.
pub fn run(seed: u64, p: &ScaleParams) -> RunReport {
    run_probed(seed, p).0
}

/// Like [`run`], but also hands back the shard-layout-dependent
/// [`ScaleProbe`] the E10 bench reports per-object memory from.
pub fn run_probed(seed: u64, p: &ScaleParams) -> (RunReport, ScaleProbe) {
    assert!(p.pods > 0, "the demand curve needs at least one pod slot");
    let cfg = cluster_config(p);
    let horizon = Duration(p.churn.0 + Duration::secs(2).0);
    let mut runner = Runner::new(NAME, seed, &cfg, Duration::secs(1), horizon);
    let api = runner.cluster.apiservers[0];
    for i in 0..p.watchers {
        let name = format!("pod-watcher-{}", i + 1);
        runner.world.spawn(&name, PodWatcher::new(vec![api]));
    }
    let store_cfg = StoreClientConfig::new(runner.cluster.store.nodes.clone());
    runner
        .world
        .spawn("demand-gen", DemandGen::new(store_cfg, p));

    let mut nf = NoFault;
    let end = Duration(Duration::secs(1).0 + p.churn.0);
    runner.drive(&mut nf, end, Duration::millis(50));

    // Peak-RSS proxy, captured at full churn (before the settle phase
    // lets the population drain).
    let probe = runner
        .world
        .actor_ref::<ApiServer>(api)
        .map(|s| ScaleProbe {
            cache_bytes: s.cache_approx_bytes(),
            cache_objects: s.cache_len(),
        })
        .unwrap_or(ScaleProbe {
            cache_bytes: 0,
            cache_objects: 0,
        });
    let report = runner.finish(&mut nf, Duration::millis(200), &mut []);
    (report, probe)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScaleParams {
        ScaleParams {
            nodes: 10,
            pods: 200,
            shards: 1,
            watchers: 2,
            churn: Duration::millis(600),
        }
    }

    #[test]
    fn small_point_runs_clean_and_produces_churn() {
        let report = run(7, &small());
        assert!(!report.failed());
        assert!(report.trace_events > 0);
        assert!(
            report.metrics.counter_total("demand.pod_creates") > 0,
            "the demand curve never created a pod"
        );
        assert!(
            report.metrics.counter_total("watcher.events") > 0,
            "no watch events reached the consumers"
        );
        let objects = report.metrics.gauge_max("apiserver.objects");
        assert!(
            objects.is_some_and(|o| o > 0),
            "scale telemetry missing: {objects:?}"
        );
    }

    #[test]
    fn canonical_params_scale_with_nodes() {
        assert_eq!(ScaleParams::for_nodes(100, 1).pods, 10_000);
        assert_eq!(ScaleParams::for_nodes(1_000, 8).pods, 20_000);
        assert_eq!(ScaleParams::for_nodes(5_000, 8).pods, 100_000);
    }

    #[test]
    fn curve_stays_inside_the_band() {
        let p = small();
        let g = DemandGen::new(StoreClientConfig::new(vec![ActorId(1)]), &p);
        for t in 0..1_000 {
            let target = g.target_live(t);
            assert!(
                target >= p.pods / 5 && target <= p.pods,
                "tick {t}: {target}"
            );
        }
        // The wave actually moves.
        assert_ne!(g.target_live(0), g.target_live(CURVE_PERIOD / 2));
    }
}
