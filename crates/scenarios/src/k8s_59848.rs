//! Kubernetes-59848 — the paper's Figure 2 walkthrough.
//!
//! "The most severe possible known vulnerability in Kubernetes safety
//! guarantees": two apiservers (api-1, api-2), two kubelets (k1, k2).
//!
//! 1. pod `p1` is created bound to node-1; k1 runs it (api-2 also learns of
//!    it — *before* the freeze);
//! 2. a rolling upgrade migrates `p1` to node-2: the global history grows
//!    by a deletion and a re-creation; k1 (fed by api-1) stops `p1`, k2
//!    starts it;
//! 3. api-2's feed from the store is frozen (network trouble): api-2 still
//!    believes `p1` runs on node-1;
//! 4. k1 restarts and — switching upstreams on restart — synchronizes with
//!    the stale api-2, re-learns its own past (`p1` is yours), and runs
//!    `p1` again: **two nodes run the same pod**.
//!
//! The guided strategy is the generic `ph-core`
//! [`TimeTravelInjector`]: freeze one upstream, crash the victim, restart
//! it against the frozen upstream, then release the backlog. The **fixed**
//! kubelet (quorum-read lists — the upstream remedy) stays safe under the
//! identical injection.
//!
//! Workload schedule (absolute sim time):
//! `1.0s` seed + create `p1@node-1` → `1.5s` freeze api-2 →
//! `1.7s` delete `p1` → `1.9s` recreate `p1@node-2` → `2.2s` crash k1 →
//! `2.4s` restart k1 → `3.5s` release backlog → `4.0s` end (+0.5s settle).

use ph_cluster::objects::Object;
use ph_cluster::topology::ClusterConfig;
use ph_core::harness::RunReport;
use ph_core::perturb::{Strategy, TimeTravelInjector};
use ph_sim::Duration;

use crate::common::{Runner, Variant};
use crate::oracles;

/// Scenario name used in reports and matrices.
pub const NAME: &str = "k8s-59848";

/// The tuned §7 time-travel injection for this scenario's schedule.
pub fn guided(_seed: u64) -> Box<dyn Strategy> {
    Box::new(TimeTravelInjector::new(
        1, // stale upstream: apiserver-2
        0, // victim: kubelet-node-1
        Duration::millis(1500),
        Duration::millis(2200),
        Duration::millis(2400),
        Some(Duration::millis(3500)),
    ))
}

/// The §4.2 pattern class this scenario's buggy variant exercises.
pub const PATTERN: ph_lint::summary::PatternClass = ph_lint::summary::PatternClass::TimeTravel;

/// What the blame slicer needs to know: the restarted kubelet-node-1 is the
/// acting component, its destructive action is starting a pod, and its view
/// flows through the two apiservers.
pub fn blame_spec() -> ph_core::provenance::BlameSpec {
    ph_core::provenance::BlameSpec {
        scenario: NAME,
        component: "kubelet-node-1",
        action_labels: &["kubelet.pod_start"],
        caches: &["apiserver-1", "apiserver-2"],
    }
}

/// The cluster this scenario spawns (shared by [`run`] and the static
/// hazard pass, so the analysis sees exactly what executes).
fn cluster_config(variant: Variant) -> ClusterConfig {
    ClusterConfig {
        store_nodes: 3,
        apiservers: 2,
        nodes: vec!["node-1".into(), "node-2".into()],
        kubelet_stagger: false, // both kubelets start on api-1; restarts move them
        kubelet_fixed: !variant.is_buggy(),
        ..ClusterConfig::default()
    }
}

/// Static access summaries of the focal components (the kubelets — the
/// actors whose relist-after-restart is the 59848 time-travel vector).
pub fn access_summaries(variant: Variant) -> Vec<ph_lint::summary::AccessSummary> {
    ph_cluster::topology::access_summaries(&cluster_config(variant))
        .into_iter()
        .filter(|s| s.component.starts_with("kubelet-"))
        .collect()
}

/// Runs one trial under `strategy`. `variant` selects the buggy or fixed
/// kubelet.
pub fn run(seed: u64, strategy: &mut dyn Strategy, variant: Variant) -> RunReport {
    run_with_trace(seed, strategy, variant).0
}

/// Like [`run`], but also returns the full trace (used by the
/// `rolling_upgrade` example to narrate the execution).
pub fn run_with_trace(
    seed: u64,
    strategy: &mut dyn Strategy,
    variant: Variant,
) -> (RunReport, ph_sim::Trace) {
    let cfg = cluster_config(variant);
    let mut runner = Runner::new(NAME, seed, &cfg, Duration::secs(1), Duration::secs(4));
    runner.seed(&Object::node("node-1"));
    runner.seed(&Object::node("node-2"));
    runner.seed(&Object::pod("p1", Some("node-1".into()), None));

    strategy.setup(&mut runner.world, &runner.targets);
    runner.drive(strategy, Duration::millis(1700), Duration::millis(10));

    // Rolling upgrade: migrate p1 from node-1 to node-2 (delete, then
    // re-create after the old instance has been stopped).
    let dl = runner.admin_deadline();
    runner.cluster.delete_key(&mut runner.world, "pods/p1", dl);
    runner.drive(strategy, Duration::millis(1900), Duration::millis(10));
    runner.seed(&Object::pod("p1", Some("node-2".into()), None));

    runner.drive(strategy, Duration::secs(4), Duration::millis(10));
    let mut oracles: Vec<Box<dyn ph_core::oracle::Oracle>> = vec![oracles::unique_pod_execution()];
    let (mut report, trace) =
        runner.finish_with_trace(strategy, Duration::millis(500), &mut oracles);
    report.attach_blame(&trace, &blame_spec());
    (report, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_core::perturb::NoFault;

    #[test]
    fn guided_injection_reproduces_the_bug() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Buggy);
        assert!(
            report.failed(),
            "expected duplicate-pod violation; got none ({} events)",
            report.trace_events
        );
        let v = &report.violations[0];
        assert!(v.details.contains("p1"), "{v}");
        assert!(
            v.details.contains("kubelet-node-1") && v.details.contains("kubelet-node-2"),
            "{v}"
        );
    }

    #[test]
    fn fixed_kubelet_survives_the_same_injection() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Fixed);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn no_fault_run_is_clean_even_when_buggy() {
        let mut strategy = NoFault;
        let report = run(1, &mut strategy, Variant::Buggy);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn reproduction_is_deterministic() {
        let d1 = {
            let mut s = guided(7);
            run(7, s.as_mut(), Variant::Buggy).trace_digest
        };
        let d2 = {
            let mut s = guided(7);
            run(7, s.as_mut(), Variant::Buggy).trace_digest
        };
        assert_eq!(d1, d2);
    }
}
