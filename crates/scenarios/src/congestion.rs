//! Load-emergent staleness — congestion on the scheduler's watch feed.
//!
//! Unlike the other scenarios, no upstream ticket and no injected fault:
//! this is the §4.2 staleness pattern arising from *offered load alone*.
//! The apiserver→scheduler link has finite bandwidth and a drop-tail
//! queue (the scenario's modeled capacity). A churn workload — rapid
//! rewrites of `node-1` — saturates that feed: watch events queue, the
//! tail drops, and the apiserver's rolling event window slides past the
//! scheduler's resume point, so recovery needs a full relist whose
//! response crawls through the same congested queue. A `node-2` deletion
//! committed mid-surge therefore reaches every component *except* the
//! scheduler; when the `web` replica set scales up after the surge, the
//! pods list heals first (it was requested first) and the scheduler binds
//! fresh pods to the ghost node it still caches.
//!
//! * **buggy** scheduler: no resync, no rebind — pods on the ghost node
//!   stay `Pending` forever (the Kubernetes-56261 outcome, reached with
//!   zero injected perturbations);
//! * **fixed** scheduler: periodic quorum relists + rebinding off ghost
//!   nodes — converges once the queue drains.
//!
//! The canonical link capacity is ample, so [`run`] under `NoFault` is
//! clean; [`guided`] throttles the feed mid-run (the traffic-surge
//! perturbation axis), and [`run_emergent`] pins the *static* capacity
//! below the churn's offered load — the zero-perturbation emergence the
//! top-level regression test checks.
//!
//! Schedule: `1.0s` seed nodes + `web` rs (replicas 0) → `1.2–2.3s`
//! churn `node-1` every 8 ms → `2.05s` delete `node-2` (+ crash its
//! kubelet) → `2.6s` scale `web` to 3 → `7.0s` end.

use ph_cluster::objects::{Body, Object, PodPhase};
use ph_cluster::topology::ClusterConfig;
use ph_core::harness::RunReport;
use ph_core::perturb::{NoFault, Strategy, TrafficSurge};
use ph_sim::Duration;

use crate::common::{Runner, Variant};
use crate::oracles;

/// Scenario name used in reports and matrices.
pub const NAME: &str = "congestion";

/// The §4.2 pattern class this scenario's buggy variant exercises.
pub const PATTERN: ph_lint::summary::PatternClass =
    ph_lint::summary::PatternClass::CongestionStaleness;

/// Canonical modeled capacity of the apiserver→scheduler feed (bytes per
/// second): ample for the churn workload, so congestion needs a surge.
pub const CAPACITY_AMPLE: u64 = 256_000;
/// A capacity the churn workload's offered load clearly exceeds.
pub const CAPACITY_SCARCE: u64 = 2_000;
/// Drop-tail queue depth of the feed link, in messages.
pub const FEED_QUEUE: usize = 4;

/// The tuned perturbation: a traffic surge squeezing the scheduler's feed
/// to [`CAPACITY_SCARCE`] across the churn window — the concrete form of
/// the model checker's `traffic-surge` letter. It reconfigures link
/// capacity only; every lost or late message is the queue's own doing.
pub fn guided(_seed: u64) -> Box<dyn Strategy> {
    // Component 2 is the scheduler (targets list kubelets first): the
    // surge competes with its feed alone, so the controllers that *drive*
    // the workload keep seeing the world on time.
    Box::new(
        TrafficSurge::new(
            0,
            CAPACITY_SCARCE,
            FEED_QUEUE,
            Duration::millis(1100),
            Some(Duration::millis(3600)),
        )
        .focused(2),
    )
}

/// Runs one trial under `strategy`.
pub fn run(seed: u64, strategy: &mut dyn Strategy, variant: Variant) -> RunReport {
    run_with_trace(seed, strategy, variant).0
}

/// Like [`run`], but also returns the full trace.
pub fn run_with_trace(
    seed: u64,
    strategy: &mut dyn Strategy,
    variant: Variant,
) -> (RunReport, ph_sim::Trace) {
    run_shaped(seed, strategy, variant, CAPACITY_AMPLE)
}

/// A zero-perturbation trial with the feed's *static* capacity set below
/// (`above_capacity`) or comfortably above the churn's offered load — the
/// emergence regression: staleness must appear past capacity and must not
/// appear under it, with no strategy in play at all.
pub fn run_emergent(
    seed: u64,
    variant: Variant,
    above_capacity: bool,
) -> (RunReport, ph_sim::Trace) {
    let capacity = if above_capacity {
        CAPACITY_SCARCE
    } else {
        CAPACITY_AMPLE
    };
    run_at_capacity(seed, variant, capacity)
}

/// A zero-perturbation trial at an arbitrary static feed capacity — the
/// sweep axis of the E8 lag-vs-offered-load experiment
/// (`cargo bench -p ph-bench --bench e8_congestion`).
pub fn run_at_capacity(seed: u64, variant: Variant, capacity: u64) -> (RunReport, ph_sim::Trace) {
    let mut nf = NoFault;
    run_shaped(seed, &mut nf, variant, capacity)
}

/// What the blame slicer needs to know: the scheduler binds pods on a
/// view fed through the single apiserver.
pub fn blame_spec() -> ph_core::provenance::BlameSpec {
    ph_core::provenance::BlameSpec {
        scenario: NAME,
        component: "scheduler",
        action_labels: &["scheduler.bind"],
        caches: &["apiserver-1"],
    }
}

/// The cluster this scenario spawns: one apiserver (the scheduler's
/// pinned upstream, whose fan-out link is the congestible feed), two
/// nodes, the scheduler, and a replica-set controller.
fn cluster_config(variant: Variant) -> ClusterConfig {
    ClusterConfig {
        store_nodes: 3,
        apiservers: 1,
        nodes: vec!["node-1".into(), "node-2".into()],
        scheduler: Some(!variant.is_buggy()),
        scheduler_congestible: true,
        rs_controller: Some(false),
        ..ClusterConfig::default()
    }
}

/// Static access summaries of the focal component (the scheduler, whose
/// congestible, never-resynced views are the staleness vector).
pub fn access_summaries(variant: Variant) -> Vec<ph_lint::summary::AccessSummary> {
    ph_cluster::topology::access_summaries(&cluster_config(variant))
        .into_iter()
        .filter(|s| s.component == "scheduler")
        .collect()
}

/// The churn object: a long-running pod on `node-1`, rewritten every few
/// milliseconds with a padded `owner` field so each watch event carries
/// real bytes onto the finite-bandwidth feed. Churning *pods* (and only
/// pods) splits the scheduler's two watches onto different recovery paths:
/// the chattering pods stream reveals its gaps as soon as one event
/// squeezes through the full queue (fast break → relist), while the silent
/// nodes stream — whose progress beacons all tail-drop — is only caught by
/// the 1.2 s watch timeout. That asymmetry is the ghost window: the pods
/// view heals while the nodes view still holds the deleted node. The
/// padding also keeps the pod out of the `web` replica set's count.
fn chaff() -> Object {
    let mut obj = Object::new(
        "warm",
        Body::Pod {
            node: Some("node-1".into()),
            phase: PodPhase::Running,
            pvc: None,
        },
    );
    obj.meta.owner = Some("x".repeat(200));
    obj
}

fn run_shaped(
    seed: u64,
    strategy: &mut dyn Strategy,
    variant: Variant,
    capacity: u64,
) -> (RunReport, ph_sim::Trace) {
    let cfg = cluster_config(variant);
    let mut runner = Runner::new(NAME, seed, &cfg, Duration::secs(1), Duration::secs(7));

    // The modeled network: the scheduler's watch feed has finite capacity
    // and a drop-tail queue. This is topology, not perturbation — it is in
    // place for every variant and every strategy, NoFault included.
    let api = runner.cluster.apiservers[0];
    let sched = runner
        .cluster
        .scheduler
        .expect("scenario spawns a scheduler");
    let base = runner.world.net().link(api, sched);
    runner.world.net_mut().set_link(
        api,
        sched,
        ph_sim::LinkConfig {
            bandwidth: capacity,
            queue: FEED_QUEUE,
            ..base
        },
    );

    // node-1 carries a padded owner blob: the nodes *list* that finally
    // heals the scheduler's ghost view has to move these bytes through
    // whatever bandwidth the feed has left, so past capacity the heal
    // lands measurably after the pods view (and the binds) — the far edge
    // of the ghost window is itself a queueing artifact.
    let mut node1 = Object::node("node-1");
    node1.meta.owner = Some("y".repeat(800));
    runner.seed(&node1);
    runner.seed(&Object::node("node-2"));
    runner.seed(&chaff());
    runner.seed(&Object::new("web", Body::ReplicaSet { replicas: 0 }));

    strategy.setup(&mut runner.world, &runner.targets);
    runner.drive(strategy, Duration::millis(1200), Duration::millis(10));

    // Churn phase: rewrite node-1 every 8 ms. At ample capacity this is
    // noise; past capacity it fills the feed queue, tail-drops the watch
    // stream, and pushes the apiserver's event window past the
    // scheduler's resume point. Mid-churn, node-2 dies for real.
    let churn = chaff();
    let step = Duration::millis(8);
    let mut t = Duration::millis(1200);
    let mut deleted = false;
    while t < Duration::millis(2304) {
        runner.seed(&churn);
        if !deleted && t >= Duration::millis(2048) {
            let k2 = runner.cluster.kubelets[1];
            runner.world.crash(k2);
            let dl = runner.admin_deadline();
            runner
                .cluster
                .delete_key(&mut runner.world, "nodes/node-2", dl);
            deleted = true;
        }
        t = Duration(t.0 + step.0);
        runner.drive(strategy, t, step);
    }

    runner.drive(strategy, Duration::millis(2600), Duration::millis(10));
    // Scale up: the scheduler must place 3 new pods.
    runner.seed(&Object::new("web", Body::ReplicaSet { replicas: 3 }));

    runner.drive(strategy, Duration::millis(6500), Duration::millis(10));
    let cluster = runner.cluster.clone();
    let mut oracles: Vec<Box<dyn ph_core::oracle::Oracle>> =
        vec![oracles::all_pods_running(cluster)];
    let (mut report, trace) =
        runner.finish_with_trace(strategy, Duration::millis(500), &mut oracles);
    report.attach_blame(&trace, &blame_spec());
    (report, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surge_starves_the_buggy_scheduler_into_a_ghost_bind() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Buggy);
        assert!(report.failed(), "expected pods wedged on the ghost node");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.details.contains("node-2") || v.details.contains("stuck")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn fixed_scheduler_recovers_from_the_same_surge() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Fixed);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn no_fault_run_is_clean_even_when_buggy() {
        let mut strategy = NoFault;
        let report = run(1, &mut strategy, Variant::Buggy);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }
}
