//! cassandra-operator-400 — "Cassandra node can be decommissioned wrongly
//! which blocks scale down" (§7).
//!
//! The operator's decommission target comes from its cached pod list. A
//! restarted operator that re-synchronizes against a stale apiserver picks
//! a pod that is *already gone*; the mark-delete comes back NotFound, and
//! the shipped operator wedges on that phantom target forever — the
//! datacenter never reaches its desired size (a time-traveling view turned
//! into a liveness failure).
//!
//! Guided injection: the generic time-travel recipe — freeze apiserver-2's
//! feed just after the scale-down intent commits (so api-2 knows
//! `desired = 1` but still believes all three pods are alive), crash the
//! operator after it has decommissioned `dc1-2`, restart it (ByInstance: it
//! reconnects to the frozen api-2), and release the backlog later. The
//! restarted operator re-targets `dc1-2` → NotFound:
//!
//! * **buggy** (`handle_decommission_notfound = false`): wedges on `dc1-2`;
//!   even after api-2 catches up, the stuck target blocks `dc1-1`'s
//!   decommission — scale-down never completes;
//! * **fixed**: skips the phantom, re-derives the target after the view
//!   heals, converges.
//!
//! Schedule: `1.0s` seed + dc1 desired 3 → converge → `3.0s` desired 1 →
//! freeze api-2 at `3.05s` → crash operator `3.3s`, restart `3.6s` →
//! release backlog `5.0s` → `8.0s` end.

use ph_cluster::objects::{Body, Object};
use ph_cluster::operator::OperatorFlags;
use ph_cluster::topology::ClusterConfig;
use ph_core::harness::RunReport;
use ph_core::perturb::{Strategy, TimeTravelInjector};
use ph_sim::Duration;

use crate::common::{Runner, Variant};
use crate::oracles;

/// Scenario name used in reports and matrices.
pub const NAME: &str = "cass-op-400";

/// Defect switches for this scenario's buggy variant: only bug 400.
fn flags(variant: Variant) -> OperatorFlags {
    if variant.is_buggy() {
        OperatorFlags {
            pvc_requires_observed_terminating: false,
            handle_decommission_notfound: false,
            fresh_confirm_orphan: true,
        }
    } else {
        OperatorFlags::fixed()
    }
}

/// The tuned §7 time-travel injection. Components are kubelet-1, kubelet-2,
/// scheduler, operator → the operator is component 3; apiserver-2 is
/// cache 1.
pub fn guided(_seed: u64) -> Box<dyn Strategy> {
    Box::new(TimeTravelInjector::new(
        1,
        3,
        Duration::millis(3050),
        Duration::millis(3300),
        Duration::millis(3600),
        Some(Duration::millis(5000)),
    ))
}

/// The §4.2 pattern class this scenario's buggy variant exercises.
pub const PATTERN: ph_lint::summary::PatternClass = ph_lint::summary::PatternClass::Staleness;

/// What the blame slicer needs to know: the operator's decommission mark
/// (`operator.decommission`) is the destructive action taken on a stale
/// datacenter view.
pub fn blame_spec() -> ph_core::provenance::BlameSpec {
    ph_core::provenance::BlameSpec {
        scenario: NAME,
        component: "cassandra-operator",
        action_labels: &["operator.decommission"],
        caches: &["apiserver-1", "apiserver-2"],
    }
}

/// The cluster this scenario spawns (shared by [`run`] and the static
/// hazard pass, so the analysis sees exactly what executes).
fn cluster_config(variant: Variant) -> ClusterConfig {
    ClusterConfig {
        store_nodes: 3,
        apiservers: 2,
        nodes: vec!["node-1".into(), "node-2".into()],
        scheduler: Some(true),
        operator: Some(flags(variant)),
        ..ClusterConfig::default()
    }
}

/// Static access summaries of the focal component (the operator, whose
/// unfenced decommission mark is the bug-400 staleness vector).
pub fn access_summaries(variant: Variant) -> Vec<ph_lint::summary::AccessSummary> {
    ph_cluster::topology::access_summaries(&cluster_config(variant))
        .into_iter()
        .filter(|s| s.component == "cassandra-operator")
        .collect()
}

/// Runs one trial under `strategy`.
pub fn run(seed: u64, strategy: &mut dyn Strategy, variant: Variant) -> RunReport {
    run_with_trace(seed, strategy, variant).0
}

/// Like [`run`], but also returns the full trace (consumed by the blame
/// slicer and the causality-guided auto-explorer).
pub fn run_with_trace(
    seed: u64,
    strategy: &mut dyn Strategy,
    variant: Variant,
) -> (RunReport, ph_sim::Trace) {
    let cfg = cluster_config(variant);
    let mut runner = Runner::new(NAME, seed, &cfg, Duration::secs(1), Duration::secs(8));
    runner.seed(&Object::node("node-1"));
    runner.seed(&Object::node("node-2"));
    runner.seed(&Object::new(
        "dc1",
        Body::CassandraDatacenter { desired: 3 },
    ));

    strategy.setup(&mut runner.world, &runner.targets);
    runner.drive(strategy, Duration::secs(3), Duration::millis(10));

    // Scale down by two: dc1-2 then dc1-1 must be decommissioned, one at a
    // time.
    runner.seed(&Object::new(
        "dc1",
        Body::CassandraDatacenter { desired: 1 },
    ));

    runner.drive(strategy, Duration::secs(8), Duration::millis(10));
    let cluster = runner.cluster.clone();
    let mut oracles: Vec<Box<dyn ph_core::oracle::Oracle>> = vec![
        oracles::cassdc_converged(cluster.clone(), "dc1", 1),
        oracles::no_wrongful_pvc_delete(cluster),
    ];
    let (mut report, trace) =
        runner.finish_with_trace(strategy, Duration::millis(500), &mut oracles);
    report.attach_blame(&trace, &blame_spec());
    (report, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_core::perturb::NoFault;

    #[test]
    fn stale_decommission_target_blocks_scale_down() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Buggy);
        assert!(report.failed(), "expected the scale-down to wedge");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.details.contains("scale blocked")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn fixed_operator_converges_despite_the_same_injection() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Fixed);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn no_fault_run_is_clean_even_when_buggy() {
        let mut strategy = NoFault;
        let report = run(1, &mut strategy, Variant::Buggy);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }
}
