//! # ph-scenarios — every bug the paper discusses, as a runnable scenario
//!
//! Each module encodes one real-world partial-history bug on the
//! `ph-cluster` stack, with a fixed deterministic workload schedule, the
//! oracles that detect it, the *guided* perturbation (the paper's §7 tool)
//! that triggers it, and the fixed-variant regression check:
//!
//! | Module | Real bug | Pattern (§4.2) |
//! |---|---|---|
//! | [`k8s_59848`] | Kubernetes-59848 | time traveling |
//! | [`k8s_56261`] | Kubernetes-56261 | missed event / staleness |
//! | [`volume_17`] | controller bug \[17\] | observability gap |
//! | [`cass_398`] | cassandra-operator-398 | observability gap across restart |
//! | [`cass_400`] | cassandra-operator-400 | stale view blocks scale-down |
//! | [`cass_402`] | cassandra-operator-402 | stale view deletes live data |
//! | [`hbase_3136`] | HBASE-3136 / 3137 | stale follower CAS |
//! | [`node_fencing`] | the class behind \[5\] (pod safety vs HA) | unobservable liveness |
//! | [`congestion`] | watch-feed saturation (no single ticket) | load-emergent staleness |
//!
//! [`common`] holds the shared runner; [`strategies`] holds the
//! payload-aware injectors scenarios tune (they extend the generic
//! `ph-core` strategies with cluster-level knowledge); [`oracles`] holds
//! the ground-truth safety/liveness checks.
//!
//! Every scenario exposes:
//! * `run(seed, &mut dyn Strategy, Variant) -> RunReport` — one trial;
//! * `guided(seed) -> Box<dyn Strategy>` — the tuned §7 injector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cass_398;
pub mod cass_400;
pub mod cass_402;
pub mod common;
pub mod congestion;
pub mod hbase_3136;
pub mod k8s_56261;
pub mod k8s_59848;
pub mod mega_cluster;
pub mod node_fencing;
pub mod oracles;
pub mod strategies;
pub mod volume_17;
pub mod witness_bridge;

pub use common::{Runner, Variant};

use ph_core::crosscheck::{CrossCheckRow, CrossCheckTable};
use ph_core::harness::RunReport;
use ph_core::perturb::Strategy;
use ph_lint::summary::{AccessSummary, PatternClass};

/// One scenario's hooks for the static/dynamic cross-check: its documented
/// §4.2 class, its access summaries, and the dynamic run/guided pair.
pub struct StaticEntry {
    /// Scenario name (the module's `NAME`).
    pub name: &'static str,
    /// The §4.2 class the buggy variant exercises (the module's `PATTERN`).
    pub pattern: PatternClass,
    /// Focal components' access summaries under a variant.
    pub summaries: fn(Variant) -> Vec<AccessSummary>,
    /// One dynamic trial.
    pub run: fn(u64, &mut dyn Strategy, Variant) -> RunReport,
    /// One dynamic trial that also hands back the full trace (for the blame
    /// slicer and trace exports).
    pub run_traced: fn(u64, &mut dyn Strategy, Variant) -> (RunReport, ph_sim::Trace),
    /// What the blame slicer needs to know about this scenario.
    pub blame: fn() -> ph_core::provenance::BlameSpec,
    /// The tuned guided injector.
    pub guided: fn(u64) -> Box<dyn Strategy>,
}

/// Every scenario's static-analysis entry, in canonical order.
pub fn scenario_statics() -> Vec<StaticEntry> {
    vec![
        StaticEntry {
            name: k8s_59848::NAME,
            pattern: k8s_59848::PATTERN,
            summaries: k8s_59848::access_summaries,
            run: k8s_59848::run,
            run_traced: k8s_59848::run_with_trace,
            blame: k8s_59848::blame_spec,
            guided: k8s_59848::guided,
        },
        StaticEntry {
            name: k8s_56261::NAME,
            pattern: k8s_56261::PATTERN,
            summaries: k8s_56261::access_summaries,
            run: k8s_56261::run,
            run_traced: k8s_56261::run_with_trace,
            blame: k8s_56261::blame_spec,
            guided: k8s_56261::guided,
        },
        StaticEntry {
            name: volume_17::NAME,
            pattern: volume_17::PATTERN,
            summaries: volume_17::access_summaries,
            run: volume_17::run,
            run_traced: volume_17::run_with_trace,
            blame: volume_17::blame_spec,
            guided: volume_17::guided,
        },
        StaticEntry {
            name: cass_398::NAME,
            pattern: cass_398::PATTERN,
            summaries: cass_398::access_summaries,
            run: cass_398::run,
            run_traced: cass_398::run_with_trace,
            blame: cass_398::blame_spec,
            guided: cass_398::guided,
        },
        StaticEntry {
            name: cass_400::NAME,
            pattern: cass_400::PATTERN,
            summaries: cass_400::access_summaries,
            run: cass_400::run,
            run_traced: cass_400::run_with_trace,
            blame: cass_400::blame_spec,
            guided: cass_400::guided,
        },
        StaticEntry {
            name: cass_402::NAME,
            pattern: cass_402::PATTERN,
            summaries: cass_402::access_summaries,
            run: cass_402::run,
            run_traced: cass_402::run_with_trace,
            blame: cass_402::blame_spec,
            guided: cass_402::guided,
        },
        StaticEntry {
            name: hbase_3136::NAME,
            pattern: hbase_3136::PATTERN,
            summaries: hbase_3136::access_summaries,
            run: hbase_3136::run,
            run_traced: hbase_3136::run_with_trace,
            blame: hbase_3136::blame_spec,
            guided: hbase_3136::guided,
        },
        StaticEntry {
            name: node_fencing::NAME,
            pattern: node_fencing::PATTERN,
            summaries: node_fencing::access_summaries,
            run: node_fencing::run,
            run_traced: node_fencing::run_with_trace,
            blame: node_fencing::blame_spec,
            guided: node_fencing::guided,
        },
        StaticEntry {
            name: congestion::NAME,
            pattern: congestion::PATTERN,
            summaries: congestion::access_summaries,
            run: congestion::run,
            run_traced: congestion::run_with_trace,
            blame: congestion::blame_spec,
            guided: congestion::guided,
        },
    ]
}

/// Runs the static hazard pass over every scenario, with the bounded
/// model checker ([`ph_lint::modelcheck`]) as the verdict source: each
/// buggy variant's summaries are explored for minimal hazard witnesses,
/// each fixed variant's must prove epoch-safe. `phtool lint`/`check`
/// render the result; the agreement test additionally fills in the
/// dynamic columns.
pub fn static_crosscheck() -> CrossCheckTable {
    let rows = scenario_statics()
        .into_iter()
        .map(|e| {
            let buggy = (e.summaries)(Variant::Buggy);
            let fixed = (e.summaries)(Variant::Fixed);
            let buggy_reports = ph_lint::modelcheck::model_check_all(&buggy);
            let fixed_reports = ph_lint::modelcheck::model_check_all(&fixed);
            CrossCheckRow {
                scenario: e.name.to_string(),
                expected: e.pattern,
                buggy_hazards: buggy_reports.iter().flat_map(|r| r.hazards()).collect(),
                fixed_hazards: fixed_reports.iter().flat_map(|r| r.hazards()).collect(),
                dynamic_buggy_detected: None,
                dynamic_fixed_clean: None,
                static_components: buggy.iter().map(|s| s.component.clone()).collect(),
                missing_static: Vec::new(),
                buggy_witnesses: buggy_reports
                    .iter()
                    .flat_map(|r| r.witnesses().into_iter().map(|w| w.render()))
                    .collect(),
            }
        })
        .collect();
    CrossCheckTable { rows }
}
