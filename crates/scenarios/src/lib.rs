//! # ph-scenarios — every bug the paper discusses, as a runnable scenario
//!
//! Each module encodes one real-world partial-history bug on the
//! `ph-cluster` stack, with a fixed deterministic workload schedule, the
//! oracles that detect it, the *guided* perturbation (the paper's §7 tool)
//! that triggers it, and the fixed-variant regression check:
//!
//! | Module | Real bug | Pattern (§4.2) |
//! |---|---|---|
//! | [`k8s_59848`] | Kubernetes-59848 | time traveling |
//! | [`k8s_56261`] | Kubernetes-56261 | missed event / staleness |
//! | [`volume_17`] | controller bug \[17\] | observability gap |
//! | [`cass_398`] | cassandra-operator-398 | observability gap across restart |
//! | [`cass_400`] | cassandra-operator-400 | stale view blocks scale-down |
//! | [`cass_402`] | cassandra-operator-402 | stale view deletes live data |
//! | [`hbase_3136`] | HBASE-3136 / 3137 | stale follower CAS |
//! | [`node_fencing`] | the class behind \[5\] (pod safety vs HA) | unobservable liveness |
//!
//! [`common`] holds the shared runner; [`strategies`] holds the
//! payload-aware injectors scenarios tune (they extend the generic
//! `ph-core` strategies with cluster-level knowledge); [`oracles`] holds
//! the ground-truth safety/liveness checks.
//!
//! Every scenario exposes:
//! * `run(seed, &mut dyn Strategy, Variant) -> RunReport` — one trial;
//! * `guided(seed) -> Box<dyn Strategy>` — the tuned §7 injector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cass_398;
pub mod cass_400;
pub mod cass_402;
pub mod common;
pub mod hbase_3136;
pub mod k8s_56261;
pub mod k8s_59848;
pub mod node_fencing;
pub mod oracles;
pub mod strategies;
pub mod volume_17;

pub use common::{Runner, Variant};
