//! The shared scenario runner.
//!
//! A scenario builds a cluster, derives the [`Targets`] map the strategies
//! act on, runs a fixed workload schedule while ticking the strategy, and
//! assembles a [`RunReport`] from its oracles. Driving is quantized
//! ([`Runner::drive`]) so trace-triggered strategies act promptly.

use ph_cluster::topology::{ClusterConfig, ClusterHandle};
use ph_core::harness::RunReport;
use ph_core::oracle::{check_all, Oracle};
use ph_core::perturb::{Strategy, Targets};
use ph_sim::{Duration, SimTime, World, WorldConfig};

/// Which implementation variant a trial runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The defective (as-shipped) component.
    Buggy,
    /// The repaired component (regression check: oracles must stay green
    /// even under the guided injection).
    Fixed,
}

impl Variant {
    /// `true` for the buggy variant.
    pub fn is_buggy(self) -> bool {
        self == Variant::Buggy
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::Buggy => f.write_str("buggy"),
            Variant::Fixed => f.write_str("fixed"),
        }
    }
}

/// One scenario execution in progress.
pub struct Runner {
    /// The simulated world.
    pub world: World,
    /// The cluster under test.
    pub cluster: ClusterHandle,
    /// The strategy-facing target map.
    pub targets: Targets,
    /// Scenario name (for the report).
    pub name: String,
    /// Root seed.
    pub seed: u64,
}

impl Runner {
    /// Builds a cluster and waits for it to be ready, then advances the
    /// clock to exactly `t0` so workload schedules are seed-independent.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is not ready by `t0` (raise `t0` if you build
    /// bigger clusters).
    pub fn new(name: &str, seed: u64, cfg: &ClusterConfig, t0: Duration, horizon: Duration) -> Runner {
        let mut world = World::new(WorldConfig::default(), seed);
        let cluster = ph_cluster::topology::spawn_cluster(&mut world, cfg);
        let t0 = SimTime(t0.as_nanos());
        assert!(
            cluster.wait_ready(&mut world, t0),
            "cluster not ready by {t0} (seed {seed})"
        );
        world.run_until(t0);
        let targets = targets_for(&cluster, horizon);
        Runner {
            world,
            cluster,
            targets,
            name: name.to_string(),
            seed,
        }
    }

    /// The deadline used for admin (seeding) operations.
    pub fn admin_deadline(&self) -> SimTime {
        SimTime(self.world.now().0 + Duration::secs(10).as_nanos())
    }

    /// Seeds one object through the admin client (panics on timeout —
    /// seeding precedes fault injection and must succeed).
    pub fn seed(&mut self, obj: &ph_cluster::objects::Object) {
        let dl = self.admin_deadline();
        self.cluster
            .create_object(&mut self.world, obj, dl)
            .unwrap_or_else(|| panic!("seeding {} timed out", obj.key()));
    }

    /// Runs the world up to absolute time `until`, ticking `strategy`
    /// every `quantum` so trace-triggered strategies stay responsive.
    pub fn drive(&mut self, strategy: &mut dyn Strategy, until: Duration, quantum: Duration) {
        let until = SimTime(until.as_nanos());
        while self.world.now() < until {
            let step = SimTime((self.world.now() + quantum).0.min(until.0));
            self.world.run_until(step);
            strategy.tick(&mut self.world, &self.targets);
        }
    }

    /// Finishes the run: tears the strategy down, lets the system settle
    /// for `settle`, evaluates the oracles, and produces the report.
    pub fn finish(
        self,
        strategy: &mut dyn Strategy,
        settle: Duration,
        oracles: &mut [Box<dyn Oracle>],
    ) -> RunReport {
        self.finish_with_trace(strategy, settle, oracles).0
    }

    /// Like [`Runner::finish`], but also hands back the full run trace
    /// (for narration, causality analysis, or archiving).
    pub fn finish_with_trace(
        mut self,
        strategy: &mut dyn Strategy,
        settle: Duration,
        oracles: &mut [Box<dyn Oracle>],
    ) -> (RunReport, ph_sim::Trace) {
        strategy.teardown(&mut self.world);
        self.world.run_for(settle);
        let violations = check_all(oracles, &self.world);
        let report = RunReport {
            scenario: self.name,
            strategy: strategy.name(),
            seed: self.seed,
            violations,
            sim_time: self.world.now(),
            trace_events: self.world.trace().len(),
            trace_digest: self.world.trace().digest(),
        };
        (report, self.world.trace().clone())
    }
}

/// Derives the strategy-facing [`Targets`] for a cluster:
/// * `caches` — the apiservers (index-stable: `caches[i]` = apiserver i+1);
/// * `components` — kubelets (in node order), then scheduler, volume
///   controller, replica-set controller, operator (those configured);
/// * `notify_kinds` — both view-update message layers: the store→apiserver
///   feed (`WatchNotify`) and the apiserver→component feed (`ApiWatchEvent`).
pub fn targets_for(cluster: &ClusterHandle, horizon: Duration) -> Targets {
    let mut components = cluster.kubelets.clone();
    components.extend(cluster.scheduler);
    components.extend(cluster.volume_controller);
    components.extend(cluster.rs_controller);
    components.extend(cluster.operator);
    components.extend(cluster.node_lifecycle);
    Targets {
        store_nodes: cluster.store.nodes.clone(),
        caches: cluster.apiservers.clone(),
        components,
        notify_kinds: vec!["WatchNotify".into(), "ApiWatchEvent".into()],
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_core::perturb::NoFault;

    #[test]
    fn runner_builds_and_reports() {
        let cfg = ClusterConfig::default();
        let mut runner = Runner::new("smoke", 3, &cfg, Duration::secs(1), Duration::secs(3));
        assert_eq!(runner.world.now(), SimTime(Duration::secs(1).as_nanos()));
        runner.seed(&ph_cluster::objects::Object::node("node-1"));
        let mut strategy = NoFault;
        runner.drive(&mut strategy, Duration::secs(2), Duration::millis(20));
        let report = runner.finish(&mut strategy, Duration::millis(100), &mut []);
        assert_eq!(report.scenario, "smoke");
        assert!(!report.failed());
        assert!(report.trace_events > 0);
    }

    #[test]
    fn targets_cover_all_components() {
        let cfg = ClusterConfig {
            scheduler: Some(false),
            rs_controller: Some(false),
            ..ClusterConfig::default()
        };
        let runner = Runner::new("t", 4, &cfg, Duration::secs(1), Duration::secs(2));
        assert_eq!(runner.targets.caches.len(), 2);
        // 2 kubelets + scheduler + rs controller.
        assert_eq!(runner.targets.components.len(), 4);
        assert_eq!(runner.targets.store_nodes.len(), 3);
    }
}
