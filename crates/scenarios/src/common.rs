//! The shared scenario runner.
//!
//! A scenario builds a cluster, derives the [`Targets`] map the strategies
//! act on, runs a fixed workload schedule while ticking the strategy, and
//! assembles a [`RunReport`] from its oracles. Driving is quantized
//! ([`Runner::drive`]) so trace-triggered strategies act promptly.

use ph_cluster::apiserver::ApiServer;
use ph_cluster::controllers::{NodeLifecycleController, ReplicaSetController, VolumeController};
use ph_cluster::kubelet::Kubelet;
use ph_cluster::operator::CassandraOperator;
use ph_cluster::scheduler::Scheduler;
use ph_cluster::topology::{ClusterConfig, ClusterHandle};
use ph_core::divergence::{DivergenceSummary, LagSampler, ViewSlot};
use ph_core::harness::RunReport;
use ph_core::oracle::{check_all, Oracle};
use ph_core::perturb::{Strategy, Targets};
use ph_sim::{ActorId, Duration, Name, SimTime, Sym, World, WorldConfig};
use ph_store::{Revision, StoreNode};

/// Which implementation variant a trial runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The defective (as-shipped) component.
    Buggy,
    /// The repaired component (regression check: oracles must stay green
    /// even under the guided injection).
    Fixed,
}

impl Variant {
    /// `true` for the buggy variant.
    pub fn is_buggy(self) -> bool {
        self == Variant::Buggy
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::Buggy => f.write_str("buggy"),
            Variant::Fixed => f.write_str("fixed"),
        }
    }
}

/// One scenario execution in progress.
pub struct Runner {
    /// The simulated world.
    pub world: World,
    /// The cluster under test.
    pub cluster: ClusterHandle,
    /// The strategy-facing target map.
    pub targets: Targets,
    /// Scenario name (for the report).
    pub name: String,
    /// Root seed.
    pub seed: u64,
    /// Sampled per-view lag, folded into the report by
    /// [`Runner::finish_with_trace`].
    pub divergence: DivergenceSummary,
    /// Reused buffer for the full (legacy) sampling path (capacity persists
    /// across quanta so sampling stays allocation-free in steady state).
    lag_scratch: Vec<(Name, u64)>,
    /// Per-view `(metrics component sym, divergence slot)` pairs, resolved
    /// lazily the first time a view is sampled. Indexed by the dense view
    /// walk order (apiservers, kubelets, then the optional singletons),
    /// which is fixed for the lifetime of a run.
    view_meta: Vec<Option<(Sym, ViewSlot)>>,
    /// Dirty-set tracker: remembers each view's last sampled lag so the
    /// `view_lag.last` gauge is only rewritten when the value moved.
    sampler: LagSampler,
    /// Interned metric-name syms for the two per-view lag series.
    hist_sym: Sym,
    gauge_sym: Sym,
    /// `PH_DIVERGENCE_FULL=1` routes sampling through the legacy
    /// string-keyed full diff (used by the regression test that pins the
    /// incremental path to it).
    full_sampling: bool,
}

impl Runner {
    /// Builds a cluster and waits for it to be ready, then advances the
    /// clock to exactly `t0` so workload schedules are seed-independent.
    ///
    /// # Panics
    ///
    /// Panics if the cluster is not ready by `t0` (raise `t0` if you build
    /// bigger clusters).
    pub fn new(
        name: &str,
        seed: u64,
        cfg: &ClusterConfig,
        t0: Duration,
        horizon: Duration,
    ) -> Runner {
        let mut world = World::new(WorldConfig::default(), seed);
        let cluster = ph_cluster::topology::spawn_cluster(&mut world, cfg);
        let t0 = SimTime(t0.as_nanos());
        assert!(
            cluster.wait_ready(&mut world, t0),
            "cluster not ready by {t0} (seed {seed})"
        );
        world.run_until(t0);
        let targets = targets_for(&cluster, horizon);
        // Pre-interning metric names is byte-invisible in exports (reports
        // sort resolved keys), and keeps the per-sample hot path sym-only.
        let metrics = world.metrics_mut();
        let hist_sym = metrics.sym("view_lag.revisions");
        let gauge_sym = metrics.sym("view_lag.last");
        let full_sampling = std::env::var_os("PH_DIVERGENCE_FULL").is_some_and(|v| v != "0");
        Runner {
            world,
            cluster,
            targets,
            name: name.to_string(),
            seed,
            divergence: DivergenceSummary::new(),
            lag_scratch: Vec::new(),
            view_meta: Vec::new(),
            sampler: LagSampler::default(),
            hist_sym,
            gauge_sym,
            full_sampling,
        }
    }

    /// The deadline used for admin (seeding) operations.
    pub fn admin_deadline(&self) -> SimTime {
        SimTime(self.world.now().0 + Duration::secs(10).as_nanos())
    }

    /// Seeds one object through the admin client (panics on timeout —
    /// seeding precedes fault injection and must succeed).
    pub fn seed(&mut self, obj: &ph_cluster::objects::Object) {
        let dl = self.admin_deadline();
        self.cluster
            .create_object(&mut self.world, obj, dl)
            .unwrap_or_else(|| panic!("seeding {} timed out", obj.key()));
    }

    /// Runs the world up to absolute time `until`, ticking `strategy`
    /// every `quantum` so trace-triggered strategies stay responsive, and
    /// sampling per-view lag once per quantum.
    pub fn drive(&mut self, strategy: &mut dyn Strategy, until: Duration, quantum: Duration) {
        let until = SimTime(until.as_nanos());
        while self.world.now() < until {
            let step = SimTime((self.world.now() + quantum).0.min(until.0));
            self.world.run_until(step);
            self.sample_divergence();
            strategy.tick(&mut self.world, &self.targets);
        }
    }

    /// Takes one divergence sample: for every view in the cluster (each
    /// apiserver cache and each component's informer frontier), record how
    /// many revisions it is behind the ground truth `|H| − |H′|`. Samples
    /// land both in [`Runner::divergence`] and in the world's metrics (a
    /// `view_lag.revisions` histogram and `view_lag.last` gauge per view),
    /// so they surface in trace/metric exports too. Skipped while the store
    /// has no leader (the truth frontier is unknowable then).
    ///
    /// The default path is incremental: per view it folds the lag into a
    /// pre-resolved [`ViewSlot`] and sym pair (O(1), no string hashing),
    /// observes the histogram, and rewrites the gauge only when the lag
    /// actually moved since the last quantum (gauges are last-value, so
    /// skipping unchanged writes is report-invisible). Cost per quantum is
    /// therefore O(views) with a constant far below the legacy string-keyed
    /// full diff, which `PH_DIVERGENCE_FULL=1` still selects for the
    /// equivalence regression test.
    pub fn sample_divergence(&mut self) {
        let Some(truth) = self
            .cluster
            .store
            .leader(&self.world)
            .and_then(|n| self.world.actor_ref::<StoreNode>(n))
            .map(|s| s.mvcc().revision())
        else {
            return;
        };
        if self.full_sampling {
            self.sample_divergence_full(truth);
            return;
        }
        // The dense view index must be stable across quanta, so it advances
        // for every *configured* view — crashed actors (actor_ref None)
        // skip the record but still consume their index.
        let mut idx = 0usize;
        for i in 0..self.cluster.apiservers.len() {
            let a = self.cluster.apiservers[i];
            let rv = self
                .world
                .actor_ref::<ApiServer>(a)
                .map(|s| s.cache_revision());
            if let Some(rv) = rv {
                self.record_view(idx, a, rv, truth);
            }
            idx += 1;
        }
        for i in 0..self.cluster.kubelets.len() {
            let k = self.cluster.kubelets[i];
            let rv = self
                .world
                .actor_ref::<Kubelet>(k)
                .map(|s| s.view_revision());
            if let Some(rv) = rv {
                self.record_view(idx, k, rv, truth);
            }
            idx += 1;
        }
        if let Some(id) = self.cluster.scheduler {
            let rv = self
                .world
                .actor_ref::<Scheduler>(id)
                .map(|s| s.view_revision());
            if let Some(rv) = rv {
                self.record_view(idx, id, rv, truth);
            }
            idx += 1;
        }
        if let Some(id) = self.cluster.volume_controller {
            let rv = self
                .world
                .actor_ref::<VolumeController>(id)
                .map(|s| s.view_revision());
            if let Some(rv) = rv {
                self.record_view(idx, id, rv, truth);
            }
            idx += 1;
        }
        if let Some(id) = self.cluster.rs_controller {
            let rv = self
                .world
                .actor_ref::<ReplicaSetController>(id)
                .map(|s| s.view_revision());
            if let Some(rv) = rv {
                self.record_view(idx, id, rv, truth);
            }
            idx += 1;
        }
        if let Some(id) = self.cluster.operator {
            let rv = self
                .world
                .actor_ref::<CassandraOperator>(id)
                .map(|s| s.view_revision());
            if let Some(rv) = rv {
                self.record_view(idx, id, rv, truth);
            }
            idx += 1;
        }
        if let Some(id) = self.cluster.node_lifecycle {
            let rv = self
                .world
                .actor_ref::<NodeLifecycleController>(id)
                .map(|s| s.view_revision());
            if let Some(rv) = rv {
                self.record_view(idx, id, rv, truth);
            }
            idx += 1;
        }
        let _ = idx;
    }

    /// Folds one view's lag sample into the divergence summary and metrics.
    /// Resolves the view's `(component sym, divergence slot)` pair on first
    /// contact — lazily, so views that never get sampled (e.g. a run that
    /// ends before its first quantum) leave no empty entries in exports.
    fn record_view(&mut self, idx: usize, id: ActorId, frontier: Revision, truth: Revision) {
        let lag = truth.0.saturating_sub(frontier.0);
        let meta = match self.view_meta.get(idx).copied().flatten() {
            Some(meta) => meta,
            None => {
                let name = self.world.name_handle(id);
                let comp = self.world.metrics_mut().sym(name.as_str());
                let slot = self.divergence.slot(name.as_str());
                if idx >= self.view_meta.len() {
                    self.view_meta.resize(idx + 1, None);
                }
                self.view_meta[idx] = Some((comp, slot));
                (comp, slot)
            }
        };
        let (comp, slot) = meta;
        self.divergence.record_slot(slot, lag);
        let dirty = self.sampler.changed(idx, lag);
        let metrics = self.world.metrics_mut();
        // Histograms count samples, so every quantum must observe; the
        // gauge is last-value, so only dirty views need the write.
        metrics.observe_sym(comp, self.hist_sym, lag);
        if dirty {
            metrics.gauge_set_sym(comp, self.gauge_sym, lag as i64);
        }
    }

    /// The legacy full-diff sampling path: walks every view, collects
    /// `(Name, lag)` pairs, and records them through the string-keyed
    /// APIs. Kept (behind `PH_DIVERGENCE_FULL=1`) as the oracle the
    /// incremental path is regression-tested against — both must produce
    /// identical divergence summaries and metric reports.
    fn sample_divergence_full(&mut self, truth: Revision) {
        let mut lags = std::mem::take(&mut self.lag_scratch);
        lags.clear();
        // Names are interned `Rc<str>` handles, so collecting them is a
        // refcount bump per view — no string copies on this path.
        let push = |lags: &mut Vec<(Name, u64)>, name: Name, frontier: Revision| {
            lags.push((name, truth.0.saturating_sub(frontier.0)));
        };
        for &a in &self.cluster.apiservers {
            if let Some(s) = self.world.actor_ref::<ApiServer>(a) {
                push(&mut lags, self.world.name_handle(a), s.cache_revision());
            }
        }
        for &k in &self.cluster.kubelets {
            if let Some(s) = self.world.actor_ref::<Kubelet>(k) {
                push(&mut lags, self.world.name_handle(k), s.view_revision());
            }
        }
        if let Some(id) = self.cluster.scheduler {
            if let Some(s) = self.world.actor_ref::<Scheduler>(id) {
                push(&mut lags, self.world.name_handle(id), s.view_revision());
            }
        }
        if let Some(id) = self.cluster.volume_controller {
            if let Some(s) = self.world.actor_ref::<VolumeController>(id) {
                push(&mut lags, self.world.name_handle(id), s.view_revision());
            }
        }
        if let Some(id) = self.cluster.rs_controller {
            if let Some(s) = self.world.actor_ref::<ReplicaSetController>(id) {
                push(&mut lags, self.world.name_handle(id), s.view_revision());
            }
        }
        if let Some(id) = self.cluster.operator {
            if let Some(s) = self.world.actor_ref::<CassandraOperator>(id) {
                push(&mut lags, self.world.name_handle(id), s.view_revision());
            }
        }
        if let Some(id) = self.cluster.node_lifecycle {
            if let Some(s) = self.world.actor_ref::<NodeLifecycleController>(id) {
                push(&mut lags, self.world.name_handle(id), s.view_revision());
            }
        }
        for (name, lag) in &lags {
            let (name, lag) = (name.as_str(), *lag);
            self.divergence.record(name, lag);
            let metrics = self.world.metrics_mut();
            metrics.observe(name, "view_lag.revisions", lag);
            metrics.gauge_set(name, "view_lag.last", lag as i64);
        }
        lags.clear();
        self.lag_scratch = lags;
    }

    /// Finishes the run: tears the strategy down, lets the system settle
    /// for `settle`, evaluates the oracles, and produces the report. The
    /// trace stays with the world, so its buffers recycle into the trial
    /// pool when the world drops here.
    pub fn finish(
        mut self,
        strategy: &mut dyn Strategy,
        settle: Duration,
        oracles: &mut [Box<dyn Oracle>],
    ) -> RunReport {
        self.settle_and_report(strategy, settle, oracles)
    }

    /// Like [`Runner::finish`], but also hands back the full run trace
    /// (for narration, causality analysis, or archiving). The trace is
    /// moved out of the world, not cloned.
    pub fn finish_with_trace(
        mut self,
        strategy: &mut dyn Strategy,
        settle: Duration,
        oracles: &mut [Box<dyn Oracle>],
    ) -> (RunReport, ph_sim::Trace) {
        let report = self.settle_and_report(strategy, settle, oracles);
        (report, self.world.take_trace())
    }

    /// Shared tail of [`Runner::finish`]/[`Runner::finish_with_trace`].
    fn settle_and_report(
        &mut self,
        strategy: &mut dyn Strategy,
        settle: Duration,
        oracles: &mut [Box<dyn Oracle>],
    ) -> RunReport {
        strategy.teardown(&mut self.world);
        self.world.run_for(settle);
        self.sample_divergence();
        let violations = check_all(oracles, &self.world);
        RunReport {
            scenario: std::mem::take(&mut self.name),
            strategy: strategy.name(),
            seed: self.seed,
            violations,
            sim_time: self.world.now(),
            trace_events: self.world.trace().len(),
            trace_digest: self.world.trace().digest(),
            metrics: self.world.metrics_report(),
            divergence: std::mem::take(&mut self.divergence),
            blame: None,
        }
    }
}

/// Derives the strategy-facing [`Targets`] for a cluster:
/// * `caches` — the apiservers (index-stable: `caches[i]` = apiserver i+1);
/// * `components` — kubelets (in node order), then scheduler, volume
///   controller, replica-set controller, operator (those configured);
/// * `notify_kinds` — both view-update message layers: the store→apiserver
///   feed (`WatchNotify`) and the apiserver→component feed (`ApiWatchEvent`).
pub fn targets_for(cluster: &ClusterHandle, horizon: Duration) -> Targets {
    let mut components = cluster.kubelets.clone();
    components.extend(cluster.scheduler);
    components.extend(cluster.volume_controller);
    components.extend(cluster.rs_controller);
    components.extend(cluster.operator);
    components.extend(cluster.node_lifecycle);
    Targets {
        // Shared handle to the cluster's member list — a refcount bump per
        // trial, not a copy (hunts build a fresh `Targets` every trial).
        store_nodes: cluster.store.nodes.clone(),
        caches: cluster.apiservers.as_slice().into(),
        components: components.into(),
        notify_kinds: ["WatchNotify".to_string(), "ApiWatchEvent".to_string()].into(),
        horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_core::perturb::NoFault;

    #[test]
    fn runner_builds_and_reports() {
        let cfg = ClusterConfig::default();
        let mut runner = Runner::new("smoke", 3, &cfg, Duration::secs(1), Duration::secs(3));
        assert_eq!(runner.world.now(), SimTime(Duration::secs(1).as_nanos()));
        runner.seed(&ph_cluster::objects::Object::node("node-1"));
        let mut strategy = NoFault;
        runner.drive(&mut strategy, Duration::secs(2), Duration::millis(20));
        let report = runner.finish(&mut strategy, Duration::millis(100), &mut []);
        assert_eq!(report.scenario, "smoke");
        assert!(!report.failed());
        assert!(report.trace_events > 0);
    }

    #[test]
    fn targets_cover_all_components() {
        let cfg = ClusterConfig {
            scheduler: Some(false),
            rs_controller: Some(false),
            ..ClusterConfig::default()
        };
        let runner = Runner::new("t", 4, &cfg, Duration::secs(1), Duration::secs(2));
        assert_eq!(runner.targets.caches.len(), 2);
        // 2 kubelets + scheduler + rs controller.
        assert_eq!(runner.targets.components.len(), 4);
        assert_eq!(runner.targets.store_nodes.len(), 3);
    }
}
