//! From static witnesses to guided search: compiles the model checker's
//! minimal hazard witnesses into concrete perturbation schedules.
//!
//! The model checker ([`ph_lint::modelcheck`]) speaks in abstract letters
//! (`delay-cache(pods)`, `upstream-switch`, …) over the IR; the explorer
//! speaks in concrete injectors anchored to a scenario's keys, component
//! indices, and phase times. This module is the translation layer:
//!
//! 1. model-check the scenario's buggy summaries → minimal witnesses;
//! 2. compile witness schedules into ordered [`PriorShape`]s
//!    ([`ph_core::autoguide::witness_priors`]);
//! 3. realize each shape as the scenario-anchored injector(s) that
//!    perturb the run the way the abstract letter perturbs the model.
//!
//! Witness-guided exploration then tries these realizations *first*, in
//! witness order (shortest schedules lead), before falling back to the
//! unguided strategy cycle — measured in EXPERIMENTS.md E6 as a
//! trials-to-first-detection reduction on the scenario suite.

use ph_core::autoguide::{witness_priors, PriorShape};
use ph_core::parallel::derive_trial_seed;
use ph_core::perturb::{
    CoFiPartitions, CrashTunerCrashes, RandomCrashes, StalenessInjector, Strategy,
    TimeTravelInjector,
};
use ph_lint::modelcheck::model_check_all;
use ph_sim::Duration;

use crate::common::Variant;
use crate::strategies::{
    Compose, CrashOnAnnotation, DropMatching, EventSelector, HoldMatching, PartitionComponent,
    TargetRef,
};
use crate::{scenario_statics, StaticEntry};

/// The prior shapes the scenario's witnesses compile to, in witness order
/// (shortest schedule first). Empty when the model checker proves every
/// action epoch-safe.
pub fn scenario_prior_shapes(entry: &StaticEntry) -> Vec<PriorShape> {
    let summaries = (entry.summaries)(Variant::Buggy);
    let reports = model_check_all(&summaries);
    let witnesses: Vec<_> = reports.iter().flat_map(|r| r.witnesses()).collect();
    witness_priors(&witnesses)
}

/// Realizes one abstract shape as concrete injectors for `scenario`.
///
/// The anchors (which cache, which key, which phase window) come from the
/// scenario's workload schedule — the same knowledge its tuned `guided`
/// injector uses; the *choice* of which perturbation family to anchor is
/// what the witness contributes. Shapes with no sensible realization in a
/// scenario (e.g. an upstream switch where every component is pinned)
/// yield nothing.
fn realize(scenario: &str, shape: &PriorShape) -> Vec<Box<dyn Strategy>> {
    match (scenario, shape) {
        // kubelet restarts onto the lagging apiserver-2 and acts on the
        // pre-rollout world: both the delay-cache and the switch letters
        // concretize against cache 1 / kubelet-node-1 — the delay letter
        // both as the pure staleness hold and as the stale landing zone
        // the restart needs, so the switch letter's realization is a
        // canonical duplicate of the delay letter's second one.
        ("k8s-59848", PriorShape::DelayCache { .. }) => vec![
            Box::new(StalenessInjector {
                cache: 1,
                delay: Duration::millis(900),
                after: Duration::millis(1500),
            }),
            Box::new(k8s_59848_time_travel()),
        ],
        ("k8s-59848", PriorShape::UpstreamSwitch | PriorShape::CrashRestartReplay) => {
            vec![Box::new(k8s_59848_time_travel())]
        }

        // The scheduler's stale `nodes` view is concretely a swallowed
        // node-deletion notification; the reorder letter is the same race
        // held shorter.
        (
            "k8s-56261",
            PriorShape::DelayCache { resource } | PriorShape::DropNotification { resource },
        ) if resource == "nodes" => {
            vec![Box::new(DropMatching {
                dst: TargetRef::Component(2),
                selector: EventSelector::deletes_of("nodes/node-2"),
                from: Duration::millis(1500),
                max: 4,
            })]
        }
        ("k8s-56261", PriorShape::ReorderUpdateConsume { resource }) if resource == "nodes" => {
            vec![Box::new(HoldMatching::new(
                TargetRef::Component(2),
                EventSelector::deletes_of("nodes/node-2"),
                Duration::millis(1500),
                Some(Duration::millis(1200)),
            ))]
        }

        // The volume controller misses the pod's termination mark.
        ("volume-ctrl-17", PriorShape::DropNotification { resource }) if resource == "pods" => {
            vec![Box::new(DropMatching {
                dst: TargetRef::Component(2),
                selector: EventSelector::termination_mark_of("pods/p1"),
                from: Duration::millis(1500),
                max: 4,
            })]
        }
        ("volume-ctrl-17", PriorShape::DelayCache { resource }) if resource == "pods" => {
            vec![Box::new(HoldMatching::new(
                TargetRef::Component(2),
                EventSelector::termination_mark_of("pods/p1"),
                Duration::millis(1500),
                Some(Duration::millis(1800)),
            ))]
        }

        // The operator's decommission acknowledgement is lost across its
        // crash-restart: the drop-notification letter lands as a crash in
        // the decision window (the restart wipes the in-flight event).
        ("cass-op-398", PriorShape::DropNotification { .. } | PriorShape::CrashRestartReplay) => {
            vec![Box::new(CrashOnAnnotation::new(
                "operator.decommission",
                None,
                Duration::millis(100),
                Duration::millis(400),
                1,
            ))]
        }

        // The operator lands on the lagging apiserver-2 mid-scale-down.
        (
            "cass-op-400",
            PriorShape::DelayCache { .. }
            | PriorShape::UpstreamSwitch
            | PriorShape::CrashRestartReplay,
        ) => vec![Box::new(TimeTravelInjector::new(
            1,
            3,
            Duration::millis(3050),
            Duration::millis(3300),
            Duration::millis(3600),
            Some(Duration::millis(5000)),
        ))],

        // Hold the pod-created update away from the operator's cache while
        // a restart makes it act on the held (stale) view. The switch and
        // crash letters concretize to the very same hold+crash pair (the
        // restart IS the switch onto the held view), so they dedup.
        ("cass-op-402", PriorShape::DelayCache { resource }) if resource == "pods" => {
            vec![cass_402_hold_and_crash()]
        }
        ("cass-op-402", PriorShape::UpstreamSwitch | PriorShape::CrashRestartReplay) => {
            vec![cass_402_hold_and_crash()]
        }

        // The region manager reads the lagging follower.
        ("hbase-3136", PriorShape::DelayCache { .. }) => vec![Box::new(StalenessInjector {
            cache: 0,
            delay: Duration::millis(90),
            after: Duration::millis(1500),
        })],

        // Silent lease expiry: partitioning the kubelet drops its renewals
        // — exactly the false-silence the drop-notification letter models.
        ("node-fencing", PriorShape::DropNotification { resource }) if resource == "leases" => {
            vec![Box::new(PartitionComponent::new(
                1,
                Duration::millis(2500),
                Duration::millis(5500),
            ))]
        }

        // The traffic-surge letter lands literally: squeeze the
        // scheduler's watch feed below the churn workload's offered load
        // across the surge window. The strategy only reconfigures link
        // capacity — every late or lost message is the queue's own doing.
        // The delay-cache letter concretizes to the same squeeze (this
        // scenario has no direct hold injector: congestion *is* how the
        // view ages), so the two letters collapse to one class.
        (
            "congestion",
            PriorShape::TrafficSurge { .. } | PriorShape::DelayCache { resource: _ },
        ) => vec![crate::congestion::guided(0)],

        _ => Vec::new(),
    }
}

/// The kubelet's stale-landing realization, shared by the delay-cache and
/// upstream-switch/crash letters.
fn k8s_59848_time_travel() -> TimeTravelInjector {
    TimeTravelInjector::new(
        1,
        0,
        Duration::millis(1500),
        Duration::millis(2200),
        Duration::millis(2400),
        Some(Duration::millis(3500)),
    )
}

/// The operator's hold+crash realization, shared by the delay-cache and
/// upstream-switch/crash letters.
fn cass_402_hold_and_crash() -> Box<dyn Strategy> {
    Box::new(Compose::new(
        "witness[delay-cache(pods) ; crash-restart]",
        vec![
            Box::new(HoldMatching::new(
                TargetRef::Cache(1),
                EventSelector::key("pods/dc1-2"),
                Duration::millis(2400),
                None,
            )),
            Box::new(CrashOnAnnotation::new(
                "operator.create_pod",
                None,
                Duration::millis(300),
                Duration::millis(300),
                1,
            )),
        ],
    ))
}

/// Canonical-dedup census of one witness plan: how many distinct
/// [`ph_core::plan_class`] fingerprints the realized strategies span, and
/// how many realizations were dropped as duplicates of an already-planned
/// class — trials the guided hunt does *not* have to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WitnessPlanStats {
    /// Distinct canonical schedule classes among the kept strategies.
    pub distinct_classes: u32,
    /// Realizations dropped as canonical duplicates.
    pub deduped_trials: u32,
}

/// The ordered witness-derived strategies for `entry`, one representative
/// per canonical schedule class ([`ph_core::plan_class`] over each
/// strategy's planned ops), witness order preserved — several abstract
/// letters often concretize to the *same* injection (e.g. `delay-cache`
/// and `upstream-switch` both land the operator on the lagging
/// apiserver), and the fingerprint proves it instead of trusting display
/// names. Unplannable strategies fall back to name dedup.
pub fn witness_plan(entry: &StaticEntry) -> (Vec<Box<dyn Strategy>>, WitnessPlanStats) {
    let mut out: Vec<Box<dyn Strategy>> = Vec::new();
    let mut classes = std::collections::BTreeSet::new();
    let mut stats = WitnessPlanStats::default();
    for shape in scenario_prior_shapes(entry) {
        for s in realize(entry.name, &shape) {
            let keep = match s.planned_schedule() {
                Some(ops) => classes.insert(ph_core::plan_class(&ops)),
                None => !out.iter().any(|have| have.name() == s.name()),
            };
            if keep {
                stats.distinct_classes += 1;
                out.push(s);
            } else {
                stats.deduped_trials += 1;
            }
        }
    }
    (out, stats)
}

/// [`witness_plan`] without the census — the strategy list alone.
pub fn witness_strategies(entry: &StaticEntry) -> Vec<Box<dyn Strategy>> {
    witness_plan(entry).0
}

/// Every witness realization with **no** canonical dedup — the trial list
/// a hunt would burn without [`witness_plan`]'s class fingerprinting.
/// Exists for the E9 bench and the equivalence tests; hunts should use
/// [`witness_plan`].
pub fn witness_realizations(entry: &StaticEntry) -> Vec<Box<dyn Strategy>> {
    scenario_prior_shapes(entry)
        .iter()
        .flat_map(|shape| realize(entry.name, shape))
        .collect()
}

/// The unguided baseline: the generic strategy cycle every hunt falls
/// back to, with per-trial seeds.
pub fn unguided_strategy(trial: usize, seed: u64) -> Box<dyn Strategy> {
    match trial % 3 {
        0 => Box::new(RandomCrashes {
            seed,
            count: 3,
            down: Duration::millis(300),
        }),
        1 => Box::new(CrashTunerCrashes::new(seed, 0.02, 3, Duration::millis(300))),
        _ => Box::new(CoFiPartitions::new(seed, 0.02, 3, Duration::millis(500))),
    }
}

/// One measured hunt: runs buggy-variant trials until the first
/// detection, returning the 1-based trial count, or `None` within
/// `budget`. `make` picks the strategy for each trial (0-based) given its
/// derived seed.
pub fn first_detection(
    entry: &StaticEntry,
    budget: usize,
    base_seed: u64,
    mut make: impl FnMut(usize, u64) -> Box<dyn Strategy>,
) -> Option<u32> {
    for trial in 0..budget {
        let seed = derive_trial_seed(base_seed, trial as u32);
        let mut strategy = make(trial, seed);
        let report = (entry.run)(seed, strategy.as_mut(), Variant::Buggy);
        if report.failed() {
            return Some(trial as u32 + 1);
        }
    }
    None
}

/// Trials to first detection with witness priors leading (then the
/// unguided cycle).
pub fn first_detection_guided(entry: &StaticEntry, budget: usize, base_seed: u64) -> Option<u32> {
    let priors = witness_strategies(entry);
    let lead = priors.len();
    let mut priors = priors.into_iter();
    first_detection(entry, budget, base_seed, move |trial, seed| {
        priors
            .next()
            .unwrap_or_else(|| unguided_strategy(trial - lead, seed))
    })
}

/// Trials to first detection for the unguided cycle alone.
pub fn first_detection_unguided(entry: &StaticEntry, budget: usize, base_seed: u64) -> Option<u32> {
    first_detection(entry, budget, base_seed, |trial, seed| {
        unguided_strategy(trial, seed)
    })
}

/// Looks up a scenario's static entry by name (`-`/`_` tolerant).
pub fn entry_for(name: &str) -> Option<StaticEntry> {
    let dashed = name.replace('_', "-");
    scenario_statics().into_iter().find(|e| e.name == dashed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_buggy_scenario_compiles_to_at_least_one_strategy() {
        for entry in scenario_statics() {
            let shapes = scenario_prior_shapes(&entry);
            assert!(
                !shapes.is_empty(),
                "{}: buggy variant should produce witnesses",
                entry.name
            );
            let strategies = witness_strategies(&entry);
            assert!(
                !strategies.is_empty(),
                "{}: witnesses must realize as concrete strategies (shapes {shapes:?})",
                entry.name
            );
        }
    }

    #[test]
    fn fixed_variants_produce_no_witnesses() {
        for entry in scenario_statics() {
            let summaries = (entry.summaries)(Variant::Fixed);
            let reports = model_check_all(&summaries);
            for r in &reports {
                assert!(
                    r.is_epoch_safe(),
                    "{}: fixed {} not epoch-safe",
                    entry.name,
                    r.component
                );
            }
        }
    }

    #[test]
    fn witness_plans_dedup_convergent_realizations_by_class() {
        // Several letters concretize to the same injection in these
        // scenarios; the canonical fingerprint collapses them.
        let expected = [
            ("k8s-59848", 1),
            ("cass-op-400", 1),
            ("cass-op-402", 1),
            ("congestion", 1),
        ];
        for (name, deduped) in expected {
            let entry = entry_for(name).unwrap();
            let (kept, stats) = witness_plan(&entry);
            assert_eq!(
                stats.deduped_trials, deduped,
                "{name}: expected {deduped} deduped realizations"
            );
            assert_eq!(stats.distinct_classes as usize, kept.len(), "{name}");
            // Every kept pair really is class-distinct.
            let classes: Vec<Option<u64>> = kept
                .iter()
                .map(|s| s.planned_schedule().map(|ops| ph_core::plan_class(&ops)))
                .collect();
            for (i, a) in classes.iter().enumerate() {
                for b in &classes[i + 1..] {
                    if let (Some(a), Some(b)) = (a, b) {
                        assert_ne!(a, b, "{name}: duplicate class survived");
                    }
                }
            }
        }
    }

    #[test]
    fn unguided_cycle_is_deterministic_per_trial() {
        let a = unguided_strategy(4, 99).name();
        let b = unguided_strategy(4, 99).name();
        assert_eq!(a, b);
    }
}
