//! cassandra-operator-398 — "Reconcile() fails to delete the corresponding
//! PVC if missing deletionTimestamp of Cassandra pod" (§7, \[17\]-shaped).
//!
//! The shipped operator deletes a decommissioned node's PVC only when its
//! reconcile loop has *observed* the pod carrying a deletion timestamp.
//! That observation lives in volatile memory: crash the operator between
//! marking the pod and the pod's finalization, and the restarted operator —
//! whose view jumps straight from "pod alive" to "pod gone" — never deletes
//! the PVC. An observability gap created by a restart.
//!
//! Guided injection: [`CrashOnAnnotation`] on the operator's own
//! `operator.decommission` decision — crash it 100 ms after the mark (the
//! pod is still draining), restart it 400 ms later (the pod is gone).
//!
//! Schedule: `1.0s` seed + dc1 desired 3 → converge → `3.0s` scale to 2 →
//! `7.0s` end.

use ph_cluster::objects::{Body, Object};
use ph_cluster::operator::OperatorFlags;
use ph_cluster::topology::ClusterConfig;
use ph_core::harness::RunReport;
use ph_core::perturb::Strategy;
use ph_sim::Duration;

use crate::common::{Runner, Variant};
use crate::oracles;
use crate::strategies::CrashOnAnnotation;

/// Scenario name used in reports and matrices.
pub const NAME: &str = "cass-op-398";

/// Defect switches for this scenario's buggy variant: only bug 398.
fn flags(variant: Variant) -> OperatorFlags {
    if variant.is_buggy() {
        OperatorFlags {
            pvc_requires_observed_terminating: true,
            handle_decommission_notfound: true,
            fresh_confirm_orphan: false,
        }
    } else {
        OperatorFlags::fixed()
    }
}

/// The tuned §7 injection: crash the operator right after its decommission
/// decision; restart it after the pod has been finalized.
pub fn guided(_seed: u64) -> Box<dyn Strategy> {
    Box::new(CrashOnAnnotation::new(
        "operator.decommission",
        None,
        Duration::millis(100),
        Duration::millis(400),
        1,
    ))
}

/// The §4.2 pattern class this scenario's buggy variant exercises.
pub const PATTERN: ph_lint::summary::PatternClass =
    ph_lint::summary::PatternClass::ObservabilityGap;

/// What the blame slicer needs to know: the operator must delete the
/// decommissioned node's PVC (`operator.delete_pvc`); in the buggy run it
/// never does — an omission sink across its crash/restart.
pub fn blame_spec() -> ph_core::provenance::BlameSpec {
    ph_core::provenance::BlameSpec {
        scenario: NAME,
        component: "cassandra-operator",
        action_labels: &["operator.delete_pvc"],
        caches: &["apiserver-1", "apiserver-2"],
    }
}

/// The cluster this scenario spawns (shared by [`run`] and the static
/// hazard pass, so the analysis sees exactly what executes).
fn cluster_config(variant: Variant) -> ClusterConfig {
    ClusterConfig {
        store_nodes: 3,
        apiservers: 2,
        nodes: vec!["node-1".into(), "node-2".into()],
        scheduler: Some(true),
        operator: Some(flags(variant)),
        ..ClusterConfig::default()
    }
}

/// Static access summaries of the focal component (the operator, whose
/// observed-terminating-only PVC cleanup is the bug-398 gap).
pub fn access_summaries(variant: Variant) -> Vec<ph_lint::summary::AccessSummary> {
    ph_cluster::topology::access_summaries(&cluster_config(variant))
        .into_iter()
        .filter(|s| s.component == "cassandra-operator")
        .collect()
}

/// Runs one trial under `strategy`.
pub fn run(seed: u64, strategy: &mut dyn Strategy, variant: Variant) -> RunReport {
    run_with_trace(seed, strategy, variant).0
}

/// Like [`run`], but also returns the full trace (consumed by the blame
/// slicer and the causality-guided auto-explorer).
pub fn run_with_trace(
    seed: u64,
    strategy: &mut dyn Strategy,
    variant: Variant,
) -> (RunReport, ph_sim::Trace) {
    let cfg = cluster_config(variant);
    let mut runner = Runner::new(NAME, seed, &cfg, Duration::secs(1), Duration::secs(7));
    runner.seed(&Object::node("node-1"));
    runner.seed(&Object::node("node-2"));
    runner.seed(&Object::new(
        "dc1",
        Body::CassandraDatacenter { desired: 3 },
    ));

    strategy.setup(&mut runner.world, &runner.targets);
    runner.drive(strategy, Duration::secs(3), Duration::millis(10));

    // Scale down: the operator decommissions dc1-2 and must then clean up
    // its PVC.
    runner.seed(&Object::new(
        "dc1",
        Body::CassandraDatacenter { desired: 2 },
    ));

    runner.drive(strategy, Duration::secs(7), Duration::millis(10));
    let cluster = runner.cluster.clone();
    let mut oracles: Vec<Box<dyn ph_core::oracle::Oracle>> = vec![
        oracles::no_orphan_pvcs(cluster.clone()),
        oracles::no_wrongful_pvc_delete(cluster.clone()),
        oracles::cassdc_converged(cluster, "dc1", 2),
    ];
    let (mut report, trace) =
        runner.finish_with_trace(strategy, Duration::millis(500), &mut oracles);
    report.attach_blame(&trace, &blame_spec());
    (report, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_core::perturb::NoFault;

    #[test]
    fn restart_during_decommission_leaks_the_pvc() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Buggy);
        assert!(report.failed(), "expected dc1-pvc-2 to leak");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.details.contains("dc1-pvc-2")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn fixed_operator_cleans_up_despite_the_restart() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Fixed);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn no_fault_run_is_clean_even_when_buggy() {
        let mut strategy = NoFault;
        let report = run(1, &mut strategy, Variant::Buggy);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }
}
