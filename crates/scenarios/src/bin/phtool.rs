//! `phtool` — the partial-histories testing tool, as a command line.
//!
//! ```text
//! phtool list                         enumerate scenarios and strategies
//! phtool run --scenario <name>        one trial (prints the report)
//!        [--strategy <name>] [--variant buggy|fixed] [--seed N]
//!        [--trace <file>] [--format json|jsonl|chrome]
//!                                     dump the full trace (chrome = load
//!                                     in Perfetto / chrome://tracing)
//!        [--prom <file>]             export the run's metrics (queue
//!                                     depths, drops, waits, staleness) in
//!                                     Prometheus text exposition
//!        [--metrics]                  print the metrics + divergence tables
//!        [--json]                     print the full report as JSON
//!        [--threads N]                worker pool size
//! phtool explain --scenario <name> | --all
//!        [--strategy <name>] [--variant buggy|fixed] [--seed N]
//!        [--json] [--threads N]      blame chain: the minimal causal
//!                                     story behind a violation (injected
//!                                     perturbation → store commit →
//!                                     suppressed view update → stale read
//!                                     → action), classified per §4.2 and
//!                                     cross-checked against the static
//!                                     witness class (exit 3 on
//!                                     disagreement)
//! phtool report [--scenario <name>] [--strategy <name>]
//!        [--variant buggy|fixed] [--seed N] [--threads N]
//!                                     divergence & effort dashboard
//!                                     (now with p95 read-staleness and
//!                                     blame-class columns)
//! phtool matrix [--trials N] [--seed N] [--threads N]
//!        [--prom <file>]             the §7 detection matrix + per-cell
//!                                     hunt telemetry (optionally exported
//!                                     in Prometheus text exposition)
//! phtool hunt --scenario <name> [--budget N] [--depth N] [--seed N]
//!        [--threads N]               causality-guided auto-discovery
//!        [--witnesses]               model-checker witness priors first,
//!                                     then the unguided strategy cycle
//! phtool scale [--nodes N] [--pods N] [--shards N] [--seed N] [--json]
//!                                     one mega-cluster scale point: churn
//!                                     a synthetic demand curve through the
//!                                     sharded watch cache and report the
//!                                     deterministic scale telemetry
//!                                     (objects, window peak, cache bytes)
//! phtool lint [--json] [--root DIR]  static determinism lint + §4.2
//!                                     partial-history hazard analysis
//! phtool check [--json] [--root DIR] symbolic model check (minimal
//!                                     witnesses / epoch-safety per
//!                                     destructive action) + IR↔source
//!                                     conformance
//! ```
//!
//! Everything is deterministic: `--seed` fully determines a run, including
//! every metric value and every exported trace byte. `--threads` (default:
//! the machine's available parallelism) only changes wall-clock time —
//! trials fan out over the deterministic `ph-core::parallel` pool and
//! merge by trial index, so output bytes are identical at any thread
//! count.
//!
//! Exit codes: `0` clean, `1` runtime error, `2` usage error, `3` a
//! violation was detected (a dynamic oracle fired, a hunt found a
//! violating candidate, or `lint` found unsuppressed findings or a
//! static/dynamic disagreement) — so CI can gate on any subcommand.

use std::collections::BTreeMap;

use ph_core::autoguide;
use ph_core::harness::{DetectionMatrix, Explorer, RunReport};
use ph_core::perturb::{
    CoFiPartitions, CrashTunerCrashes, NoFault, RandomCrashes, Strategy, Targets, TrafficSurge,
};
use ph_core::provenance::{explain, BlameSpec};
use ph_core::telemetry::HuntReport;
use ph_lint::summary::PatternClass;
use ph_scenarios::{k8s_56261, volume_17, Variant};
use ph_sim::{Duration, Trace};

type RunFn = fn(u64, &mut dyn Strategy, Variant) -> RunReport;
type TraceRunFn = fn(u64, &mut dyn Strategy, Variant) -> (RunReport, Trace);
type GuidedFn = fn(u64) -> Box<dyn Strategy>;

/// Decision labels + targets builder, for scenarios wired into the
/// auto-explorer (the trace-returning runner lives on every [`Entry`]).
type HuntSpec = (&'static [&'static str], fn() -> Targets);

/// Everything the CLI knows about one scenario.
struct Entry {
    run: RunFn,
    run_traced: TraceRunFn,
    blame: fn() -> BlameSpec,
    pattern: PatternClass,
    guided: GuidedFn,
    hunt: Option<HuntSpec>,
}

fn volume_targets() -> Targets {
    let cfg = ph_cluster::topology::ClusterConfig {
        volume_controller: Some(ph_cluster::controllers::VcMode::MarkOnly),
        ..ph_cluster::topology::ClusterConfig::default()
    };
    let mut world = ph_sim::World::new(ph_sim::WorldConfig::default(), 1);
    let cluster = ph_cluster::topology::spawn_cluster(&mut world, &cfg);
    ph_scenarios::common::targets_for(&cluster, Duration::secs(5))
}

fn scheduler_targets() -> Targets {
    let cfg = ph_cluster::topology::ClusterConfig {
        scheduler: Some(false),
        rs_controller: Some(false),
        ..ph_cluster::topology::ClusterConfig::default()
    };
    let mut world = ph_sim::World::new(ph_sim::WorldConfig::default(), 1);
    let cluster = ph_cluster::topology::spawn_cluster(&mut world, &cfg);
    ph_scenarios::common::targets_for(&cluster, Duration::secs(6))
}

fn registry() -> BTreeMap<&'static str, Entry> {
    let mut m: BTreeMap<&'static str, Entry> = BTreeMap::new();
    for e in ph_scenarios::scenario_statics() {
        m.insert(
            e.name,
            Entry {
                run: e.run,
                run_traced: e.run_traced,
                blame: e.blame,
                pattern: e.pattern,
                guided: e.guided,
                hunt: None,
            },
        );
    }
    // Causal-hunt wiring (the scenarios with a stable reference schedule).
    m.get_mut(k8s_56261::NAME).expect("registered").hunt =
        Some((&["scheduler.bind"], scheduler_targets));
    m.get_mut(volume_17::NAME).expect("registered").hunt =
        Some((&["vc.release_pvc"], volume_targets));
    m
}

const STRATEGIES: &[&str] = &[
    "guided",
    "random-crash",
    "crashtuner",
    "cofi",
    "traffic-surge",
    "no-fault",
];

fn make_strategy(name: &str, guided: GuidedFn, seed: u64) -> Result<Box<dyn Strategy>, String> {
    Ok(match name {
        "guided" => guided(seed),
        "random-crash" => Box::new(RandomCrashes {
            seed,
            count: 3,
            down: Duration::millis(300),
        }),
        "crashtuner" => Box::new(CrashTunerCrashes::new(seed, 0.02, 3, Duration::millis(300))),
        "cofi" => Box::new(CoFiPartitions::new(seed, 0.02, 3, Duration::millis(500))),
        // The generic load axis: squeeze the primary cache's whole fan-out
        // to a scarce trickle mid-run. The congestion scenario's tuned form
        // (via `guided`) focuses this on one component; the generic axis is
        // for probing every other scenario under load.
        "traffic-surge" => Box::new(TrafficSurge::new(
            0,
            2_000,
            4,
            Duration::millis(1100),
            Some(Duration::millis(3600)),
        )),
        "no-fault" => Box::new(NoFault),
        other => return Err(format!("unknown strategy {other:?} (try: {STRATEGIES:?})")),
    })
}

/// Flags that take no value.
const BOOL_FLAGS: &[&str] = &["metrics", "json", "witnesses", "all"];

/// Minimal `--key value` flag parser (plus valueless boolean flags).
struct Args {
    flags: BTreeMap<String, String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut flags = BTreeMap::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}"));
            };
            if BOOL_FLAGS.contains(&key) {
                flags.insert(key.to_string(), "true".to_string());
                continue;
            }
            let Some(value) = it.next() else {
                return Err(format!("flag --{key} needs a value"));
            };
            flags.insert(key.to_string(), value.clone());
        }
        Ok(Args { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    fn get_u64(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key} wants a number")),
        }
    }

    /// Worker-pool size: `--threads N`, defaulting to the machine's
    /// available parallelism.
    fn threads(&self) -> Result<usize, String> {
        let n = self.get_u64("threads", ph_core::default_threads() as u64)?;
        if n == 0 {
            return Err("--threads must be at least 1".into());
        }
        Ok(n as usize)
    }
}

fn usage() -> &'static str {
    "usage:\n  phtool list\n  phtool run --scenario <name> [--strategy <name>] \
     [--variant buggy|fixed] [--seed N] [--trace out.json] \
     [--format json|jsonl|chrome] [--metrics] [--json] [--threads N]\n  phtool explain \
     --scenario <name> | --all [--strategy <name>] [--variant buggy|fixed] [--seed N] \
     [--json] [--threads N]\n  phtool report \
     [--scenario <name>] [--strategy <name>] [--variant buggy|fixed] [--seed N] \
     [--threads N]\n  \
     phtool matrix [--trials N] [--seed N] [--threads N] [--prom <file>]\n  phtool hunt \
     --scenario <name> [--budget N] [--depth N] [--seed N] [--threads N] [--witnesses]\n  \
     phtool scale [--nodes N] [--pods N] [--shards N] [--seed N] [--json]\n  \
     phtool lint [--json] [--root DIR]\n  phtool check [--json] [--root DIR]\n\
     exit codes: 0 clean, 1 error, 2 usage, 3 violation detected"
}

/// Scenario lookup tolerant of `_`/`-` spelling (`k8s_59848` = `k8s-59848`).
fn lookup<'r>(reg: &'r BTreeMap<&'static str, Entry>, name: &str) -> Result<&'r Entry, String> {
    reg.get(name)
        .or_else(|| reg.get(name.replace('_', "-").as_str()))
        .ok_or_else(|| format!("unknown scenario {name:?} (phtool list)"))
}

fn cmd_list() {
    let reg = registry();
    println!("scenarios:");
    for (name, e) in &reg {
        println!(
            "  {name}{}",
            if e.hunt.is_some() { "  (huntable)" } else { "" }
        );
    }
    println!("strategies: {}", STRATEGIES.join(", "));
}

/// Serializes a trace in the chosen export format.
fn format_trace(trace: &Trace, format: &str) -> Result<String, String> {
    match format {
        "json" => Ok(trace.to_json()),
        "jsonl" => Ok(ph_sim::trace_to_jsonl(trace)),
        "chrome" => Ok(ph_sim::trace_to_chrome(trace)),
        other => Err(format!(
            "unknown trace format {other:?} (json|jsonl|chrome)"
        )),
    }
}

/// Exit code for "the tool worked and found a violation" — distinct from
/// runtime (1) and usage (2) errors so CI can gate on it.
const EXIT_VIOLATION: i32 = 3;

fn cmd_run(args: &Args) -> Result<i32, String> {
    let reg = registry();
    let scenario = args.get("scenario").ok_or("--scenario is required")?;
    let entry = lookup(&reg, scenario)?;
    let seed = args.get_u64("seed", 1)?;
    let variant = match args.get("variant").unwrap_or("buggy") {
        "buggy" => Variant::Buggy,
        "fixed" => Variant::Fixed,
        other => return Err(format!("unknown variant {other:?}")),
    };
    let strategy_name = args.get("strategy").unwrap_or("guided");
    let mut strategy = make_strategy(strategy_name, entry.guided, seed)?;
    let format = args.get("format").unwrap_or("json");
    let threads = args.threads()?;

    let report = if let Some(path) = args.get("trace") {
        let (report, trace) = (entry.run_traced)(seed, strategy.as_mut(), variant);
        std::fs::write(path, format_trace(&trace, format)?)
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("trace written to {path} ({} events, {format})", trace.len());
        report
    } else {
        // Route the run through the deterministic pool so --threads
        // exercises the parallel path; a single trial's report is
        // byte-identical at any pool size.
        let run = entry.run;
        let guided = entry.guided;
        ph_core::run_indexed(threads, 1, move |_| {
            let mut strategy = make_strategy(strategy_name, guided, seed).expect("validated above");
            run(seed, strategy.as_mut(), variant)
        })
        .pop()
        .expect("one job, one report")
    };

    if let Some(path) = args.get("prom") {
        std::fs::write(path, report.metrics.to_prometheus())
            .map_err(|e| format!("writing {path}: {e}"))?;
        // Status goes to stderr so `--json --prom` keeps stdout diffable.
        eprintln!("metrics written to {path} (Prometheus text exposition)");
    }

    let exit = if report.failed() { EXIT_VIOLATION } else { 0 };
    if args.has("json") {
        println!("{}", report.to_json());
        return Ok(exit);
    }
    println!("scenario : {}", report.scenario);
    println!("strategy : {}", report.strategy);
    println!("variant  : {variant}");
    println!("seed     : {}", report.seed);
    println!("events   : {}", report.trace_events);
    println!("digest   : {:#018x}", report.trace_digest);
    if report.failed() {
        println!("VERDICT  : VIOLATED");
        for v in &report.violations {
            println!("  {v}");
        }
    } else {
        println!("VERDICT  : clean");
    }
    if let Some(b) = report.blame {
        println!(
            "blame    : {} ({} link(s); {}/{} injected artifacts in chain)",
            b.class, b.links, b.in_chain, b.injected
        );
    }
    if args.has("metrics") {
        println!("\n-- metrics --");
        print!("{}", report.metrics.render());
        println!("\n-- divergence (|H| - |H'|, sampled) --");
        print!("{}", report.divergence.render());
    }
    Ok(exit)
}

/// `phtool explain` — run a scenario and print the violation's blame chain:
/// the minimal causal story `injected perturbation → store commit →
/// suppressed view update → stale read → action`, classified with the §4.2
/// taxonomy and cross-checked against the scenario's static witness class.
///
/// Exit 3 when the dynamic class disagrees with the static one (or the run
/// produced no violation to explain while one was statically predicted) —
/// CI gates on it.
fn cmd_explain(args: &Args) -> Result<i32, String> {
    let reg = registry();
    let seed = args.get_u64("seed", 1)?;
    let variant = match args.get("variant").unwrap_or("buggy") {
        "buggy" => Variant::Buggy,
        "fixed" => Variant::Fixed,
        other => return Err(format!("unknown variant {other:?}")),
    };
    let strategy_name = args.get("strategy").unwrap_or("guided");
    if !STRATEGIES.contains(&strategy_name) {
        return Err(format!(
            "unknown strategy {strategy_name:?} (try: {STRATEGIES:?})"
        ));
    }
    let threads = args.threads()?;
    let selected: Vec<&'static str> = if args.has("all") {
        reg.keys().copied().collect()
    } else {
        let s = args
            .get("scenario")
            .ok_or("--scenario <name> or --all is required")?;
        lookup(&reg, s)?;
        let dashed = s.replace('_', "-");
        reg.keys().copied().filter(|k| *k == dashed).collect()
    };

    // One run per scenario through the deterministic pool: output bytes are
    // identical at any --threads value.
    type ExplainCell = (TraceRunFn, GuidedFn, fn() -> BlameSpec);
    let cells: Vec<ExplainCell> = selected
        .iter()
        .map(|n| (reg[n].run_traced, reg[n].guided, reg[n].blame))
        .collect();
    let chains = ph_core::run_indexed(threads, cells.len(), |i| {
        let (run_traced, guided, blame) = cells[i];
        let mut strategy = make_strategy(strategy_name, guided, seed).expect("validated above");
        let (report, trace) = run_traced(seed, strategy.as_mut(), variant);
        let chain = explain(&trace, &blame(), &report.violations);
        (report.failed(), chain)
    });

    let mut disagreements = 0usize;
    for (name, (failed, chain)) in selected.iter().zip(&chains) {
        let expected = reg[name].pattern;
        if args.has("json") {
            println!("{}", chain.to_json());
        } else {
            print!("{}", chain.render());
        }
        if !*failed {
            if variant == Variant::Buggy {
                disagreements += 1;
                if !args.has("json") {
                    println!(
                        "  DISAGREEMENT: statically predicted {expected} but the run produced \
                         no violation to explain"
                    );
                }
            }
            continue;
        }
        if chain.class != expected {
            disagreements += 1;
            if !args.has("json") {
                println!(
                    "  DISAGREEMENT: dynamic class {} vs static witness class {expected}",
                    chain.class
                );
            }
        } else if !args.has("json") {
            println!("  static cross-check: agrees ({expected})");
        }
        if !args.has("json") {
            println!();
        }
    }
    if disagreements > 0 {
        if !args.has("json") {
            println!("{disagreements} dynamic/static disagreement(s)");
        }
        return Ok(EXIT_VIOLATION);
    }
    Ok(0)
}

/// The observability dashboard: run every scenario (or one) once and
/// summarize verdicts, effort, and divergence side by side.
fn cmd_report(args: &Args) -> Result<i32, String> {
    let reg = registry();
    let seed = args.get_u64("seed", 1)?;
    let variant = match args.get("variant").unwrap_or("buggy") {
        "buggy" => Variant::Buggy,
        "fixed" => Variant::Fixed,
        other => return Err(format!("unknown variant {other:?}")),
    };
    let strategy_name = args.get("strategy").unwrap_or("guided");
    if !STRATEGIES.contains(&strategy_name) {
        return Err(format!(
            "unknown strategy {strategy_name:?} (try: {STRATEGIES:?})"
        ));
    }
    let threads = args.threads()?;
    let selected: Vec<&'static str> = match args.get("scenario") {
        Some(s) => {
            lookup(&reg, s)?;
            let dashed = s.replace('_', "-");
            reg.keys().copied().filter(|k| *k == dashed).collect()
        }
        None => reg.keys().copied().collect(),
    };

    // One job per scenario through the pool; results come back in
    // scenario order, so the dashboard is identical at any thread count.
    let cells: Vec<(RunFn, GuidedFn)> = selected
        .iter()
        .map(|n| (reg[n].run, reg[n].guided))
        .collect();
    let reports = ph_core::run_indexed(threads, cells.len(), |i| {
        let (run, guided) = cells[i];
        let mut strategy = make_strategy(strategy_name, guided, seed).expect("validated above");
        run(seed, strategy.as_mut(), variant)
    });

    println!("phtool report  (strategy {strategy_name}, variant {variant}, seed {seed})");
    println!();
    let wide = selected
        .iter()
        .map(|s| s.len())
        .max()
        .unwrap_or(8)
        .max("scenario".len());
    println!(
        "{:<wide$}  {:>8}  {:>8}  {:>9}  {:>7}  {:>8}  {:>6}  {:>12}  {:>8}  {:>8}  {:>17}",
        "scenario",
        "verdict",
        "events",
        "sim-time",
        "max-lag",
        "mean-lag",
        "gap%",
        "p95-stale-ms",
        "objects",
        "peak-win",
        "blame"
    );
    for r in &reports {
        let gap = r
            .divergence
            .iter()
            .map(|(_, v)| v.gap_fraction())
            .fold(0.0f64, f64::max);
        // Worst observed cache-read staleness (p95) across components.
        let p95_stale_ns = r
            .metrics
            .iter()
            .filter(|(_, name, _)| *name == "apiserver.read_staleness_ns")
            .filter_map(|(c, n, _)| r.metrics.histogram(c, n))
            .map(|h| h.quantile(0.95))
            .max()
            .unwrap_or(0);
        // Scale telemetry (live objects / window high-water marks) only
        // exists for runs with `api_scale_telemetry` on (e.g. `phtool
        // scale`); the legacy scenarios keep their exports untouched.
        let scale_gauge = |name: &str| {
            r.metrics
                .gauge_max(name)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:<wide$}  {:>8}  {:>8}  {:>8.2}s  {:>7}  {:>8.2}  {:>5.1}%  {:>12.1}  {:>8}  {:>8}  {:>17}",
            r.scenario,
            if r.failed() { "VIOLATED" } else { "clean" },
            r.trace_events,
            r.sim_time.0 as f64 / 1e9,
            r.divergence.max_lag(),
            r.divergence.mean_lag(),
            gap * 100.0,
            p95_stale_ns as f64 / 1e6,
            scale_gauge("apiserver.objects"),
            scale_gauge("apiserver.window_peak"),
            match &r.blame {
                Some(b) => b.class.as_str(),
                None => "-",
            },
        );
    }
    for r in &reports {
        if r.divergence.is_empty() {
            continue;
        }
        println!("\n-- {} divergence --", r.scenario);
        print!("{}", r.divergence.render());
    }
    let table = ph_scenarios::static_crosscheck();
    println!("\n-- static witnesses (model checker, buggy variants) --");
    for row in table
        .rows
        .iter()
        .filter(|r| selected.contains(&r.scenario.as_str()))
    {
        for w in &row.buggy_witnesses {
            println!("{}  {}", row.scenario, w);
        }
    }
    if reports.iter().any(|r| r.failed()) {
        return Ok(EXIT_VIOLATION);
    }
    Ok(0)
}

fn cmd_matrix(args: &Args) -> Result<i32, String> {
    let trials = args.get_u64("trials", 5)? as u32;
    let base_seed = args.get_u64("seed", 1000)?;
    let threads = args.threads()?;
    let explorer = Explorer {
        max_trials: trials,
        base_seed,
    };
    let reg = registry();
    let mut matrix = DetectionMatrix::new();
    let mut hunt_report = HuntReport::new();
    for (name, entry) in &reg {
        for strategy_name in STRATEGIES {
            let run = entry.run;
            let guided = entry.guided;
            let mut outcome = explorer.explore_parallel(
                threads,
                name,
                &|seed, s| run(seed, s, Variant::Buggy),
                &|seed| make_strategy(strategy_name, guided, seed).expect("known strategy"),
            );
            if *strategy_name == "guided" {
                outcome.strategy = "guided".into();
            }
            hunt_report.push(ph_core::telemetry::StrategyStats::from_outcome(&outcome));
            matrix.add(outcome);
        }
    }
    println!("{}", matrix.render());
    println!("-- hunt telemetry (per scenario × strategy cell) --");
    print!("{}", hunt_report.render());
    if let Some(path) = args.get("prom") {
        std::fs::write(path, hunt_report.to_prometheus())
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("prometheus exposition written to {path}");
    }
    if matrix.cells().iter().any(|c| c.detected()) {
        return Ok(EXIT_VIOLATION);
    }
    Ok(0)
}

/// Witness-guided hunt: try the model checker's compiled witness priors
/// first, then fall back to the unguided strategy cycle. Works for every
/// scenario (no causal trace needed — the priors come from the IR).
fn cmd_hunt_witnesses(args: &Args, scenario: &str) -> Result<i32, String> {
    use ph_scenarios::witness_bridge;
    let entry = witness_bridge::entry_for(scenario)
        .ok_or_else(|| format!("unknown scenario {scenario:?} (phtool list)"))?;
    let budget = args.get_u64("budget", 30)? as usize;
    let base_seed = args.get_u64("seed", 1)?;

    let (priors, stats) = witness_bridge::witness_plan(&entry);
    println!(
        "witness-guided hunt for {} ({} prior(s) compiled from model-check witnesses)",
        entry.name,
        priors.len()
    );
    for (i, p) in priors.iter().enumerate() {
        println!("  prior {}: {}", i + 1, p.name());
    }
    println!(
        "canonical schedule dedup: distinct_classes={} deduped_trials={}",
        stats.distinct_classes, stats.deduped_trials
    );
    match witness_bridge::first_detection_guided(&entry, budget, base_seed) {
        Some(t) => {
            println!("first detection at trial {t} of {budget} (priors lead the schedule)");
            Ok(EXIT_VIOLATION)
        }
        None => {
            println!("no detection within {budget} trials");
            Ok(0)
        }
    }
}

fn cmd_hunt(args: &Args) -> Result<i32, String> {
    let reg = registry();
    let scenario = args.get("scenario").ok_or("--scenario is required")?;
    if args.has("witnesses") {
        return cmd_hunt_witnesses(args, scenario);
    }
    let entry = lookup(&reg, scenario)?;
    let Some((labels, targets_fn)) = entry.hunt else {
        let huntable: Vec<&str> = reg
            .iter()
            .filter(|(_, e)| e.hunt.is_some())
            .map(|(n, _)| *n)
            .collect();
        return Err(format!(
            "scenario {scenario:?} is not wired for causal hunting (huntable: {huntable:?}; \
             every scenario supports --witnesses)"
        ));
    };
    let seed = args.get_u64("seed", 1)?;
    let budget = args.get_u64("budget", 20)? as usize;
    let depth = args.get_u64("depth", 8)? as usize;
    let threads = args.threads()?;

    let run_with_trace = entry.run_traced;
    let run = |strategy: &mut dyn Strategy| {
        let (report, trace) = run_with_trace(seed, strategy, Variant::Buggy);
        (
            report
                .violations
                .iter()
                .map(|v| v.details.clone())
                .collect::<Vec<_>>(),
            trace,
        )
    };
    println!("hunting {scenario} (decisions {labels:?}, depth {depth}, budget {budget})…");
    let (findings, total, census) =
        autoguide::explore_parallel(run, |_| targets_fn(), labels, depth, budget, threads);
    println!(
        "{total} candidates derived; {} distinct classes, {} deduplicated; {} tried",
        census.distinct_classes,
        census.deduped_trials,
        findings.len()
    );
    let mut found = 0;
    let mut first_violating: Option<usize> = None;
    for (i, f) in findings.iter().enumerate() {
        if f.violated {
            found += 1;
            first_violating.get_or_insert(i + 1);
            println!("✗ {}", f.candidate);
            for v in &f.violations {
                println!("    → {v}");
            }
        }
    }
    // Hunt telemetry: simulated work done across all tried candidates.
    let events: u64 = findings.iter().map(|f| f.events).sum();
    let sim_ns: u64 = findings.iter().map(|f| f.sim_ns).sum();
    let rate = events
        .saturating_mul(1_000_000_000)
        .checked_div(sim_ns)
        .unwrap_or(0);
    println!(
        "telemetry: {events} events over {:.2}s simulated ({rate} events/sim-sec); \
         first violating candidate: {}",
        sim_ns as f64 / 1e9,
        match first_violating {
            Some(i) => format!("#{i}"),
            None => "none".into(),
        }
    );
    println!("{found} violating candidate(s); re-run any with the same seed to replay");
    if found > 0 {
        return Ok(EXIT_VIOLATION);
    }
    Ok(0)
}

/// Finds the workspace root: `--root` if given, else ascend from the
/// current directory to the first `Cargo.toml` declaring `[workspace]`.
fn workspace_root(args: &Args) -> Result<std::path::PathBuf, String> {
    if let Some(root) = args.get("root") {
        let root = std::path::PathBuf::from(root);
        if !root.join("Cargo.toml").is_file() {
            return Err(format!("--root {}: no Cargo.toml there", root.display()));
        }
        return Ok(root);
    }
    let mut dir = std::env::current_dir().map_err(|e| format!("getcwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("reading {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml above the current directory (use --root)".into());
        }
    }
}

/// The static passes: the determinism lint over every workspace `.rs`
/// file, and the §4.2 hazard analysis over every scenario's access
/// summaries, cross-checked against each scenario's documented class.
/// `phtool scale` — run one mega-cluster scale point (the E10 workload):
/// a synthetic demand curve churns 10k–100k pods through the sharded slab
/// watch cache while watch consumers follow along. Output is fully
/// deterministic (no wall-clock numbers — throughput lives in
/// `cargo bench -p ph-bench --bench e10_scale`), so two invocations with
/// the same flags are byte-identical, shard count included.
fn cmd_scale(args: &Args) -> Result<i32, String> {
    let nodes = args.get_u64("nodes", 100)? as usize;
    let shards = args.get_u64("shards", 1)? as usize;
    let seed = args.get_u64("seed", 1)?;
    if nodes == 0 {
        return Err("--nodes must be at least 1".into());
    }
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    let mut params = ph_scenarios::mega_cluster::ScaleParams::for_nodes(nodes, shards);
    if let Some(pods) = args.get("pods") {
        params.pods = pods
            .parse()
            .map_err(|_| "--pods wants a number".to_string())?;
        if params.pods == 0 {
            return Err("--pods must be at least 1".into());
        }
    }
    let (report, probe) = ph_scenarios::mega_cluster::run_probed(seed, &params);
    let exit = if report.failed() { EXIT_VIOLATION } else { 0 };
    if args.has("json") {
        // The memory probe is shard-layout-dependent, so it goes to stderr:
        // stdout stays byte-identical across shard counts (CI diffs it).
        eprintln!(
            "cache probe: {} bytes over {} objects (shard-layout-dependent)",
            probe.cache_bytes, probe.cache_objects
        );
        println!("{}", report.to_json());
        return Ok(exit);
    }
    let gauge = |name: &str| {
        report
            .metrics
            .gauge_max(name)
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".into())
    };
    println!("scenario : {}", report.scenario);
    println!("seed     : {}", report.seed);
    println!("nodes    : {nodes}");
    println!("pods     : {}", params.pods);
    println!("shards   : {shards}");
    println!("events   : {}", report.trace_events);
    println!("digest   : {:#018x}", report.trace_digest);
    println!(
        "objects  : {} (peak live in the watch cache)",
        gauge("apiserver.objects")
    );
    println!(
        "peak-win : {} (window entries)",
        gauge("apiserver.window_peak")
    );
    println!(
        "bytes    : {} over {} objects (cache approx at churn end; shard-layout-dependent)",
        probe.cache_bytes, probe.cache_objects
    );
    println!(
        "churn    : {} creates, {} deletes, {} watch events delivered",
        report.metrics.counter_total("demand.pod_creates"),
        report.metrics.counter_total("demand.pod_deletes"),
        report.metrics.counter_total("watcher.events"),
    );
    Ok(exit)
}

fn cmd_lint(args: &Args) -> Result<i32, String> {
    let root = workspace_root(args)?;
    let report =
        ph_lint::scan_workspace(&root).map_err(|e| format!("scanning {}: {e}", root.display()))?;
    let table = ph_scenarios::static_crosscheck();
    let violated = report.unsuppressed_count() > 0 || !table.all_static_agree();

    // Static independence matrices over every scenario's perturbation
    // alphabet (buggy variants — the alphabets the hunts actually use).
    let matrices: Vec<(&'static str, ph_lint::independence::IndependenceMatrix)> =
        ph_scenarios::scenario_statics()
            .iter()
            .flat_map(|e| {
                ph_lint::independence::derive_all(&(e.summaries)(Variant::Buggy))
                    .into_iter()
                    .map(|m| (e.name, m))
            })
            .collect();

    if args.has("json") {
        let independence = matrices
            .iter()
            .map(|(scenario, m)| {
                format!(
                    "{{\"scenario\":\"{}\",\"matrix\":{}}}",
                    ph_lint::findings::esc(scenario),
                    m.to_json()
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        println!(
            "{{\"determinism\":{},\"hazards\":{},\"independence\":[{}]}}",
            report.to_json(),
            table.to_json(),
            independence
        );
        return Ok(if violated { EXIT_VIOLATION } else { 0 });
    }

    println!("-- determinism lint ({}) --", root.display());
    print!("{}", report.render_text());
    println!("\n-- independence matrices (perturbation alphabets, buggy variants) --");
    for (scenario, m) in &matrices {
        print!("{scenario} {}", m.render());
    }
    println!("\n-- partial-history hazards (§4.2, buggy variants) --");
    for row in &table.rows {
        for h in &row.buggy_hazards {
            println!(
                "  {}: {}/{} [{}] {}",
                row.scenario, h.component, h.action, h.class, h.detail
            );
        }
        for h in &row.fixed_hazards {
            println!(
                "  {}: FIXED VARIANT FLAGGED {}/{} [{}] {}",
                row.scenario, h.component, h.action, h.class, h.detail
            );
        }
    }
    println!("\n-- static cross-check --");
    print!("{}", table.render_text());
    if violated {
        println!("\nverdict: VIOLATION (lint findings or static/dynamic mismatch)");
        Ok(EXIT_VIOLATION)
    } else {
        println!("\nverdict: clean");
        Ok(0)
    }
}

/// `phtool check` — the symbolic side on its own: per-scenario model-check
/// verdicts (minimal witnesses on buggy variants, epoch-safety proofs on
/// fixed ones) plus the IR ↔ source conformance diff over the cluster
/// sources. Exits 3 when a buggy variant lacks a witness of its documented
/// class, a fixed variant fails to prove epoch-safe, or unsuppressed
/// conformance drift exists.
fn cmd_check(args: &Args) -> Result<i32, String> {
    use ph_lint::conformance;
    use ph_lint::findings::esc as jesc;
    use ph_lint::modelcheck::model_check_all;

    let root = workspace_root(args)?;
    let json = args.has("json");

    // Model-check every scenario's buggy and fixed summaries.
    struct ScenarioVerdict {
        name: &'static str,
        expected: ph_lint::summary::PatternClass,
        buggy: Vec<ph_lint::modelcheck::ModelCheckReport>,
        fixed: Vec<ph_lint::modelcheck::ModelCheckReport>,
    }
    let verdicts: Vec<ScenarioVerdict> = ph_scenarios::scenario_statics()
        .into_iter()
        .map(|e| ScenarioVerdict {
            name: e.name,
            expected: e.pattern,
            buggy: model_check_all(&(e.summaries)(Variant::Buggy)),
            fixed: model_check_all(&(e.summaries)(Variant::Fixed)),
        })
        .collect();

    let class_witnessed = |v: &ScenarioVerdict| {
        v.buggy
            .iter()
            .flat_map(|r| r.witnesses())
            .any(|w| w.class == v.expected)
    };
    let fixed_safe = |v: &ScenarioVerdict| v.fixed.iter().all(|r| r.is_epoch_safe());

    // IR ↔ source conformance over the cluster sources.
    let cluster_src = root.join("crates/cluster/src");
    let scans = conformance::scan_dir(&cluster_src, "crates/cluster/src")
        .map_err(|e| format!("scanning {}: {e}", cluster_src.display()))?;
    let declared = ph_cluster::topology::declared_access_summaries();
    let drift = conformance::check_conformance(&scans, &declared);
    let unsuppressed_drift = drift.iter().filter(|f| f.suppressed.is_none()).count();

    let model_ok = verdicts.iter().all(|v| class_witnessed(v) && fixed_safe(v));
    let violated = !model_ok || unsuppressed_drift > 0;

    if json {
        let mut out = String::from("{\"modelcheck\":[");
        for (i, v) in verdicts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buggy = v
                .buggy
                .iter()
                .map(|r| r.to_json())
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{{\"scenario\":\"{}\",\"expected\":\"{}\",\"class_witnessed\":{},\
                 \"fixed_epoch_safe\":{},\"buggy\":[{}]}}",
                jesc(v.name),
                v.expected.as_str(),
                class_witnessed(v),
                fixed_safe(v),
                buggy
            ));
        }
        out.push_str("],\"conformance\":{\"findings\":[");
        for (i, f) in drift.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\
                 \"suppressed\":{}}}",
                jesc(&f.rule),
                jesc(&f.file),
                f.line,
                jesc(&f.message),
                match &f.suppressed {
                    Some(r) => format!("\"{}\"", jesc(r)),
                    None => "null".into(),
                }
            ));
        }
        out.push_str(&format!(
            "],\"unsuppressed\":{unsuppressed_drift}}},\"violated\":{violated}}}"
        ));
        println!("{out}");
        return Ok(if violated { EXIT_VIOLATION } else { 0 });
    }

    println!("-- symbolic model check (witnesses / epoch-safety) --");
    for v in &verdicts {
        let states: usize = v.buggy.iter().map(|r| r.states_explored).sum();
        println!(
            "{}  expected {}  ({} state(s) explored)",
            v.name,
            v.expected.as_str(),
            states
        );
        for r in &v.buggy {
            for w in r.witnesses() {
                println!("  buggy  witness: {}", w.render());
            }
        }
        for r in &v.fixed {
            if r.is_epoch_safe() {
                println!("  fixed  {}: epoch-safe (all actions)", r.component);
            } else {
                for w in r.witnesses() {
                    println!("  fixed  UNEXPECTED witness: {}", w.render());
                }
            }
        }
        if !class_witnessed(v) {
            println!("  MISMATCH: no witness of the documented class");
        }
    }

    println!(
        "\n-- IR ↔ source conformance ({}) --",
        cluster_src.display()
    );
    if drift.is_empty() {
        println!(
            "zero drift: {} impl(s) scanned against {} declared summaries",
            scans.iter().map(|s| s.components.len()).sum::<usize>(),
            declared.len()
        );
    } else {
        for f in &drift {
            match &f.suppressed {
                Some(reason) => println!(
                    "allowed   {}:{} [{}] {} (reason: {})",
                    f.file, f.line, f.rule, f.message, reason
                ),
                None => println!("drift     {}:{} [{}] {}", f.file, f.line, f.rule, f.message),
            }
        }
    }

    if violated {
        println!("\nverdict: VIOLATION (model-check mismatch or conformance drift)");
        Ok(EXIT_VIOLATION)
    } else {
        println!("\nverdict: clean");
        Ok(0)
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        std::process::exit(2);
    };
    let result = match cmd.as_str() {
        "list" => {
            cmd_list();
            Ok(0)
        }
        "run" => Args::parse(rest).and_then(|a| cmd_run(&a)),
        "explain" => Args::parse(rest).and_then(|a| cmd_explain(&a)),
        "report" => Args::parse(rest).and_then(|a| cmd_report(&a)),
        "matrix" => Args::parse(rest).and_then(|a| cmd_matrix(&a)),
        "hunt" => Args::parse(rest).and_then(|a| cmd_hunt(&a)),
        "scale" => Args::parse(rest).and_then(|a| cmd_scale(&a)),
        "lint" => Args::parse(rest).and_then(|a| cmd_lint(&a)),
        "check" => Args::parse(rest).and_then(|a| cmd_check(&a)),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(0)
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    };
    match result {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
