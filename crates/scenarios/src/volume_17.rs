//! The volume-controller bug — reference \[17\] of the paper (§4.2.3's
//! worked example, and the template for cassandra-operator-398).
//!
//! "The controller only learns of the state of the system via sparse reads
//! of its local view S′. The bug happens when the pod is marked for
//! deletion (e1) and subsequently deleted (e2) between two sparse reads of
//! S′ by the controller. The controller therefore does not learn of the pod
//! deletion (as the logic expects to see e1) and does not release the
//! storage volumes of the deleted pod."
//!
//! The guided injection drops exactly e1 (the termination-mark update) on
//! its way to the volume controller: its view `S′` goes straight from
//! "p1 alive" to "p1 gone" — e1 became unobservable — and the MarkOnly
//! controller leaks the PVC.
//!
//! * **buggy** — `VcMode::MarkOnly` (release only on an observed mark);
//! * **fixed** — `VcMode::FreshOrphan` (orphan sweep confirmed by quorum
//!   reads).
//!
//! Schedule: `1.0s` seed node + pvc `v1` + pod `p1` → `2.0s` graceful
//! delete of `p1` (kubelet stops, waits grace, finalizes) → `5.0s` end.

use ph_cluster::controllers::VcMode;
use ph_cluster::objects::Object;
use ph_cluster::topology::ClusterConfig;
use ph_core::harness::RunReport;
use ph_core::perturb::Strategy;
use ph_sim::Duration;

use crate::common::{Runner, Variant};
use crate::oracles;
use crate::strategies::{DropMatching, EventSelector, TargetRef};

/// Scenario name used in reports and matrices.
pub const NAME: &str = "volume-ctrl-17";

/// The tuned §7 observability-gap injection: drop pod `p1`'s
/// termination-mark notification to the volume controller (components:
/// kubelet-1, kubelet-2, volume-controller → index 2).
pub fn guided(_seed: u64) -> Box<dyn Strategy> {
    Box::new(DropMatching {
        dst: TargetRef::Component(2),
        selector: EventSelector::termination_mark_of("pods/p1"),
        from: Duration::millis(1500),
        max: 4,
    })
}

/// The §4.2 pattern class this scenario's buggy variant exercises.
pub const PATTERN: ph_lint::summary::PatternClass =
    ph_lint::summary::PatternClass::ObservabilityGap;

/// What the blame slicer needs to know: the volume controller must release
/// the PVC (`vc.release_pvc`); in the buggy run it never does — an omission
/// sink — because the termination mark was dropped from its apiserver feed.
pub fn blame_spec() -> ph_core::provenance::BlameSpec {
    ph_core::provenance::BlameSpec {
        scenario: NAME,
        component: "volume-controller",
        action_labels: &["vc.release_pvc"],
        caches: &["apiserver-1", "apiserver-2"],
    }
}

/// The cluster this scenario spawns (shared by [`run`] and the static
/// hazard pass, so the analysis sees exactly what executes).
fn cluster_config(variant: Variant) -> ClusterConfig {
    let mode = if variant.is_buggy() {
        VcMode::MarkOnly
    } else {
        VcMode::FreshOrphan
    };
    ClusterConfig {
        store_nodes: 3,
        apiservers: 2,
        nodes: vec!["node-1".into(), "node-2".into()],
        volume_controller: Some(mode),
        ..ClusterConfig::default()
    }
}

/// Static access summaries of the focal component (the volume controller,
/// whose mark-only release path is the observability-gap vector).
pub fn access_summaries(variant: Variant) -> Vec<ph_lint::summary::AccessSummary> {
    ph_cluster::topology::access_summaries(&cluster_config(variant))
        .into_iter()
        .filter(|s| s.component == "volume-controller")
        .collect()
}

/// Runs one trial under `strategy`.
pub fn run(seed: u64, strategy: &mut dyn Strategy, variant: Variant) -> RunReport {
    run_with_trace(seed, strategy, variant).0
}

/// Like [`run`], but also returns the full trace (consumed by the
/// causality-guided auto-explorer).
pub fn run_with_trace(
    seed: u64,
    strategy: &mut dyn Strategy,
    variant: Variant,
) -> (RunReport, ph_sim::Trace) {
    let cfg = cluster_config(variant);
    let mut runner = Runner::new(NAME, seed, &cfg, Duration::secs(1), Duration::secs(5));
    runner.seed(&Object::node("node-1"));
    runner.seed(&Object::node("node-2"));
    runner.seed(&Object::pvc("v1", "p1"));
    runner.seed(&Object::pod("p1", Some("node-1".into()), Some("v1".into())));

    strategy.setup(&mut runner.world, &runner.targets);
    runner.drive(strategy, Duration::secs(2), Duration::millis(10));

    // Graceful deletion: e1 = the termination mark; the kubelet stops the
    // containers, waits the grace period, then finalizes (e2 = deletion).
    let mut marked = Object::pod("p1", Some("node-1".into()), Some("v1".into()));
    marked.meta.deletion_timestamp = Some(runner.world.now().nanos());
    runner.seed(&marked);

    runner.drive(strategy, Duration::secs(5), Duration::millis(10));
    let cluster = runner.cluster.clone();
    let mut oracles: Vec<Box<dyn ph_core::oracle::Oracle>> = vec![
        oracles::no_orphan_pvcs(cluster.clone()),
        oracles::no_wrongful_pvc_delete(cluster),
    ];
    let (mut report, trace) =
        runner.finish_with_trace(strategy, Duration::millis(500), &mut oracles);
    report.attach_blame(&trace, &blame_spec());
    (report, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_core::perturb::NoFault;

    #[test]
    fn unobservable_mark_leaks_the_pvc() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Buggy);
        assert!(report.failed(), "expected the PVC to leak");
        assert!(
            report.violations.iter().any(|v| v.details.contains("v1")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn fresh_orphan_sweep_survives_the_same_drop() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Fixed);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn no_fault_run_is_clean_even_when_buggy() {
        let mut strategy = NoFault;
        let report = run(1, &mut strategy, Variant::Buggy);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }
}
