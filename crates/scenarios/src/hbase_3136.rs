//! HBASE-3136 / HBASE-3137 — stale reads from a ZooKeeper-like follower
//! break atomic compare-and-set region transitions (§4.2.1).
//!
//! "HBase runs region transitions using atomic compare-and-set operations
//! which read cached states at a ZooKeeper server, and staleness in the
//! cached states fails atomic region changes."
//!
//! A [`RegionManager`] drives each region through a state cycle: read the
//! region znode, then CAS it forward using the read's version. The
//! **buggy** manager reads *serializably from its local follower* (fast,
//! possibly stale — the pre-fix HBase behaviour); under replication lag the
//! CAS version is stale, the CAS fails, and the transition aborts. The
//! **fixed** manager forces a sync (linearizable read) before every CAS —
//! HBASE-3136's fix — which eliminates the aborts but pays a quorum
//! round-trip per transition: the HBASE-3137 regression measured by the
//! `e1_hbase_tradeoff` bench.
//!
//! The guided staleness injection delays the Raft replication stream to the
//! manager's follower by 90 ms (just under the election timeout, so
//! leadership is undisturbed), giving the follower a steady ~90 ms lag —
//! longer than the 50 ms transition interval.

use ph_core::harness::RunReport;
use ph_core::oracle::check_all;
use ph_core::perturb::{StalenessInjector, Strategy, Targets};
use ph_sim::{Actor, ActorId, AnyMsg, Ctx, Duration, SimTime, TimerId, World, WorldConfig};
use ph_store::msgs::Expect;
use ph_store::node::StoreNodeConfig;
use ph_store::{
    spawn_store_cluster, Completion, OpError, OpResult, ReadLevel, StoreClient, StoreClientConfig,
    Value,
};

use crate::common::Variant;
use crate::oracles;

/// Scenario name used in reports and matrices.
pub const NAME: &str = "hbase-3136";

const TAG_TICK: u64 = 1;
const TAG_NEXT: u64 = 2;

/// The §4.2 pattern class this scenario's buggy variant exercises.
pub const PATTERN: ph_lint::summary::PatternClass = ph_lint::summary::PatternClass::Staleness;

/// What the blame slicer needs to know: the region manager aborts a region
/// (`hbase.aborted`) after a CAS built on a stale follower read; its view
/// caches are the store nodes themselves (replication is the update feed).
pub fn blame_spec() -> ph_core::provenance::BlameSpec {
    ph_core::provenance::BlameSpec {
        scenario: NAME,
        component: "region-manager",
        action_labels: &["hbase.aborted"],
        caches: &["store-0", "store-1", "store-2"],
    }
}

/// Static access summary of the region manager.
///
/// This scenario has no informer stack, so the summary is written by hand:
/// the manager's "view" is one point read per transition — serializable
/// from its local follower (buggy, `ReadKind::Cache`) or linearizable
/// (fixed, `ReadKind::Quorum`). The CAS carries an `Expect::ModRev`
/// precondition, but that fence only protects the *write*: the manager
/// treats a failed CAS as a permanently broken assignment and abandons the
/// region, so the destructive abandon decision consumes the possibly-stale
/// read unfenced — which is exactly HBASE-3136's failure mode.
pub fn access_summaries(variant: Variant) -> Vec<ph_lint::summary::AccessSummary> {
    use ph_lint::summary::{AccessSummary, ActionDecl, Gate, GatePath, ReadKind, ViewDecl};
    vec![AccessSummary {
        component: "region-manager".into(),
        upstream_switch: false,
        views: vec![ViewDecl {
            resource: "regions".into(),
            list: if variant.is_buggy() {
                ReadKind::Cache
            } else {
                ReadKind::Quorum
            },
            watch: false,
            relist_on_gap: false,
            periodic_resync: false,
            event_replay: false,
            congestible: false,
        }],
        actions: vec![ActionDecl {
            name: "cas-region-transition".into(),
            destructive: true,
            paths: vec![GatePath::new(
                "read-then-cas",
                vec![Gate::CachePresence("regions".into())],
            )],
        }],
    }]
}

/// Drives region state transitions with read-then-CAS cycles against the
/// store — the ZKAssign analog.
#[derive(Debug)]
pub struct RegionManager {
    client: StoreClient,
    regions: Vec<String>,
    interval: Duration,
    /// `true` = sync (linearizable read) before every CAS — the fix.
    fixed: bool,
    /// req → region, for reads awaiting a response.
    pending_read: std::collections::BTreeMap<u64, String>,
    /// req → region, for CAS writes awaiting a response.
    pending_cas: std::collections::BTreeMap<u64, String>,
    /// Regions whose transition aborted (the buggy manager gives up on
    /// them, as ZKAssign gave up on broken assignments).
    broken: std::collections::BTreeSet<String>,
    /// Completed transitions per region.
    pub transitions: std::collections::BTreeMap<String, u64>,
    seeded: bool,
}

impl RegionManager {
    /// Creates a manager for `n` regions, reading through `client`
    /// (configure the client's affinity to pick the follower it trusts).
    pub fn new(client: StoreClient, n: usize, interval: Duration, fixed: bool) -> RegionManager {
        RegionManager {
            client,
            regions: (0..n).map(|i| format!("regions/r{i}")).collect(),
            interval,
            fixed,
            pending_read: std::collections::BTreeMap::new(),
            pending_cas: std::collections::BTreeMap::new(),
            broken: std::collections::BTreeSet::new(),
            transitions: std::collections::BTreeMap::new(),
            seeded: false,
        }
    }

    /// Total completed transitions.
    pub fn total_transitions(&self) -> u64 {
        self.transitions.values().sum()
    }

    /// Regions whose assignment broke on a stale CAS.
    pub fn broken_regions(&self) -> usize {
        self.broken.len()
    }

    fn busy(&self, region: &str) -> bool {
        self.pending_read.values().any(|r| r == region)
            || self.pending_cas.values().any(|r| r == region)
    }

    fn start_transitions(&mut self, ctx: &mut Ctx) {
        let level = if self.fixed {
            ReadLevel::Linearizable
        } else {
            ReadLevel::Serializable
        };
        let todo: Vec<String> = self
            .regions
            .iter()
            .filter(|r| !self.broken.contains(*r) && !self.busy(r))
            .cloned()
            .collect();
        for region in todo {
            let req = self.client.read(region.clone(), level, ctx);
            self.pending_read.insert(req, region);
        }
    }

    fn on_completion(&mut self, c: Completion, ctx: &mut Ctx) {
        let Completion::OpDone { req, result } = c else {
            return;
        };
        if let Some(region) = self.pending_read.remove(&req) {
            if let Ok(OpResult::Read { kvs, .. }) = result {
                let Some(kv) = kvs.into_iter().next() else {
                    return; // region missing (not yet replicated) — retry next tick
                };
                let state: u64 = std::str::from_utf8(&kv.value)
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0);
                let next = Value::copy_from_slice((state + 1).to_string().as_bytes());
                let req =
                    self.client
                        .cas_put(kv.key.clone(), next, Expect::ModRev(kv.mod_revision), ctx);
                self.pending_cas.insert(req, region);
            }
            return;
        }
        if let Some(region) = self.pending_cas.remove(&req) {
            match result {
                Ok(_) => {
                    *self.transitions.entry(region.clone()).or_insert(0) += 1;
                    ctx.annotate("hbase.transition", region);
                    // Closed loop with a short think time: throughput then
                    // reflects the read path's latency (the HBASE-3137
                    // measurement) without racing the replication stream.
                    ctx.set_timer(Duration::millis(5), TAG_NEXT);
                }
                Err(OpError::CasFailed { .. }) => {
                    // The atomic region change broke on a stale version —
                    // HBASE-3136. The manager gives the region up.
                    ctx.annotate("hbase.aborted", region.clone());
                    self.broken.insert(region);
                }
                Err(_) => {}
            }
        }
    }
}

impl Actor for RegionManager {
    fn on_start(&mut self, ctx: &mut Ctx) {
        if !self.seeded {
            self.seeded = true;
            for region in self.regions.clone() {
                self.client.put(region, Value::from_static(b"0"), ctx);
            }
        }
        ctx.set_timer(self.interval, TAG_TICK);
    }

    fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
        let mut completions = Vec::new();
        if self.client.on_message(from, &msg, ctx, &mut completions) {
            for c in completions {
                self.on_completion(c, ctx);
            }
        }
    }

    fn on_timer(&mut self, _t: TimerId, tag: u64, ctx: &mut Ctx) {
        match tag {
            TAG_TICK => {
                self.client.tick(ctx);
                self.start_transitions(ctx);
                ctx.set_timer(self.interval, TAG_TICK);
            }
            TAG_NEXT => self.start_transitions(ctx),
            _ => {}
        }
    }
}

/// The tuned §4.2.1 staleness injection: delay the Raft stream to the
/// manager's follower by 90 ms (`caches[0]` in this scenario's targets).
pub fn guided(_seed: u64) -> Box<dyn Strategy> {
    Box::new(StalenessInjector {
        cache: 0,
        delay: Duration::millis(90),
        after: Duration::millis(1500),
    })
}

/// Runs one trial under `strategy`.
///
/// Targets: `caches[0]` = the follower the manager reads from;
/// `notify_kinds` = the Raft replication stream (`RaftWire`) — at the store
/// layer, replication *is* the view-update feed.
pub fn run(seed: u64, strategy: &mut dyn Strategy, variant: Variant) -> RunReport {
    run_with_trace(seed, strategy, variant).0
}

/// Like [`run`], but also returns the full trace (consumed by the blame
/// slicer and the causality-guided auto-explorer).
pub fn run_with_trace(
    seed: u64,
    strategy: &mut dyn Strategy,
    variant: Variant,
) -> (RunReport, ph_sim::Trace) {
    let mut world = World::new(WorldConfig::default(), seed);
    let cluster = spawn_store_cluster(&mut world, 3, StoreNodeConfig::default());
    let leader = cluster
        .wait_for_leader(&mut world, SimTime(Duration::secs(1).as_nanos()))
        .expect("leader");
    world.run_until(SimTime(Duration::secs(1).as_nanos()));
    let follower = *cluster
        .nodes
        .iter()
        .find(|&&n| n != leader)
        .expect("follower");
    let follower_idx = cluster.nodes.iter().position(|&n| n == follower).unwrap();

    let mut scc = StoreClientConfig::new(cluster.nodes.clone());
    scc.affinity = Some(follower_idx);
    let manager = world.spawn(
        "region-manager",
        RegionManager::new(
            StoreClient::new(scc),
            4,
            Duration::millis(50),
            !variant.is_buggy(),
        ),
    );

    let targets = Targets {
        store_nodes: cluster.nodes.clone(),
        caches: [follower].into(),
        components: [manager].into(),
        notify_kinds: ["RaftWire".to_string()].into(),
        horizon: Duration::secs(5),
    };

    strategy.setup(&mut world, &targets);
    let end = SimTime(Duration::secs(5).as_nanos());
    while world.now() < end {
        let step = SimTime((world.now() + Duration::millis(10)).0.min(end.0));
        world.run_until(step);
        strategy.tick(&mut world, &targets);
    }
    strategy.teardown(&mut world);
    world.run_for(Duration::millis(500));

    let mut oracles: Vec<Box<dyn ph_core::oracle::Oracle>> =
        vec![oracles::no_aborted_transitions()];
    let violations = check_all(&mut oracles, &world);
    // Store-level scenario: no informer stack to sample, but the follower
    // the manager reads from is itself a view of the leader's history.
    let mut divergence = ph_core::divergence::DivergenceSummary::new();
    if let (Some(l), Some(f)) = (
        world.actor_ref::<ph_store::StoreNode>(leader),
        world.actor_ref::<ph_store::StoreNode>(follower),
    ) {
        let lag = l.mvcc().revision().0.saturating_sub(f.mvcc().revision().0);
        divergence.record(world.name_of(follower), lag);
    }
    let mut report = RunReport {
        scenario: NAME.into(),
        strategy: strategy.name(),
        seed,
        violations,
        sim_time: world.now(),
        trace_events: world.trace().len(),
        trace_digest: world.trace().digest(),
        metrics: world.metrics_report(),
        divergence,
        blame: None,
    };
    let trace = world.take_trace();
    report.attach_blame(&trace, &blame_spec());
    (report, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_core::perturb::NoFault;

    #[test]
    fn follower_lag_breaks_buggy_cas_transitions() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Buggy);
        assert!(report.failed(), "expected stale-CAS aborts");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.details.contains("regions/")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn sync_before_cas_survives_the_same_lag() {
        let mut strategy = guided(1);
        let report = run(1, strategy.as_mut(), Variant::Fixed);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn no_fault_run_is_clean_even_when_buggy() {
        let mut strategy = NoFault;
        let report = run(1, &mut strategy, Variant::Buggy);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }
}
