//! Ground-truth oracles for the cluster scenarios.
//!
//! These read the store's authoritative `(H, S)` through the
//! [`ClusterHandle`] and the run trace, so they judge what *actually*
//! happened, not what any component believed.

use ph_cluster::objects::{Body, Object, PodPhase};
use ph_cluster::topology::ClusterHandle;
use ph_core::oracle::{FnOracle, Oracle, UniqueExecutionOracle};
use ph_sim::World;
use ph_store::kv::KvEvent;

/// No pod may run on two nodes at once (the Kubernetes-59848 guarantee).
/// Consumes the kubelets' `kubelet.pod_start` / `kubelet.pod_stop`
/// annotations.
pub fn unique_pod_execution() -> Box<dyn Oracle> {
    Box::new(UniqueExecutionOracle::new(
        "kubelet.pod_start",
        "kubelet.pod_stop",
    ))
}

/// Every PVC in the final ground truth must have a live owner pod —
/// a PVC without one was leaked (bugs \[17\] and 398).
pub fn no_orphan_pvcs(cluster: ClusterHandle) -> Box<dyn Oracle> {
    Box::new(FnOracle::new("no-orphan-pvcs", move |world: &World| {
        let s = cluster.ground_truth(world);
        s.values()
            .filter(|o| o.kind() == ph_cluster::ObjectKind::Pvc)
            .filter_map(|pvc| {
                let owner = pvc.meta.owner.as_deref()?;
                if s.contains_key(&format!("pods/{owner}")) {
                    None
                } else {
                    Some(format!(
                        "pvc {} leaked: owner pod {owner} is gone",
                        pvc.meta.name
                    ))
                }
            })
            .collect()
    }))
}

/// No PVC may ever be deleted while its owner pod is alive and *not*
/// terminating (bug 402; releasing the storage of a pod that has been
/// marked for deletion is the controller's job, not a violation).
/// Replays the ground-truth history `H` and checks, at each PVC deletion
/// revision, the owner pod's state at that instant.
pub fn no_wrongful_pvc_delete(cluster: ClusterHandle) -> Box<dyn Oracle> {
    Box::new(FnOracle::new(
        "no-wrongful-pvc-delete",
        move |world: &World| {
            let history = cluster.ground_history(world);
            // pod key → currently terminating?
            let mut pods: std::collections::BTreeMap<String, bool> =
                std::collections::BTreeMap::new();
            let mut out = Vec::new();
            for ev in &history {
                match ev.as_ref() {
                    KvEvent::Put { kv, .. } => {
                        if kv.key.as_str().starts_with("pods/") {
                            let terminating = Object::from_kv(kv)
                                .map(|o| o.is_terminating())
                                .unwrap_or(false);
                            pods.insert(kv.key.as_str().to_string(), terminating);
                        }
                    }
                    KvEvent::Delete {
                        key,
                        revision,
                        prev,
                    } => {
                        if key.as_str().starts_with("pods/") {
                            pods.remove(key.as_str());
                        } else if key.as_str().starts_with("pvcs/") {
                            let owner = prev
                                .as_ref()
                                .and_then(|kv| Object::from_kv(kv).ok())
                                .and_then(|o| o.meta.owner);
                            if let Some(owner) = owner {
                                if pods.get(&format!("pods/{owner}")) == Some(&false) {
                                    out.push(format!(
                                        "pvc {key} deleted at {revision} while owner pod \
                                         {owner} was alive"
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            out
        },
    ))
}

/// Every live, non-terminating pod must end the run `Running` and bound to
/// a node that exists (Kubernetes-56261's liveness: no pod stuck pending on
/// a ghost node).
pub fn all_pods_running(cluster: ClusterHandle) -> Box<dyn Oracle> {
    Box::new(FnOracle::new("all-pods-running", move |world: &World| {
        let s = cluster.ground_truth(world);
        s.values()
            .filter_map(|o| {
                if o.is_terminating() {
                    return None;
                }
                let Body::Pod { node, phase, .. } = &o.body else {
                    return None;
                };
                match node {
                    None => Some(format!("pod {} never scheduled", o.meta.name)),
                    Some(n) if !s.contains_key(&format!("nodes/{n}")) => {
                        Some(format!("pod {} bound to nonexistent node {n}", o.meta.name))
                    }
                    Some(_) if *phase != PodPhase::Running => {
                        Some(format!("pod {} stuck in {:?}", o.meta.name, phase))
                    }
                    Some(_) => None,
                }
            })
            .collect()
    }))
}

/// A Cassandra datacenter must converge to its desired size (bug 400's
/// liveness: scale-down must not wedge).
pub fn cassdc_converged(cluster: ClusterHandle, dc: &str, desired: u32) -> Box<dyn Oracle> {
    let dc = dc.to_string();
    Box::new(FnOracle::new("cassdc-converged", move |world: &World| {
        let s = cluster.ground_truth(world);
        let live = s
            .values()
            .filter(|o| {
                o.kind() == ph_cluster::ObjectKind::Pod
                    && o.meta.owner.as_deref() == Some(dc.as_str())
                    && !o.is_terminating()
            })
            .count() as u32;
        if live == desired {
            Vec::new()
        } else {
            vec![format!(
                "datacenter {dc} has {live} pods, wants {desired} — scale blocked"
            )]
        }
    }))
}

/// No region transition may abort on a stale CAS (HBASE-3136: the region
/// manager annotates `hbase.aborted` when it gives up on a transition).
pub fn no_aborted_transitions() -> Box<dyn Oracle> {
    Box::new(FnOracle::new(
        "no-aborted-transitions",
        move |world: &World| {
            world
                .trace()
                .annotations("hbase.aborted")
                .map(|(actor, data)| format!("{} aborted transition: {data}", world.name_of(actor)))
                .collect()
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_cluster::topology::{spawn_cluster, ClusterConfig};
    use ph_sim::{Duration, SimTime, WorldConfig};

    fn ready_cluster(seed: u64) -> (World, ClusterHandle) {
        let mut world = World::new(WorldConfig::default(), seed);
        let cluster = spawn_cluster(&mut world, &ClusterConfig::default());
        assert!(cluster.wait_ready(&mut world, SimTime(Duration::secs(2).as_nanos())));
        (world, cluster)
    }

    fn seed_obj(world: &mut World, cluster: &ClusterHandle, obj: &Object) {
        let dl = SimTime(world.now().0 + Duration::secs(5).as_nanos());
        cluster.create_object(world, obj, dl).expect("seed");
    }

    #[test]
    fn orphan_pvc_is_flagged_only_without_owner() {
        let (mut world, cluster) = ready_cluster(51);
        seed_obj(&mut world, &cluster, &Object::pvc("v1", "p1"));
        let mut oracle = no_orphan_pvcs(cluster.clone());
        let v = oracle.check(&world);
        assert_eq!(v.len(), 1, "no owner yet: leaked");
        assert!(v[0].details.contains("v1"));
        seed_obj(
            &mut world,
            &cluster,
            &Object::pod("p1", Some("node-1".into()), Some("v1".into())),
        );
        assert!(oracle.check(&world).is_empty(), "owner exists now");
    }

    #[test]
    fn wrongful_delete_needs_live_owner_at_delete_time() {
        let (mut world, cluster) = ready_cluster(52);
        seed_obj(&mut world, &cluster, &Object::pvc("v1", "p1"));
        seed_obj(
            &mut world,
            &cluster,
            &Object::pod("p1", None, Some("v1".into())),
        );
        // Delete the PVC while p1 is alive: wrongful.
        let dl = SimTime(world.now().0 + Duration::secs(5).as_nanos());
        assert!(cluster.delete_key(&mut world, "pvcs/v1", dl));
        let mut oracle = no_wrongful_pvc_delete(cluster.clone());
        let v = oracle.check(&world);
        assert_eq!(v.len(), 1);
        assert!(v[0].details.contains("while owner pod p1 was alive"));

        // Counter-case: delete pod first, then pvc → fine.
        let (mut world, cluster) = ready_cluster(53);
        seed_obj(&mut world, &cluster, &Object::pvc("v1", "p1"));
        seed_obj(
            &mut world,
            &cluster,
            &Object::pod("p1", None, Some("v1".into())),
        );
        let dl = SimTime(world.now().0 + Duration::secs(5).as_nanos());
        assert!(cluster.delete_key(&mut world, "pods/p1", dl));
        assert!(cluster.delete_key(&mut world, "pvcs/v1", dl));
        let mut oracle = no_wrongful_pvc_delete(cluster);
        assert!(oracle.check(&world).is_empty());
    }

    #[test]
    fn pods_running_oracle_catches_ghost_bindings() {
        let (mut world, cluster) = ready_cluster(54);
        seed_obj(&mut world, &cluster, &Object::node("node-1"));
        // Unscheduled pod.
        seed_obj(&mut world, &cluster, &Object::pod("p1", None, None));
        // Pod on a ghost node.
        seed_obj(
            &mut world,
            &cluster,
            &Object::pod("p2", Some("ghost".into()), None),
        );
        let mut oracle = all_pods_running(cluster.clone());
        let v = oracle.check(&world);
        assert_eq!(v.len(), 2);
        assert!(v.iter().any(|x| x.details.contains("never scheduled")));
        assert!(v.iter().any(|x| x.details.contains("nonexistent node")));
    }

    #[test]
    fn cassdc_convergence_counts_live_pods() {
        let (mut world, cluster) = ready_cluster(55);
        let mut pod = Object::pod("dc1-0", None, None);
        pod.meta.owner = Some("dc1".into());
        seed_obj(&mut world, &cluster, &pod);
        let mut oracle = cassdc_converged(cluster.clone(), "dc1", 2);
        assert_eq!(oracle.check(&world).len(), 1, "1 != 2");
        let mut pod = Object::pod("dc1-1", None, None);
        pod.meta.owner = Some("dc1".into());
        seed_obj(&mut world, &cluster, &pod);
        assert!(oracle.check(&world).is_empty());
    }
}
