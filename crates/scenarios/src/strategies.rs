//! Payload-aware perturbation strategies.
//!
//! The generic `ph-core` injectors match messages by *kind*; the strategies
//! here additionally inspect cluster payloads (which object a notification
//! concerns) and the trace (which decision a component just advertised).
//! They are what §7 calls perturbing "events that are causally related to a
//! component's action" — made precise by the deterministic simulator.

use ph_cluster::api::ApiWatchEvent;
use ph_cluster::objects::Object;
use ph_core::canon::PlannedOp;
use ph_core::perturb::{Strategy, Targets};
use ph_lint::modelcheck::Letter;
use ph_sim::{ActorId, Duration, Envelope, SimTime, TraceEventKind, Verdict, World};
use ph_store::kv::KvEvent;
use ph_store::msgs::WatchNotify;

/// Returns the object keys named by a view-update envelope, at either layer
/// (store→apiserver `WatchNotify` or apiserver→component `ApiWatchEvent`),
/// each with `(key, is_delete, has_deletion_timestamp)`.
pub fn notify_keys(env: &Envelope) -> Vec<(String, bool, bool)> {
    let mut out = Vec::new();
    if let Some(n) = env.msg.downcast_ref::<WatchNotify>() {
        for e in &n.events {
            let (del, dt) = match e.as_ref() {
                KvEvent::Put { kv, .. } => (
                    false,
                    Object::decode(&kv.value)
                        .map(|o| o.is_terminating())
                        .unwrap_or(false),
                ),
                KvEvent::Delete { .. } => (true, false),
            };
            out.push((e.key().as_str().to_string(), del, dt));
        }
    }
    if let Some(n) = env.msg.downcast_ref::<ApiWatchEvent>() {
        for e in &n.events {
            let dt = e
                .value
                .as_ref()
                .and_then(|v| Object::decode(v).ok())
                .map(|o| o.is_terminating())
                .unwrap_or(false);
            out.push((e.key.clone(), e.is_delete(), dt));
        }
    }
    out
}

/// How a scenario strategy names its target actor before the world exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetRef {
    /// Index into [`Targets::caches`] (the apiservers).
    Cache(usize),
    /// Index into [`Targets::components`].
    Component(usize),
    /// A concrete actor id (when the scenario resolved it already).
    Actor(ActorId),
}

impl TargetRef {
    /// A stable textual anchor for canonical-schedule fingerprints.
    fn token(self) -> String {
        match self {
            TargetRef::Cache(i) => format!("cache:{i}"),
            TargetRef::Component(i) => format!("component:{i}"),
            TargetRef::Actor(a) => format!("actor:{a}"),
        }
    }

    /// Resolves against the target map.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range index.
    pub fn resolve(self, targets: &Targets) -> ActorId {
        match self {
            TargetRef::Cache(i) => targets.caches[i],
            TargetRef::Component(i) => targets.components[i],
            TargetRef::Actor(a) => a,
        }
    }
}

/// What [`DropMatching`] / [`HoldMatching`] look for in a notification.
#[derive(Debug, Clone)]
pub struct EventSelector {
    /// Match events whose key contains this substring.
    pub key_contains: String,
    /// If `Some(true)`, only deletions; `Some(false)`, only puts.
    pub deletes: Option<bool>,
    /// If `Some(true)`, only puts that set a deletion timestamp.
    pub with_deletion_timestamp: Option<bool>,
}

impl EventSelector {
    /// A stable textual anchor for canonical-schedule fingerprints; every
    /// field that changes which events match appears in it.
    fn token(&self) -> String {
        format!(
            "key~{:?}/del:{:?}/dt:{:?}",
            self.key_contains, self.deletes, self.with_deletion_timestamp
        )
    }

    /// Any event touching a key containing `key`.
    #[must_use]
    pub fn key(key: impl Into<String>) -> EventSelector {
        EventSelector {
            key_contains: key.into(),
            deletes: None,
            with_deletion_timestamp: None,
        }
    }

    /// Only deletions of matching keys.
    #[must_use]
    pub fn deletes_of(key: impl Into<String>) -> EventSelector {
        EventSelector {
            key_contains: key.into(),
            deletes: Some(true),
            with_deletion_timestamp: None,
        }
    }

    /// Only the "marked for deletion" update of matching keys.
    #[must_use]
    pub fn termination_mark_of(key: impl Into<String>) -> EventSelector {
        EventSelector {
            key_contains: key.into(),
            deletes: Some(false),
            with_deletion_timestamp: Some(true),
        }
    }

    fn matches(&self, env: &Envelope) -> bool {
        notify_keys(env).iter().any(|(key, del, dt)| {
            key.contains(&self.key_contains)
                && self.deletes.map_or(true, |want| *del == want)
                && self
                    .with_deletion_timestamp
                    .map_or(true, |want| *dt == want)
        })
    }
}

/// Silently drops view-update notifications matching a selector on their way
/// to one destination — the precise observability-gap injector.
#[derive(Debug, Clone)]
pub struct DropMatching {
    /// Destination actor.
    pub dst: TargetRef,
    /// What to drop.
    pub selector: EventSelector,
    /// Start dropping at this absolute sim time.
    pub from: Duration,
    /// Maximum number of messages to drop (`u64::MAX` = unlimited).
    pub max: u64,
}

impl Strategy for DropMatching {
    fn name(&self) -> String {
        format!("obs-gap(drop {:?})", self.selector.key_contains)
    }

    fn planned_schedule(&self) -> Option<Vec<PlannedOp>> {
        Some(vec![PlannedOp::new(
            Letter::DropNotification(self.dst.token()),
            format!(
                "{}@{}ns*{}",
                self.selector.token(),
                self.from.as_nanos(),
                self.max
            ),
        )])
    }

    fn setup(&mut self, world: &mut World, targets: &Targets) {
        let dst = self.dst.resolve(targets);
        let selector = self.selector.clone();
        let from = SimTime(self.from.as_nanos());
        let mut left = self.max;
        world.set_interceptor(move |env: &Envelope, now: SimTime| {
            if now >= from && env.dst == dst && left > 0 && selector.matches(env) {
                left -= 1;
                Verdict::Drop
            } else {
                Verdict::Pass
            }
        });
    }
}

/// Holds every view-update notification matching a selector on its way to
/// one destination, from a given time onward — freezing that destination's
/// knowledge of the selected objects while the rest of its view advances.
/// Held messages are released at teardown (or [`Strategy::tick`] past
/// `release_at`).
#[derive(Debug, Clone)]
pub struct HoldMatching {
    /// Destination actor.
    pub dst: TargetRef,
    /// What to freeze.
    pub selector: EventSelector,
    /// Start holding at this absolute sim time.
    pub from: Duration,
    /// Release the backlog at this absolute time (`None` = at teardown).
    pub release_at: Option<Duration>,
    /// Internal: released yet?
    released: bool,
}

impl HoldMatching {
    /// Creates the injector.
    #[must_use]
    pub fn new(
        dst: TargetRef,
        selector: EventSelector,
        from: Duration,
        release_at: Option<Duration>,
    ) -> HoldMatching {
        HoldMatching {
            dst,
            selector,
            from,
            release_at,
            released: false,
        }
    }
}

impl Strategy for HoldMatching {
    fn name(&self) -> String {
        format!("staleness(hold {:?})", self.selector.key_contains)
    }

    fn planned_schedule(&self) -> Option<Vec<PlannedOp>> {
        Some(vec![PlannedOp::new(
            Letter::DelayCache(self.dst.token()),
            format!(
                "{}@{}ns..{}",
                self.selector.token(),
                self.from.as_nanos(),
                match self.release_at {
                    Some(r) => format!("{}ns", r.as_nanos()),
                    None => "teardown".to_string(),
                }
            ),
        )])
    }

    fn setup(&mut self, world: &mut World, targets: &Targets) {
        let dst = self.dst.resolve(targets);
        let selector = self.selector.clone();
        let from = SimTime(self.from.as_nanos());
        world.set_interceptor(move |env: &Envelope, now: SimTime| {
            if now >= from && env.dst == dst && selector.matches(env) {
                Verdict::Hold
            } else {
                Verdict::Pass
            }
        });
    }

    fn tick(&mut self, world: &mut World, _targets: &Targets) {
        if let Some(rel) = self.release_at {
            if !self.released && world.now() >= SimTime(rel.as_nanos()) {
                world.clear_interceptor();
                world.release_all_held();
                self.released = true;
            }
        }
    }

    fn teardown(&mut self, world: &mut World) {
        world.clear_interceptor();
        if !self.released {
            world.release_all_held();
            self.released = true;
        }
    }
}

/// Crashes an actor shortly after it records a trace annotation with the
/// given label — the trace-triggered "crash right after the decision"
/// injector (a sharper CrashTuner: the trigger is the component's own
/// advertised action rather than any view update).
#[derive(Debug, Clone)]
pub struct CrashOnAnnotation {
    /// Annotation label to trigger on.
    pub label: String,
    /// Restrict to annotations from this actor (`None` = any).
    pub actor: Option<ActorId>,
    /// Crash this long after the annotation appears.
    pub delay: Duration,
    /// Restart this long after the crash.
    pub down: Duration,
    /// Trigger at most this many times.
    pub max: u32,
    cursor: usize,
    fired: u32,
}

impl CrashOnAnnotation {
    /// Creates the injector.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        actor: Option<ActorId>,
        delay: Duration,
        down: Duration,
        max: u32,
    ) -> CrashOnAnnotation {
        CrashOnAnnotation {
            label: label.into(),
            actor,
            delay,
            down,
            max,
            cursor: 0,
            fired: 0,
        }
    }
}

impl Strategy for CrashOnAnnotation {
    fn name(&self) -> String {
        format!("time-travel(crash on {:?})", self.label)
    }

    fn planned_schedule(&self) -> Option<Vec<PlannedOp>> {
        Some(vec![PlannedOp::new(
            Letter::CrashRestartReplay,
            format!(
                "on:{:?}/actor:{:?}+{}ns/down{}ns*{}",
                self.label,
                self.actor,
                self.delay.as_nanos(),
                self.down.as_nanos(),
                self.max
            ),
        )])
    }

    fn tick(&mut self, world: &mut World, _targets: &Targets) {
        if self.fired >= self.max {
            return;
        }
        let mut hits: Vec<ActorId> = Vec::new();
        {
            let events = world.trace().events();
            while self.cursor < events.len() {
                let e = &events[self.cursor];
                self.cursor += 1;
                if let TraceEventKind::Annotation { actor, label, .. } = &e.kind {
                    if *label == self.label
                        && self.actor.map_or(true, |a| a == *actor)
                        && self.fired < self.max
                    {
                        hits.push(*actor);
                        self.fired += 1;
                    }
                }
            }
        }
        let now = world.now();
        for victim in hits {
            world.schedule_crash(victim, now + self.delay);
            world.schedule_restart(victim, now + self.delay + self.down);
        }
    }
}

/// Partitions one component from all the caches (apiservers) for a fixed
/// window of absolute sim time — the plainest network fault, which still
/// becomes a safety hazard when controllers trust their partial views
/// (the node-fencing scenario).
#[derive(Debug, Clone)]
pub struct PartitionComponent {
    /// Index into [`Targets::components`] of the victim.
    pub component: usize,
    /// Partition start (absolute sim time).
    pub from: Duration,
    /// Heal time (absolute sim time).
    pub until: Duration,
    active: Option<ph_sim::Partition>,
    done: bool,
}

impl PartitionComponent {
    /// Creates the injector.
    #[must_use]
    pub fn new(component: usize, from: Duration, until: Duration) -> PartitionComponent {
        PartitionComponent {
            component,
            from,
            until,
            active: None,
            done: false,
        }
    }
}

impl Strategy for PartitionComponent {
    fn name(&self) -> String {
        "partition(component↔apiservers)".into()
    }

    fn planned_schedule(&self) -> Option<Vec<PlannedOp>> {
        Some(vec![PlannedOp::new(
            Letter::DropNotification(format!("component:{}", self.component)),
            format!(
                "partition@{}ns..{}ns",
                self.from.as_nanos(),
                self.until.as_nanos()
            ),
        )])
    }

    fn tick(&mut self, world: &mut World, targets: &Targets) {
        let now = world.now();
        if self.active.is_none()
            && !self.done
            && now >= SimTime(self.from.as_nanos())
            && now < SimTime(self.until.as_nanos())
        {
            let victim = targets.components[self.component];
            self.active = Some(world.partition(&[victim], &targets.caches));
        }
        if let Some(p) = self.active.take() {
            if now >= SimTime(self.until.as_nanos()) {
                world.heal(p);
                self.done = true;
            } else {
                self.active = Some(p);
            }
        }
    }

    fn teardown(&mut self, world: &mut World) {
        if let Some(p) = self.active.take() {
            world.heal(p);
        }
        world.clear_interceptor();
    }
}

/// Composes several strategies (setup/tick in order, teardown in reverse).
/// Only one may install an interceptor; the composition does not multiplex
/// the interceptor slot.
pub struct Compose {
    parts: Vec<Box<dyn Strategy>>,
    label: String,
}

impl Compose {
    /// Composes `parts` under a display `label`.
    #[must_use]
    pub fn new(label: impl Into<String>, parts: Vec<Box<dyn Strategy>>) -> Compose {
        Compose {
            parts,
            label: label.into(),
        }
    }
}

impl Strategy for Compose {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn planned_schedule(&self) -> Option<Vec<PlannedOp>> {
        // The composition's plan is its parts' plans in order; if any part
        // is unplannable, so is the whole.
        let mut ops = Vec::new();
        for p in &self.parts {
            ops.extend(p.planned_schedule()?);
        }
        Some(ops)
    }

    fn setup(&mut self, world: &mut World, targets: &Targets) {
        for p in &mut self.parts {
            p.setup(world, targets);
        }
    }

    fn tick(&mut self, world: &mut World, targets: &Targets) {
        for p in &mut self.parts {
            p.tick(world, targets);
        }
    }

    fn teardown(&mut self, world: &mut World) {
        for p in self.parts.iter_mut().rev() {
            p.teardown(world);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_constructors() {
        let s = EventSelector::key("pods/p1");
        assert_eq!(s.deletes, None);
        let s = EventSelector::deletes_of("nodes/");
        assert_eq!(s.deletes, Some(true));
        let s = EventSelector::termination_mark_of("pods/");
        assert_eq!(s.with_deletion_timestamp, Some(true));
        assert_eq!(s.deletes, Some(false));
    }

    #[test]
    fn strategy_names_are_descriptive() {
        let d = DropMatching {
            dst: TargetRef::Actor(ActorId(0)),
            selector: EventSelector::key("x"),
            from: Duration::ZERO,
            max: 1,
        };
        assert!(d.name().contains("obs-gap"));
        let h = HoldMatching::new(
            TargetRef::Actor(ActorId(0)),
            EventSelector::key("x"),
            Duration::ZERO,
            None,
        );
        assert!(h.name().contains("staleness"));
        let c = CrashOnAnnotation::new("l", None, Duration::ZERO, Duration::ZERO, 1);
        assert!(c.name().contains("time-travel"));
    }

    #[test]
    fn planned_schedules_carry_every_behavioral_parameter() {
        let class = |s: &dyn Strategy| ph_core::plan_class(&s.planned_schedule().unwrap());
        let d = |max: u64| DropMatching {
            dst: TargetRef::Cache(0),
            selector: EventSelector::deletes_of("nodes/"),
            from: Duration::millis(100),
            max,
        };
        assert_eq!(class(&d(1)), class(&d(1)));
        assert_ne!(class(&d(1)), class(&d(2)), "max is behavioral");
        let h = HoldMatching::new(
            TargetRef::Cache(0),
            EventSelector::key("pods/"),
            Duration::millis(100),
            None,
        );
        assert_ne!(class(&d(1)), class(&h));
        assert_ne!(
            class(&h),
            class(&HoldMatching::new(
                TargetRef::Cache(0),
                EventSelector::key("pods/"),
                Duration::millis(100),
                Some(Duration::millis(900)),
            )),
            "release time is behavioral"
        );

        // Composition: a hold on cache:0 and a partition of component:1
        // touch different views, so the two orders are one class…
        let hold = || {
            Box::new(HoldMatching::new(
                TargetRef::Cache(0),
                EventSelector::key("pods/"),
                Duration::millis(100),
                None,
            )) as Box<dyn Strategy>
        };
        let cut = || {
            Box::new(PartitionComponent::new(
                1,
                Duration::millis(200),
                Duration::millis(400),
            )) as Box<dyn Strategy>
        };
        let ab = Compose::new("ab", vec![hold(), cut()]);
        let ba = Compose::new("ba", vec![cut(), hold()]);
        assert_eq!(class(&ab), class(&ba));
        // …while a crash composed either way is order-dependent (global).
        let crash = || {
            Box::new(CrashOnAnnotation::new(
                "acted",
                None,
                Duration::ZERO,
                Duration::millis(300),
                1,
            )) as Box<dyn Strategy>
        };
        let hc = Compose::new("hc", vec![hold(), crash()]);
        let ch = Compose::new("ch", vec![crash(), hold()]);
        assert_ne!(class(&hc), class(&ch));
        // An unplannable part poisons the composition.
        let with_random = Compose::new(
            "r",
            vec![
                hold(),
                Box::new(ph_core::RandomCrashes {
                    seed: 7,
                    count: 1,
                    down: Duration::millis(300),
                }),
            ],
        );
        assert_eq!(with_random.planned_schedule(), None);
    }
}
