//! Fixture: the same shape with a reasoned suppression — the schedule is
//! a model-checker witness, which is already the canonical minimal word
//! of its commutation class.

fn plan() -> Vec<Letter> {
    // ph-lint: allow(schedule-canon, witness schedules are already canonical minimal words)
    let mut schedule = vec![Letter::DelayCache("pods".into())];
    schedule.push(Letter::UpstreamSwitch);
    schedule
}

fn hunt(explorer: &Explorer) -> TrialOutcome {
    explorer.explore("scenario", &run_one, &strategy_factory)
}
