// Fixture: a reasonless `allow` is itself a finding, and the finding it
// tried to cover stays unsuppressed. Linted as if at
// crates/sim/src/fixture.rs.

pub fn timed() {
    // ph-lint: allow(wall-clock)
    let t = std::time::Instant::now();
    let _ = t;
}

pub fn wrong_rule() {
    // ph-lint: allow(stray-print, reason names a rule that does not match)
    let t = std::time::Instant::now();
    let _ = t;
}
