// Fixture: concurrency primitives outside ph-core::parallel. Linted as if
// at crates/core/src/fixture.rs (NOT the parallel.rs carve-out).

use std::sync::Mutex;

pub fn racy() {
    let flag = std::sync::atomic::AtomicBool::new(false);
    let handle = std::thread::spawn(move || {});
    let _ = (flag, handle);
}

pub struct Shared {
    inner: Mutex<Vec<u64>>,
}

pub struct Counted {
    // Arc trips the rule: single-threaded sim code shares with Rc.
    wide: std::sync::Arc<[u8]>,
    // Rc is the sanctioned sharing primitive and stays clean.
    narrow: std::rc::Rc<str>,
}
