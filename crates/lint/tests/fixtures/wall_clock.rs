// Fixture: wall-clock reads in library code. Linted as if at
// crates/sim/src/fixture.rs.

pub fn elapsed() -> u64 {
    let started = std::time::Instant::now();
    work();
    started.elapsed().as_nanos() as u64
}

pub fn epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

// A comment mentioning Instant::now() must not be flagged.
pub fn clean() {
    let s = "Instant::now() in a string must not be flagged";
    let _ = s;
}

fn work() {}
