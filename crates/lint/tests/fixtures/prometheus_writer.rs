// Fixture: the metrics-exporter shape `ph_core::telemetry::print_prometheus`
// uses — a library function whose entire purpose is writing the Prometheus
// text exposition to stdout. The stray-print finding must still be
// reported, carry the suppression reason, and not gate; the unsuppressed
// debug print below it must gate. Linted as if at crates/core/src/fixture.rs.

pub fn print_prometheus(exposition: &str) {
    // ph-lint: allow(stray-print, the Prometheus text exposition IS this writer's output stream)
    println!("{exposition}");
}

pub fn debug_leak(rows: usize) {
    println!("scraped {rows} rows");
}
