// Fixture: a well-formed suppression with a reason. The finding is still
// reported, marked suppressed, and does not gate. Linted as if at
// crates/sim/src/fixture.rs.

pub fn timed() {
    // ph-lint: allow(wall-clock, fixture demonstrates a reasoned suppression)
    let t = std::time::Instant::now();
    let _ = t;
}

pub fn trailing() {
    let t = std::time::Instant::now(); // ph-lint: allow(wall-clock, trailing form also counts)
    let _ = t;
}
