// Fixture: entropy-seeded RNG — flagged even in test code. Linted as if
// at crates/scenarios/tests/fixture.rs.

#[test]
fn flaky_by_construction() {
    let mut rng = rand::thread_rng();
    let roll: u8 = rand::random();
    let _ = (rng, roll);
}

#[test]
fn seeded_is_fine() {
    // Deriving from a trial seed must not be flagged.
    let rng = SmallRng::seed_from_u64(42);
    let _ = rng;
}
