//! Fixture: a hand-built perturbation schedule fed straight to the
//! explorer — schedules differing only by commuting swaps would each burn
//! a trial.

fn plan() -> Vec<Letter> {
    let mut schedule = vec![Letter::DelayCache("pods".into())];
    schedule.push(Letter::UpstreamSwitch);
    schedule
}

fn hunt(explorer: &Explorer) -> TrialOutcome {
    explorer.explore("scenario", &run_one, &strategy_factory)
}
