// Fixture: a `#[cfg(test)]` module inside library code gets test-scope
// slack — prints and wall-clock reads there are not findings. Linted as
// if at crates/sim/src/fixture.rs.

pub fn lib_code() -> u64 {
    42
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_and_times_freely() {
        let t = std::time::Instant::now();
        println!("elapsed: {:?}", t.elapsed());
        assert_eq!(lib_code(), 42);
    }
}
