// Fixture: print/dbg output in library code. Linted as if at
// crates/cluster/src/fixture.rs.

pub fn chatty(x: u64) -> u64 {
    println!("processing {x}");
    eprintln!("warning: {x}");
    dbg!(x)
}

pub fn quiet(x: u64) -> u64 {
    // format! is not output and must not be flagged.
    let _ = format!("processing {x}");
    x
}
