//! Fixture: unsafe code must be flagged everywhere, including in code
//! that would otherwise be exempt from library-only rules.

pub fn reinterpret(x: u32) -> f32 {
    unsafe { std::mem::transmute::<u32, f32>(x) }
}

pub unsafe fn raw_read(p: *const u8) -> u8 {
    *p
}

#[cfg(test)]
mod tests {
    #[test]
    fn even_tests_cannot_go_unsafe() {
        let x = 1u32;
        let _ = unsafe { std::mem::transmute::<u32, f32>(x) };
    }
}
