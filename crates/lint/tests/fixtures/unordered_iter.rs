// Fixture: hash containers in a trace-affecting crate. Linted as if at
// crates/store/src/fixture.rs.

use std::collections::HashMap;

pub struct Index {
    by_key: HashMap<String, u64>,
}

pub fn ordered() -> std::collections::BTreeMap<String, u64> {
    // BTreeMap is the sanctioned container and must not be flagged.
    std::collections::BTreeMap::new()
}

pub fn hashset_too() {
    let mut seen = std::collections::HashSet::new();
    seen.insert(1u32);
}
