//! Golden-file tests: each fixture under `tests/fixtures/` is linted as if
//! it sat at a pretend workspace path (rule scoping depends on the path),
//! and the deterministic JSON report must match the checked-in `.golden`
//! byte for byte.
//!
//! Regenerate after an intentional rule change with
//! `PH_LINT_BLESS=1 cargo test -p ph-lint --test golden`.

use std::fs;
use std::path::{Path, PathBuf};

use ph_lint::findings::{Finding, LintReport};
use ph_lint::rules::{lint_file, FileMeta};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lints `fixtures/<name>.rs` as if it lived at `pretend`, compares the
/// JSON report against `fixtures/<name>.golden`, and returns the findings
/// for semantic assertions.
fn check(name: &str, pretend: &str) -> Vec<Finding> {
    let dir = fixtures_dir();
    let src = fs::read_to_string(dir.join(format!("{name}.rs")))
        .unwrap_or_else(|e| panic!("reading fixture {name}: {e}"));
    let mut report = LintReport {
        findings: lint_file(&FileMeta::from_path(pretend), &src),
        files_scanned: 1,
    };
    report.sort();
    let got = report.to_json();
    let golden_path = dir.join(format!("{name}.golden"));
    if std::env::var_os("PH_LINT_BLESS").is_some() {
        fs::write(&golden_path, &got).unwrap();
    } else {
        let want = fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("reading {name}.golden (PH_LINT_BLESS=1 to create): {e}"));
        assert_eq!(
            got, want,
            "golden mismatch for {name} (PH_LINT_BLESS=1 to regenerate)"
        );
    }
    report.findings
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule.as_str()).collect()
}

#[test]
fn wall_clock_golden() {
    let fs = check("wall_clock", "crates/sim/src/fixture.rs");
    assert_eq!(rules_of(&fs), ["wall-clock", "wall-clock"]);
    assert!(fs.iter().all(|f| f.suppressed.is_none()));
}

#[test]
fn unordered_iter_golden() {
    let fs = check("unordered_iter", "crates/store/src/fixture.rs");
    assert_eq!(
        rules_of(&fs),
        ["unordered-iter", "unordered-iter", "unordered-iter"]
    );
}

#[test]
fn unordered_iter_outside_trace_affecting_crates_is_clean() {
    // The same source in a non-trace-affecting crate produces nothing —
    // no golden needed, emptiness is the assertion.
    let src = fs::read_to_string(fixtures_dir().join("unordered_iter.rs")).unwrap();
    let fs = lint_file(&FileMeta::from_path("crates/bench/src/fixture.rs"), &src);
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn unseeded_rng_golden() {
    // RNG findings fire even under a tests/ path.
    let fs = check("unseeded_rng", "crates/scenarios/tests/fixture.rs");
    assert_eq!(rules_of(&fs), ["unseeded-rng", "unseeded-rng"]);
}

#[test]
fn thread_primitive_golden() {
    let fs = check("thread_primitive", "crates/core/src/fixture.rs");
    assert!(!fs.is_empty());
    assert!(fs.iter().all(|f| f.rule == "thread-primitive"));
}

#[test]
fn thread_primitive_carve_out_is_exempt() {
    let src = fs::read_to_string(fixtures_dir().join("thread_primitive.rs")).unwrap();
    let fs = lint_file(&FileMeta::from_path("crates/core/src/parallel.rs"), &src);
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn stray_print_golden() {
    let fs = check("stray_print", "crates/cluster/src/fixture.rs");
    assert_eq!(rules_of(&fs), ["stray-print", "stray-print", "stray-print"]);
}

#[test]
fn prometheus_writer_suppression_golden() {
    // The telemetry layer's one sanctioned stdout use: the Prometheus
    // text-exposition writer. Its reasoned allow must suppress exactly the
    // exposition println and nothing else.
    let fs = check("prometheus_writer", "crates/core/src/fixture.rs");
    assert_eq!(rules_of(&fs), ["stray-print", "stray-print"]);
    let (writer, leak) = (&fs[0], &fs[1]);
    assert!(
        writer
            .suppressed
            .as_deref()
            .is_some_and(|r| r.contains("Prometheus text exposition")),
        "{writer:?}"
    );
    assert!(leak.suppressed.is_none(), "{leak:?}");
}

#[test]
fn suppression_with_reason_reports_but_does_not_gate() {
    let fs = check("suppression_ok", "crates/sim/src/fixture.rs");
    assert_eq!(fs.len(), 2);
    assert!(fs.iter().all(|f| f.suppressed.is_some()), "{fs:?}");
}

#[test]
fn suppression_without_reason_gates_twice() {
    let fs = check("suppression_missing_reason", "crates/sim/src/fixture.rs");
    // The reasonless allow is its own finding, the wall-clock it tried to
    // cover stays unsuppressed, and the mismatched-rule allow in the
    // second function suppresses nothing either.
    assert!(fs.iter().any(|f| f.rule == "bad-suppression"));
    let wall: Vec<_> = fs.iter().filter(|f| f.rule == "wall-clock").collect();
    assert_eq!(wall.len(), 2);
    assert!(wall.iter().all(|f| f.suppressed.is_none()), "{fs:?}");
}

#[test]
fn unsafe_block_golden() {
    let fs = check("unsafe_block", "crates/sim/src/fixture.rs");
    assert_eq!(
        rules_of(&fs),
        ["unsafe-block", "unsafe-block", "unsafe-block"]
    );
    assert!(fs.iter().all(|f| f.suppressed.is_none()));
}

#[test]
fn schedule_canon_golden() {
    let fs = check("schedule_canon", "crates/scenarios/src/fixture.rs");
    assert_eq!(rules_of(&fs), ["schedule-canon"]);
    assert!(fs[0].suppressed.is_none());
    assert_eq!(fs[0].line, 6, "anchors on the first construction site");
}

#[test]
fn schedule_canon_allowed_golden() {
    let fs = check("schedule_canon_allowed", "crates/scenarios/src/fixture.rs");
    assert_eq!(rules_of(&fs), ["schedule-canon"]);
    assert!(
        fs[0]
            .suppressed
            .as_deref()
            .is_some_and(|r| r.contains("canonical minimal words")),
        "{fs:?}"
    );
}

#[test]
fn schedule_canon_in_tests_is_clean() {
    let src = fs::read_to_string(fixtures_dir().join("schedule_canon.rs")).unwrap();
    let fs = lint_file(
        &FileMeta::from_path("crates/scenarios/tests/fixture.rs"),
        &src,
    );
    assert!(fs.is_empty(), "{fs:?}");
}

#[test]
fn cfg_test_module_golden_is_empty() {
    let fs = check("cfg_test_clean", "crates/sim/src/fixture.rs");
    assert!(fs.is_empty(), "{fs:?}");
}
