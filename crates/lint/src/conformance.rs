//! IR ↔ source conformance: does the declared [`AccessSummary`] still
//! match the component code it describes?
//!
//! The hazard model checker ([`crate::modelcheck`]) is only as good as the
//! IR it checks. Summaries are hand-declared next to the components, so
//! they can rot: a fence can be removed from the code while the
//! declaration keeps claiming it, or a new destructive call can appear
//! with no declaration at all. This pass extends the determinism lexer
//! into a lightweight item scanner over the cluster sources: it segments
//! each file into top-level `impl` blocks, extracts the *observed* access
//! protocol — which informer views the component maintains, which
//! unfenced destructive calls it makes, whether it re-confirms with fresh
//! reads, recovers from `NotFound` (the detect-and-recover fence), and
//! rebuilds its api client across restarts (the upstream-switch vector) —
//! and diffs those facts against the declared summaries.
//!
//! The diff is deliberately one-directional and conservative: it flags
//! *source capabilities the IR does not admit* (undeclared views,
//! undeclared destructive calls) and *IR claims the source does not back*
//! (a declared fence or fresh-confirm with no mechanism in the code, a
//! declared upstream switch with no restart rebuild, a declared component
//! with no impl). Declared-but-unexercised gates on the *buggy* side are
//! never flagged — variants legitimately declare fewer guards than the
//! fixed code paths implement.
//!
//! Drift is an `ir-conformance` finding, suppressible with the usual
//! reasoned `// ph-lint: allow(ir-conformance, <reason>)` directive.

use std::fs;
use std::io;
use std::path::Path;

use crate::findings::Finding;
use crate::lexer::{clean, test_line_mask, CleanFile};
use crate::summary::{AccessSummary, Gate};

/// The conformance rule id.
pub const RULE: &str = "ir-conformance";

/// One destructive API call observed in source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DestructiveCall {
    /// 1-based source line.
    pub line: usize,
    /// `delete` or `mark_deleted`.
    pub method: String,
    /// `true` when the call carries a revision precondition (a non-`None`
    /// expect argument) — fenced in the §4.2.2 sense.
    pub fenced: bool,
}

/// The access protocol one component impl actually implements, as
/// observed by the scanner.
#[derive(Debug, Clone, Default)]
pub struct ObservedComponent {
    /// The impl'd type name, e.g. `Kubelet` (facts from multiple impl
    /// blocks of the same type are merged).
    pub type_name: String,
    /// 1-based line of the first impl block header.
    pub impl_line: usize,
    /// Resources of the informer views the impl constructs, with the
    /// line each was first seen on.
    pub views: Vec<(String, usize)>,
    /// Destructive API calls, in source order.
    pub destructive: Vec<DestructiveCall>,
    /// The component-name literal from the declared summary (`component:`
    /// field), placeholders stripped — e.g. `kubelet-` from
    /// `format!("kubelet-{}", …)`.
    pub component_prefix: Option<String>,
    /// Does the impl declare `fn access_summary`?
    pub declares_summary: bool,
    /// Fresh-read evidence: a `.get(…, true, …)`-style quorum read or
    /// freshness plumbing (`fresh` identifier) in non-test code.
    pub fresh_evidence: bool,
    /// Fence evidence: `NotFound` detect-and-recover, an `expect_rv`
    /// precondition, or a fenced destructive call.
    pub fence_evidence: bool,
    /// Restart rebuild evidence: `fn on_restart` plus an
    /// `ApiClient::new(` call — the upstream-switch mechanism.
    pub has_on_restart: bool,
    /// See [`ObservedComponent::has_on_restart`].
    pub has_client_new: bool,
}

impl ObservedComponent {
    /// `true` when the impl can actually land on a different upstream
    /// after a restart.
    pub fn restart_rebuild(&self) -> bool {
        self.has_on_restart && self.has_client_new
    }
}

/// One scanned source file: its observed components plus the cleaned
/// source (kept for suppression lookups at diff time).
#[derive(Debug)]
pub struct SourceScan {
    /// Repo-relative path.
    pub file: String,
    /// Observed components, in first-impl order.
    pub components: Vec<ObservedComponent>,
    clean: CleanFile,
}

impl SourceScan {
    /// Suppression directive covering `line`, if any.
    fn suppression(&self, line: usize) -> Option<String> {
        self.clean.suppression(RULE, line).map(|d| d.reason.clone())
    }
}

/// Boundary-checked identifier search (an `ident` char is alphanumeric or
/// `_`; `fresh` must not match `fresh_lists`).
fn has_ident(line: &str, ident: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(ident) {
        let start = from + pos;
        let end = start + ident.len();
        let pre_ok = start == 0 || {
            let c = bytes[start - 1] as char;
            !c.is_alphanumeric() && c != '_'
        };
        let post_ok = end >= bytes.len() || {
            let c = bytes[end] as char;
            !c.is_alphanumeric() && c != '_'
        };
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Recovers the first string literal at or after byte column `from` of a
/// cleaned line: quotes survive cleaning at their original columns, so the
/// matching raw columns hold the literal's content.
fn string_literal_after(clean_line: &str, raw_line: &str, from: usize) -> Option<String> {
    let open = from + clean_line.get(from..)?.find('"')?;
    let close = open + 1 + clean_line.get(open + 1..)?.find('"')?;
    raw_line.get(open + 1..close).map(str::to_string)
}

/// Extracts the impl'd type name from an impl header (the text between
/// `impl` and the opening brace): strips generics, and takes the last
/// path segment after ` for ` when present.
fn impl_type_name(header: &str) -> Option<String> {
    let rest = header.split_once("impl")?.1;
    let rest = rest.split('{').next()?.trim();
    // `impl<T> Trait for Type<T>` → keep the `for`-side; strip generics.
    let target = match rest.rfind(" for ") {
        Some(i) => &rest[i + 5..],
        None => {
            // Leading generic params belong to the impl, not the type.
            let mut s = rest;
            if s.starts_with('<') {
                let mut depth = 0usize;
                for (i, c) in s.char_indices() {
                    match c {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                s = &s[i + 1..];
                                break;
                            }
                        }
                        _ => {}
                    }
                }
            }
            s
        }
    };
    let target = target.trim();
    let base = target.split('<').next()?.trim();
    let name = base.rsplit("::").next()?.trim();
    if name.is_empty() || !name.chars().next()?.is_alphabetic() {
        None
    } else {
        Some(name.to_string())
    }
}

/// Scans one source file into its observed components. `file` is the
/// repo-relative path findings will carry.
pub fn scan_file(file: &str, src: &str) -> SourceScan {
    let cf = clean(src);
    let mask = test_line_mask(&cf.lines);
    let raw_lines: Vec<&str> = src.lines().collect();

    let mut components: Vec<ObservedComponent> = Vec::new();
    let mut depth: i64 = 0;
    // A top-level impl header being accumulated (until its `{`).
    let mut pending_header: Option<(String, usize)> = None;
    // Index into `components` of the impl body we are inside, plus the
    // depth at which it closes.
    let mut current: Option<usize> = None;

    for (i, clean_line) in cf.lines.iter().enumerate() {
        let lineno = i + 1;
        let in_test = mask.get(i).copied().unwrap_or(false);
        let raw_line = raw_lines.get(i).copied().unwrap_or("");

        if !in_test {
            if depth == 0 && pending_header.is_none() && has_ident(clean_line, "impl") {
                pending_header = Some((clean_line.clone(), lineno));
            } else if let Some((header, _)) = &mut pending_header {
                if !clean_line.contains('{') {
                    header.push(' ');
                    header.push_str(clean_line);
                }
            }

            if let Some((header, start)) = &pending_header {
                let header_done = clean_line.contains('{');
                if header_done {
                    let full = if *start == lineno {
                        header.clone()
                    } else {
                        format!("{header} {clean_line}")
                    };
                    if let Some(name) = impl_type_name(&full) {
                        let idx = components
                            .iter()
                            .position(|c| c.type_name == name)
                            .unwrap_or_else(|| {
                                components.push(ObservedComponent {
                                    type_name: name,
                                    impl_line: *start,
                                    ..ObservedComponent::default()
                                });
                                components.len() - 1
                            });
                        current = Some(idx);
                    }
                    pending_header = None;
                }
            }

            if let Some(ci) = current {
                if depth >= 1 || cf.lines[i].contains('{') {
                    extract_facts(&mut components[ci], clean_line, raw_line, lineno);
                }
            }
        }

        for c in clean_line.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        current = None;
                    }
                }
                _ => {}
            }
        }
    }

    SourceScan {
        file: file.to_string(),
        components,
        clean: cf,
    }
}

/// Accumulates one line's facts into the component.
fn extract_facts(c: &mut ObservedComponent, clean_line: &str, raw_line: &str, lineno: usize) {
    if let Some(pos) = clean_line.find("InformerConfig::new(") {
        if let Some(lit) = string_literal_after(clean_line, raw_line, pos) {
            let resource = lit.trim_end_matches('/').to_string();
            if !resource.is_empty() && !c.views.iter().any(|(r, _)| *r == resource) {
                c.views.push((resource, lineno));
            }
        }
    } else if let Some(pos) = clean_line.find("prefix:") {
        if let Some(lit) = string_literal_after(clean_line, raw_line, pos) {
            let resource = lit.trim_end_matches('/').to_string();
            if !resource.is_empty() && !c.views.iter().any(|(r, _)| *r == resource) {
                c.views.push((resource, lineno));
            }
        }
    }
    if let Some(pos) = clean_line.find("component:") {
        if let Some(lit) = string_literal_after(clean_line, raw_line, pos) {
            // `format!("kubelet-{}", …)` placeholders truncate the prefix.
            let prefix = lit.split('{').next().unwrap_or("").to_string();
            if c.component_prefix.is_none() && !prefix.is_empty() {
                c.component_prefix = Some(prefix);
            }
        }
    }
    if clean_line.contains("fn access_summary") {
        c.declares_summary = true;
    }
    if let Some(pos) = clean_line.find(".delete(") {
        let args = &clean_line[pos + ".delete(".len()..];
        let fenced = !args
            .split(',')
            .nth(1)
            .map(|a| a.trim() == "None")
            .unwrap_or(false);
        c.destructive.push(DestructiveCall {
            line: lineno,
            method: "delete".into(),
            fenced,
        });
        if fenced {
            c.fence_evidence = true;
        }
    }
    if clean_line.contains(".mark_deleted(") {
        c.destructive.push(DestructiveCall {
            line: lineno,
            method: "mark_deleted".into(),
            fenced: false,
        });
    }
    if (clean_line.contains(".get(") || clean_line.contains(".list("))
        && clean_line.contains(", true")
    {
        c.fresh_evidence = true;
    }
    if has_ident(clean_line, "fresh") {
        c.fresh_evidence = true;
    }
    if has_ident(clean_line, "NotFound") || has_ident(clean_line, "expect_rv") {
        c.fence_evidence = true;
    }
    if clean_line.contains("fn on_restart") {
        c.has_on_restart = true;
    }
    if clean_line.contains("ApiClient::new(") {
        c.has_client_new = true;
    }
}

/// Scans every `.rs` file directly under `dir` (non-recursive: the
/// cluster sources are flat). `rel_prefix` is prepended to file names in
/// findings, e.g. `crates/cluster/src`.
pub fn scan_dir(dir: &Path, rel_prefix: &str) -> io::Result<Vec<SourceScan>> {
    let mut files: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    files.sort();
    let mut out = Vec::new();
    for path in files {
        let src = fs::read_to_string(&path)?;
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        out.push(scan_file(&format!("{rel_prefix}/{name}"), &src));
    }
    Ok(out)
}

/// Is this observed impl a *component* the conformance rules apply to?
/// Components either declare a summary or maintain informer views;
/// plumbing impls (clients, handles) are out of scope.
fn is_component(c: &ObservedComponent) -> bool {
    c.declares_summary || !c.views.is_empty()
}

/// Diffs observed components against declared summaries and returns the
/// `ir-conformance` findings (empty = zero drift).
pub fn check_conformance(scans: &[SourceScan], declared: &[AccessSummary]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut matched_decls: Vec<bool> = vec![false; declared.len()];

    for scan in scans {
        for c in scan.components.iter().filter(|c| is_component(c)) {
            let mut emit = |line: usize, message: String| {
                findings.push(Finding {
                    rule: RULE.into(),
                    file: scan.file.clone(),
                    line,
                    message,
                    suppressed: scan.suppression(line),
                });
            };

            // Rule 1: views with no declared summary at all.
            if !c.declares_summary {
                emit(
                    c.impl_line,
                    format!(
                        "`{}` maintains informer views but declares no access_summary; \
                         the hazard checker cannot see it",
                        c.type_name
                    ),
                );
                continue;
            }

            let decls: Vec<&AccessSummary> = match &c.component_prefix {
                Some(prefix) => declared
                    .iter()
                    .enumerate()
                    .filter(|(i, d)| {
                        let hit = d.component.starts_with(prefix.as_str());
                        if hit {
                            matched_decls[*i] = true;
                        }
                        hit
                    })
                    .map(|(_, d)| d)
                    .collect(),
                None => Vec::new(),
            };
            if decls.is_empty() {
                // The impl declares a summary the caller did not pass in —
                // conformance can't vouch for it, which is itself drift.
                emit(
                    c.impl_line,
                    format!(
                        "`{}` declares an access_summary that is not part of the \
                         topology's declared set",
                        c.type_name
                    ),
                );
                continue;
            }

            // Rule 2: observed views the declarations do not cover.
            for (resource, line) in &c.views {
                let declared_view = decls
                    .iter()
                    .any(|d| d.views.iter().any(|v| v.resource == *resource));
                if !declared_view {
                    emit(
                        *line,
                        format!(
                            "`{}` maintains a view over `{resource}` that its declared \
                             access_summary does not list",
                            c.type_name
                        ),
                    );
                }
            }

            // Rule 3: unfenced destructive calls with no declared
            // destructive action.
            let declares_destructive = decls
                .iter()
                .any(|d| d.actions.iter().any(|a| a.destructive));
            for call in c.destructive.iter().filter(|d| !d.fenced) {
                if !declares_destructive {
                    emit(
                        call.line,
                        format!(
                            "`{}` performs an unfenced destructive `{}` but its declared \
                             access_summary has no destructive action",
                            c.type_name, call.method
                        ),
                    );
                }
            }

            // Rule 4: declared guards the source does not back.
            let declared_fence = decls.iter().any(|d| {
                d.actions.iter().any(|a| {
                    a.paths
                        .iter()
                        .any(|p| p.gates.iter().any(|g| matches!(g, Gate::Fence(_))))
                })
            });
            if declared_fence && !c.fence_evidence {
                emit(
                    c.impl_line,
                    format!(
                        "`{}` declares a fence gate but the source has no NotFound \
                         recovery or revision precondition backing it",
                        c.type_name
                    ),
                );
            }
            let declared_fresh = decls.iter().any(|d| {
                d.actions.iter().any(|a| {
                    a.paths
                        .iter()
                        .any(|p| p.gates.iter().any(|g| matches!(g, Gate::FreshConfirm(_))))
                })
            });
            if declared_fresh && !c.fresh_evidence {
                emit(
                    c.impl_line,
                    format!(
                        "`{}` declares a fresh-confirm gate but the source performs no \
                         fresh read",
                        c.type_name
                    ),
                );
            }

            // Rule 5: a declared upstream switch needs the restart-rebuild
            // mechanism in source.
            let declared_switch = decls.iter().any(|d| d.upstream_switch);
            if declared_switch && !c.restart_rebuild() {
                emit(
                    c.impl_line,
                    format!(
                        "`{}` declares upstream_switch but the source never rebuilds its \
                         api client on restart",
                        c.type_name
                    ),
                );
            }
        }
    }

    // Rule 6: declared components with no impl anywhere.
    for (i, d) in declared.iter().enumerate() {
        if !matched_decls[i] {
            findings.push(Finding {
                rule: RULE.into(),
                file: scans
                    .first()
                    .map(|s| s.file.clone())
                    .unwrap_or_else(|| "<no sources scanned>".into()),
                line: 0,
                message: format!(
                    "declared component `{}` has no matching impl in the scanned sources",
                    d.component
                ),
                suppressed: None,
            });
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, &a.message).cmp(&(&b.file, b.line, &b.message)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{ActionDecl, GatePath, ReadKind, ViewDecl};

    /// A conforming source: informer view on pods, a declared summary,
    /// an unfenced delete backed by a declared destructive action, fresh
    /// and fence mechanisms, restart rebuild.
    const CONFORMING: &str = r#"
impl Widget {
    pub fn new(cfg: Config) -> Widget {
        let client = ApiClient::new(cfg.api.clone(), 0);
        let pods = Informer::new(InformerConfig::new("pods/"));
        Widget { cfg, client, pods }
    }

    pub fn access_summary(cfg: &Config) -> AccessSummary {
        AccessSummary {
            component: "widget".into(),
            upstream_switch: cfg.api.upstream_switch(),
            views: vec![InformerConfig::new("pods/").view_decl()],
            actions: vec![],
        }
    }

    fn act(&mut self, ctx: &mut Ctx) {
        let req = self.client.get(key.clone(), true, ctx);
        match r {
            Err(ApiError::NotFound) => self.recover(),
            _ => {}
        }
        self.client.delete(key, None, ctx);
    }
}

impl Actor for Widget {
    fn on_restart(&mut self, ctx: &mut Ctx) {
        self.client = ApiClient::new(self.cfg.api.clone(), self.instance);
    }
}
"#;

    fn view(resource: &str) -> ViewDecl {
        ViewDecl {
            resource: resource.into(),
            list: ReadKind::Cache,
            watch: true,
            relist_on_gap: true,
            periodic_resync: false,
            event_replay: false,
            congestible: false,
        }
    }

    fn declared(gates: Vec<Gate>) -> AccessSummary {
        AccessSummary {
            component: "widget".into(),
            upstream_switch: true,
            views: vec![view("pods")],
            actions: vec![ActionDecl {
                name: "drop".into(),
                destructive: true,
                paths: vec![GatePath::new("p", gates)],
            }],
        }
    }

    #[test]
    fn conforming_source_has_zero_drift() {
        let scan = scan_file("crates/cluster/src/widget.rs", CONFORMING);
        let d = declared(vec![
            Gate::CacheAbsence("pods".into()),
            Gate::FreshConfirm("pods".into()),
            Gate::Fence("pods".into()),
        ]);
        let findings = check_conformance(&[scan], &[d]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn scanner_extracts_observed_facts() {
        let scan = scan_file("f.rs", CONFORMING);
        assert_eq!(scan.components.len(), 1);
        let c = &scan.components[0];
        assert_eq!(c.type_name, "Widget");
        assert_eq!(c.views.len(), 1);
        assert_eq!(c.views[0].0, "pods");
        assert_eq!(c.component_prefix.as_deref(), Some("widget"));
        assert!(c.declares_summary);
        assert!(c.fresh_evidence);
        assert!(c.fence_evidence);
        assert!(c.restart_rebuild());
        assert_eq!(c.destructive.len(), 1);
        assert!(!c.destructive[0].fenced);
    }

    #[test]
    fn removed_fence_is_caught() {
        // Same declared summary, but the source lost its NotFound recovery
        // and fenced calls: the declared Fence gate has no backing.
        let src = CONFORMING
            .replace("Err(ApiError::NotFound) => self.recover(),", "")
            .replace("let req = self.client.get(key.clone(), true, ctx);", "");
        let scan = scan_file("crates/cluster/src/widget.rs", &src);
        let d = declared(vec![
            Gate::CacheAbsence("pods".into()),
            Gate::FreshConfirm("pods".into()),
            Gate::Fence("pods".into()),
        ]);
        let findings = check_conformance(&[scan], &[d]);
        let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(msgs.iter().any(|m| m.contains("fence gate")), "{msgs:?}");
        assert!(
            msgs.iter().any(|m| m.contains("fresh-confirm gate")),
            "{msgs:?}"
        );
    }

    #[test]
    fn undeclared_destructive_action_is_caught() {
        let scan = scan_file("crates/cluster/src/widget.rs", CONFORMING);
        // The declaration lost its destructive action.
        let mut d = declared(vec![Gate::CacheAbsence("pods".into())]);
        d.actions[0].destructive = false;
        let findings = check_conformance(&[scan], &[d]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0]
            .message
            .contains("unfenced destructive `delete` but its declared access_summary has no"));
        assert!(findings[0].suppressed.is_none());
    }

    #[test]
    fn undeclared_view_is_caught() {
        let src = CONFORMING.replace(
            "let pods = Informer::new(InformerConfig::new(\"pods/\"));",
            "let pods = Informer::new(InformerConfig::new(\"pods/\"));\n        \
             let pvcs = Informer::new(InformerConfig::new(\"pvcs/\"));",
        );
        let scan = scan_file("f.rs", &src);
        let d = declared(vec![Gate::CacheAbsence("pods".into())]);
        let findings = check_conformance(&[scan], &[d]);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("view over `pvcs`")),
            "{findings:?}"
        );
    }

    #[test]
    fn views_without_summary_are_caught() {
        let src = "impl Rogue {\n    fn new() -> Rogue {\n        \
                   Rogue { i: Informer::new(InformerConfig::new(\"pods/\")) }\n    }\n}\n";
        let findings = check_conformance(&[scan_file("f.rs", src)], &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("declares no access_summary"));
    }

    #[test]
    fn missing_restart_rebuild_is_caught_for_declared_switch() {
        let src = CONFORMING.replace("ApiClient::new", "ApiClientHandle::make");
        let scan = scan_file("f.rs", &src);
        let d = declared(vec![Gate::CacheAbsence("pods".into())]);
        let findings = check_conformance(&[scan], &[d]);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("upstream_switch")),
            "{findings:?}"
        );
    }

    #[test]
    fn declared_component_without_impl_is_caught() {
        let d = declared(vec![Gate::CacheAbsence("pods".into())]);
        let findings = check_conformance(&[], &[d]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("no matching impl"));
    }

    #[test]
    fn suppression_with_reason_covers_drift() {
        let src = CONFORMING.replace(
            "        self.client.delete(key, None, ctx);",
            "        // ph-lint: allow(ir-conformance, scenario-only cleanup call)\n        \
             self.client.delete(key, None, ctx);",
        );
        let scan = scan_file("f.rs", &src);
        let mut d = declared(vec![Gate::CacheAbsence("pods".into())]);
        d.actions[0].destructive = false;
        let findings = check_conformance(&[scan], &[d]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(
            findings[0].suppressed.as_deref(),
            Some("scenario-only cleanup call")
        );
    }

    #[test]
    fn test_modules_are_invisible_to_the_scanner() {
        let src = "#[cfg(test)]\nmod tests {\n    use super::*;\n    fn t() {\n        \
                   let i = Informer::new(InformerConfig::new(\"pods/\"));\n    }\n}\n";
        let scan = scan_file("f.rs", src);
        assert!(scan.components.is_empty());
    }
}
