//! The `AccessSummary` IR and the partial-history hazard checker.
//!
//! Every controller in ph-cluster interacts with cluster state through a
//! *view* — a cache fed by list + watch — and takes actions gated on what
//! that view shows. The paper's §4.2 taxonomy says exactly three things go
//! wrong with such views: they can be **stale**, they can **travel back in
//! time** when a controller switches upstreams, and they can have
//! **observability gaps** where an intermediate state or a liveness fact is
//! never seen at all. All three are properties of the *access protocol*,
//! not of any particular execution — which makes them statically checkable
//! from a declarative summary of how each component reads and acts.
//!
//! An [`AccessSummary`] declares, per component:
//! * its views ([`ViewDecl`]): resource, list freshness, watch/replay
//!   properties, periodic resync;
//! * whether it can switch upstream apiservers mid-life (`upstream_switch`
//!   — the §4.2.2 time-travel vector);
//! * its actions ([`ActionDecl`]): destructive or not, and the *gate
//!   paths* that justify them — an OR of AND-ed [`Gate`]s. An action fires
//!   when any one path's gates all hold.
//!
//! Gates model **observed state**, not desired spec: reading a CRD's
//! `desired` count from cache is intent propagation (monotone, safe to act
//! on eventually), while reading which pods exist is an observation whose
//! staleness the checker reasons about.
//!
//! [`check_summary`] then applies five rules (see the module-level rules in
//! `DESIGN.md`): wrongful-action staleness, time travel, silence gaps,
//! missed-trigger gaps, and congestion staleness. The checker is deliberately conservative in one
//! direction only: paths gated on an observed *event* are sound evidence
//! (events, unlike snapshots, cannot claim a state that never existed), so
//! they are exempt from the staleness rules but are exactly what the
//! missed-trigger rule inspects.

use crate::findings::esc;

/// The §4.2 bug-pattern taxonomy (plus the load-emergent refinement).
///
/// Kept in this declaration order — new classes append at the end — because
/// the derived `Ord` is what the model checker's found-class ranges and the
/// crosscheck tables sort by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PatternClass {
    /// §4.2.1 — acting on an old-but-once-true view.
    Staleness,
    /// §4.2.2 — the view moves backwards across an upstream switch.
    TimeTravel,
    /// §4.2.3 — a state or liveness fact the view can never show.
    ObservabilityGap,
    /// §4.1 — staleness that *emerges from load*: the view's feed rides a
    /// saturable link, so queueing delay/tail drops alone (no injected
    /// fault) can age the view past an unfenced destructive action.
    CongestionStaleness,
}

impl PatternClass {
    /// Stable serialized name.
    pub fn as_str(&self) -> &'static str {
        match self {
            PatternClass::Staleness => "staleness",
            PatternClass::TimeTravel => "time-travel",
            PatternClass::ObservabilityGap => "observability-gap",
            PatternClass::CongestionStaleness => "congestion-staleness",
        }
    }
}

impl std::fmt::Display for PatternClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a view's initial (and re-) list is served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadKind {
    /// Served from an apiserver watch cache — possibly stale.
    Cache,
    /// Served with a quorum / linearizable read — fresh at read time.
    Quorum,
}

/// One view a component maintains over a resource.
#[derive(Debug, Clone)]
pub struct ViewDecl {
    /// Resource prefix, e.g. `pods`.
    pub resource: String,
    /// Freshness of list/relist reads.
    pub list: ReadKind,
    /// Does a watch keep the view updated between lists?
    pub watch: bool,
    /// On a watch gap (compaction / window overrun), does the component
    /// relist rather than continue on the torn stream?
    pub relist_on_gap: bool,
    /// Does the component periodically relist regardless of watch health?
    pub periodic_resync: bool,
    /// Are historical events replayed on (re)connect? `false` means a
    /// relist jumps to a snapshot: intermediate states are unobservable.
    pub event_replay: bool,
    /// Does this view's feed traverse a finite-bandwidth (saturable) link?
    /// When true, offered load alone can delay or drop the feed — the
    /// congestion-staleness vector. `false` models an uncontended feed.
    pub congestible: bool,
}

/// A single precondition on an action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gate {
    /// The view currently shows an object of this resource.
    CachePresence(String),
    /// The view currently shows *no* object of this resource.
    CacheAbsence(String),
    /// The component saw a specific event (e.g. a terminating mark) flow
    /// through its watch — evidence that the state existed at some point.
    ObservedEvent(String),
    /// The component concluded from *not hearing* (e.g. missed leases)
    /// that a remote party is dead.
    ObservedSilence(String),
    /// The precondition is re-confirmed with a quorum read at action time.
    FreshConfirm(String),
    /// The action is fenced: ordered after the state it consumes by a
    /// revision precondition (CAS / resourceVersion check).
    Fence(String),
}

impl Gate {
    /// The resource this gate observes.
    pub fn resource(&self) -> &str {
        match self {
            Gate::CachePresence(r)
            | Gate::CacheAbsence(r)
            | Gate::ObservedEvent(r)
            | Gate::ObservedSilence(r)
            | Gate::FreshConfirm(r)
            | Gate::Fence(r) => r,
        }
    }

    fn label(&self) -> String {
        match self {
            Gate::CachePresence(r) => format!("cache-presence({r})"),
            Gate::CacheAbsence(r) => format!("cache-absence({r})"),
            Gate::ObservedEvent(r) => format!("observed-event({r})"),
            Gate::ObservedSilence(r) => format!("observed-silence({r})"),
            Gate::FreshConfirm(r) => format!("fresh-confirm({r})"),
            Gate::Fence(r) => format!("fence({r})"),
        }
    }
}

/// One way an action can be justified: all gates must hold together.
#[derive(Debug, Clone)]
pub struct GatePath {
    /// Label for reports, e.g. `observed-terminating`.
    pub name: String,
    /// The AND-ed preconditions.
    pub gates: Vec<Gate>,
}

impl GatePath {
    /// Convenience constructor.
    pub fn new(name: &str, gates: Vec<Gate>) -> GatePath {
        GatePath {
            name: name.to_string(),
            gates,
        }
    }
}

/// One action a component takes, with its justifying paths (OR of ANDs).
#[derive(Debug, Clone)]
pub struct ActionDecl {
    /// Action name, e.g. `delete-pvc`.
    pub name: String,
    /// Destructive actions (delete storage, kill pods, evict nodes) are
    /// what the hazard rules protect; constructive ones are assumed
    /// idempotent / conflict-guarded.
    pub destructive: bool,
    /// Alternative justifications; the action fires when any path holds.
    pub paths: Vec<GatePath>,
}

/// A component's full access protocol.
#[derive(Debug, Clone)]
pub struct AccessSummary {
    /// Component name, e.g. `kubelet-node-1`.
    pub component: String,
    /// Can this component re-list from a *different* upstream than the one
    /// that served its current view (restart + ByInstance pick, multiple
    /// apiservers)? This is the §4.2.2 time-travel vector.
    pub upstream_switch: bool,
    /// Views the component maintains.
    pub views: Vec<ViewDecl>,
    /// Actions it takes.
    pub actions: Vec<ActionDecl>,
}

/// One statically detected hazard.
#[derive(Debug, Clone)]
pub struct Hazard {
    /// The component the hazard lives in.
    pub component: String,
    /// The action whose gating is hazardous.
    pub action: String,
    /// Which §4.2 pattern it instantiates.
    pub class: PatternClass,
    /// Human explanation referencing the gates involved.
    pub detail: String,
}

impl Hazard {
    /// Deterministic JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"component\":\"{}\",\"action\":\"{}\",\"class\":\"{}\",\"detail\":\"{}\"}}",
            esc(&self.component),
            esc(&self.action),
            self.class.as_str(),
            esc(&self.detail)
        )
    }
}

/// Looks up the view over `resource`, if declared.
fn view<'a>(s: &'a AccessSummary, resource: &str) -> Option<&'a ViewDecl> {
    s.views.iter().find(|v| v.resource == resource)
}

/// Can a cache gate on `resource` be stale? True when the backing view
/// lists from cache and never resyncs — or when no view is declared at all
/// (an undeclared read is an unmanaged read).
fn stale_able(s: &AccessSummary, resource: &str) -> bool {
    match view(s, resource) {
        Some(v) => v.list == ReadKind::Cache && !v.periodic_resync,
        None => true,
    }
}

/// Runs the hazard rules over one summary.
///
/// Rules, per destructive action:
///
/// 1. **Silence gap (§4.2.3)** — a path contains `ObservedSilence(r)` with
///    no `Fence(r)`: silence is indistinguishable from a network partition,
///    so the component may act against a live peer, and nothing orders the
///    action after the peer's true state.
/// 2. **Staleness (§4.2.1)** — a path with *no* observed-event/-silence
///    evidence has a cache gate on a stale-able resource and neither a
///    `FreshConfirm` nor a `Fence` on that resource: the action can fire
///    from an arbitrarily old snapshot.
/// 3. **Time travel (§4.2.2)** — rule 2's condition holds *and* the
///    component can switch upstreams: the stale view may even be older
///    than state the component itself already observed and acted on.
/// 4. **Missed trigger (§4.2.3)** — *every* path requires an
///    `ObservedEvent(r)` whose view does not replay history: a relist
///    jumps over the event, the trigger is missed forever, and the action
///    (often a cleanup) never fires.
/// 5. **Congestion staleness (§4.1)** — rule 2's condition holds *and* the
///    view is declared [`ViewDecl::congestible`]: its feed rides a
///    saturable link, so pure offered load — queueing delay and tail
///    drops, zero injected faults — can age the view past the action.
pub fn check_summary(s: &AccessSummary) -> Vec<Hazard> {
    let mut hazards = Vec::new();
    for action in &s.actions {
        if !action.destructive {
            continue;
        }
        let mut push = |class: PatternClass, detail: String| {
            hazards.push(Hazard {
                component: s.component.clone(),
                action: action.name.clone(),
                class,
                detail,
            });
        };

        for path in &action.paths {
            let fenced = |r: &str| {
                path.gates
                    .iter()
                    .any(|g| matches!(g, Gate::FreshConfirm(x) | Gate::Fence(x) if x == r))
            };

            // Rule 1: silence gap.
            for g in &path.gates {
                if let Gate::ObservedSilence(r) = g {
                    if !path
                        .gates
                        .iter()
                        .any(|f| matches!(f, Gate::Fence(x) if x == r))
                    {
                        push(
                            PatternClass::ObservabilityGap,
                            format!(
                                "path `{}` acts on {} with no fence: silence is \
                                 indistinguishable from a partition, liveness is unobservable",
                                path.name,
                                g.label()
                            ),
                        );
                    }
                }
            }

            // Rules 2+3 apply only to paths without event/silence evidence:
            // an observed event proves the gated state existed (sound),
            // and silence paths are already rule 1's business.
            let has_evidence = path
                .gates
                .iter()
                .any(|g| matches!(g, Gate::ObservedEvent(_) | Gate::ObservedSilence(_)));
            if has_evidence {
                continue;
            }
            for g in &path.gates {
                let r = match g {
                    Gate::CachePresence(r) | Gate::CacheAbsence(r) => r,
                    _ => continue,
                };
                if stale_able(s, r) && !fenced(r) {
                    push(
                        PatternClass::Staleness,
                        format!(
                            "path `{}` gates a destructive action on {} with no \
                             fresh-confirm or fence, over a cache view with no resync",
                            path.name,
                            g.label()
                        ),
                    );
                    if s.upstream_switch {
                        push(
                            PatternClass::TimeTravel,
                            format!(
                                "component can relist from a different upstream; the \
                                 unfenced {} gate in path `{}` may consume a view older \
                                 than state already acted on",
                                g.label(),
                                path.name
                            ),
                        );
                    }
                    if view(s, r).is_some_and(|v| v.congestible) {
                        push(
                            PatternClass::CongestionStaleness,
                            format!(
                                "the view feeding the {} gate in path `{}` rides a \
                                 saturable link: offered load alone (queueing delay or \
                                 tail drops, no injected fault) can age it past the action",
                                g.label(),
                                path.name
                            ),
                        );
                    }
                }
            }
        }

        // Rule 4: missed trigger — every path needs an unreplayable event.
        let all_event_gated = !action.paths.is_empty()
            && action.paths.iter().all(|p| {
                p.gates.iter().any(|g| {
                    matches!(g, Gate::ObservedEvent(r)
                        if view(s, r).map(|v| !v.event_replay).unwrap_or(true))
                })
            });
        if all_event_gated {
            push(
                PatternClass::ObservabilityGap,
                "every path requires observing a transient event over a view that does \
                 not replay history; a relist skips the event and the action never fires"
                    .to_string(),
            );
        }
    }
    hazards
}

/// Distinct hazard classes over a set of summaries, sorted.
pub fn classes(summaries: &[AccessSummary]) -> Vec<PatternClass> {
    let mut out: Vec<PatternClass> = summaries
        .iter()
        .flat_map(check_summary)
        .map(|h| h.class)
        .collect();
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_view(resource: &str) -> ViewDecl {
        ViewDecl {
            resource: resource.to_string(),
            list: ReadKind::Cache,
            watch: true,
            relist_on_gap: true,
            periodic_resync: false,
            event_replay: false,
            congestible: false,
        }
    }

    #[test]
    fn unfenced_cache_gate_is_staleness() {
        let s = AccessSummary {
            component: "c".into(),
            upstream_switch: false,
            views: vec![cache_view("pods")],
            actions: vec![ActionDecl {
                name: "delete".into(),
                destructive: true,
                paths: vec![GatePath::new(
                    "orphan",
                    vec![Gate::CacheAbsence("pods".into())],
                )],
            }],
        };
        let hz = check_summary(&s);
        assert_eq!(hz.len(), 1);
        assert_eq!(hz[0].class, PatternClass::Staleness);
    }

    #[test]
    fn upstream_switch_adds_time_travel() {
        let s = AccessSummary {
            component: "c".into(),
            upstream_switch: true,
            views: vec![cache_view("pods")],
            actions: vec![ActionDecl {
                name: "delete".into(),
                destructive: true,
                paths: vec![GatePath::new(
                    "orphan",
                    vec![Gate::CacheAbsence("pods".into())],
                )],
            }],
        };
        let cs: Vec<_> = check_summary(&s).into_iter().map(|h| h.class).collect();
        assert!(cs.contains(&PatternClass::Staleness));
        assert!(cs.contains(&PatternClass::TimeTravel));
    }

    #[test]
    fn fresh_confirm_discharges_staleness() {
        let s = AccessSummary {
            component: "c".into(),
            upstream_switch: true,
            views: vec![cache_view("pods")],
            actions: vec![ActionDecl {
                name: "delete".into(),
                destructive: true,
                paths: vec![GatePath::new(
                    "orphan-confirmed",
                    vec![
                        Gate::CacheAbsence("pods".into()),
                        Gate::FreshConfirm("pods".into()),
                    ],
                )],
            }],
        };
        assert!(check_summary(&s).is_empty());
    }

    #[test]
    fn quorum_list_discharges_staleness() {
        let mut v = cache_view("pods");
        v.list = ReadKind::Quorum;
        let s = AccessSummary {
            component: "c".into(),
            upstream_switch: false,
            views: vec![v],
            actions: vec![ActionDecl {
                name: "delete".into(),
                destructive: true,
                paths: vec![GatePath::new(
                    "orphan",
                    vec![Gate::CacheAbsence("pods".into())],
                )],
            }],
        };
        assert!(check_summary(&s).is_empty());
    }

    #[test]
    fn periodic_resync_discharges_staleness() {
        let mut v = cache_view("pods");
        v.periodic_resync = true;
        let s = AccessSummary {
            component: "c".into(),
            upstream_switch: false,
            views: vec![v],
            actions: vec![ActionDecl {
                name: "bind".into(),
                destructive: true,
                paths: vec![GatePath::new(
                    "unbound",
                    vec![Gate::CacheAbsence("pods".into())],
                )],
            }],
        };
        assert!(check_summary(&s).is_empty());
    }

    #[test]
    fn event_only_action_is_missed_trigger_gap() {
        let s = AccessSummary {
            component: "c".into(),
            upstream_switch: false,
            views: vec![cache_view("pods")],
            actions: vec![ActionDecl {
                name: "release".into(),
                destructive: true,
                paths: vec![GatePath::new(
                    "observed-terminating",
                    vec![Gate::ObservedEvent("pods".into())],
                )],
            }],
        };
        let hz = check_summary(&s);
        assert_eq!(hz.len(), 1);
        assert_eq!(hz[0].class, PatternClass::ObservabilityGap);
    }

    #[test]
    fn alternative_snapshot_path_clears_missed_trigger() {
        let s = AccessSummary {
            component: "c".into(),
            upstream_switch: false,
            views: vec![cache_view("pods")],
            actions: vec![ActionDecl {
                name: "release".into(),
                destructive: true,
                paths: vec![
                    GatePath::new(
                        "observed-terminating",
                        vec![Gate::ObservedEvent("pods".into())],
                    ),
                    GatePath::new(
                        "orphan-confirmed",
                        vec![
                            Gate::CacheAbsence("pods".into()),
                            Gate::FreshConfirm("pods".into()),
                        ],
                    ),
                ],
            }],
        };
        assert!(check_summary(&s).is_empty());
    }

    #[test]
    fn silence_without_fence_is_gap_not_staleness() {
        let s = AccessSummary {
            component: "nlc".into(),
            upstream_switch: false,
            views: vec![cache_view("leases"), cache_view("pods")],
            actions: vec![ActionDecl {
                name: "force-evict".into(),
                destructive: true,
                paths: vec![GatePath::new(
                    "missed-leases",
                    vec![
                        Gate::ObservedSilence("leases".into()),
                        Gate::CachePresence("pods".into()),
                    ],
                )],
            }],
        };
        let cs: Vec<_> = check_summary(&s).into_iter().map(|h| h.class).collect();
        assert_eq!(cs, vec![PatternClass::ObservabilityGap]);
    }

    #[test]
    fn congestible_view_adds_congestion_staleness() {
        let mut v = cache_view("pods");
        v.congestible = true;
        let s = AccessSummary {
            component: "c".into(),
            upstream_switch: false,
            views: vec![v],
            actions: vec![ActionDecl {
                name: "delete".into(),
                destructive: true,
                paths: vec![GatePath::new(
                    "orphan",
                    vec![Gate::CacheAbsence("pods".into())],
                )],
            }],
        };
        let cs: Vec<_> = check_summary(&s).into_iter().map(|h| h.class).collect();
        assert_eq!(
            cs,
            vec![PatternClass::Staleness, PatternClass::CongestionStaleness],
            "congestion staleness rides along with plain staleness"
        );
    }

    #[test]
    fn resynced_congestible_view_is_safe() {
        // A periodic resync bounds how long congestion can age the view,
        // discharging both rule 2 and rule 5.
        let mut v = cache_view("pods");
        v.congestible = true;
        v.periodic_resync = true;
        let s = AccessSummary {
            component: "c".into(),
            upstream_switch: false,
            views: vec![v],
            actions: vec![ActionDecl {
                name: "delete".into(),
                destructive: true,
                paths: vec![GatePath::new(
                    "orphan",
                    vec![Gate::CacheAbsence("pods".into())],
                )],
            }],
        };
        assert!(check_summary(&s).is_empty());
    }

    #[test]
    fn undeclared_views_never_claim_congestion() {
        // No declared view over `pods`: rule 2 still fires (unmanaged
        // read), but congestibility cannot be assumed.
        let s = AccessSummary {
            component: "c".into(),
            upstream_switch: false,
            views: vec![],
            actions: vec![ActionDecl {
                name: "delete".into(),
                destructive: true,
                paths: vec![GatePath::new(
                    "orphan",
                    vec![Gate::CacheAbsence("pods".into())],
                )],
            }],
        };
        let cs: Vec<_> = check_summary(&s).into_iter().map(|h| h.class).collect();
        assert_eq!(cs, vec![PatternClass::Staleness]);
    }

    #[test]
    fn non_destructive_actions_are_ignored() {
        let s = AccessSummary {
            component: "c".into(),
            upstream_switch: true,
            views: vec![cache_view("pods")],
            actions: vec![ActionDecl {
                name: "create".into(),
                destructive: false,
                paths: vec![GatePath::new(
                    "missing",
                    vec![Gate::CacheAbsence("pods".into())],
                )],
            }],
        };
        assert!(check_summary(&s).is_empty());
    }
}
