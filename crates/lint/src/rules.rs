//! The determinism rules.
//!
//! Each rule is a textual check over [`crate::lexer`]-cleaned source lines,
//! scoped by file kind and crate. The scoping encodes the repo's
//! determinism contract: everything that can affect a trace — ph-sim,
//! ph-store, ph-cluster, ph-core library code — must be bit-reproducible,
//! while tests, benches and binaries get progressively more slack.
//!
//! | rule               | what it catches                                   |
//! |--------------------|---------------------------------------------------|
//! | `wall-clock`       | `Instant::now` / `SystemTime::now` in libraries   |
//! | `unordered-iter`   | `HashMap`/`HashSet` in trace-affecting crates     |
//! | `unseeded-rng`     | `thread_rng`, `from_entropy`, `OsRng`, anywhere   |
//! | `thread-primitive` | threads/atomics/locks/`Arc` outside `ph-core::parallel` |
//! | `stray-print`      | `println!`/`eprintln!`/`dbg!` in libraries        |
//! | `unsafe-block`     | `unsafe` anywhere — backstop behind `forbid(unsafe_code)` |
//! | `bad-suppression`  | `ph-lint:` directives without a reason            |
//! | `schedule-canon`   | hand-built perturbation schedules fed to the explorer without canonicalization |

use crate::findings::Finding;
use crate::lexer::{clean, test_line_mask};

/// How a `.rs` file is used, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `src/` — the strictest scope.
    Lib,
    /// A binary under `src/bin/`.
    Bin,
    /// Integration tests (`tests/` directories).
    Test,
    /// Benches (`benches/`).
    Bench,
    /// Examples (`examples/`).
    Example,
}

/// Identity of a file being linted.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Workspace crate directory name (`sim`, `store`, …); empty for files
    /// outside `crates/` such as the root `tests/`.
    pub krate: String,
    /// Repo-relative path, used in findings.
    pub path: String,
    /// Role of the file.
    pub kind: FileKind,
}

impl FileMeta {
    /// Classifies a repo-relative path (`crates/sim/src/world.rs` …).
    pub fn from_path(path: &str) -> FileMeta {
        let krate = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("")
            .to_string();
        let kind = if path.contains("/tests/") || path.starts_with("tests/") {
            FileKind::Test
        } else if path.contains("/benches/") || path.starts_with("benches/") {
            FileKind::Bench
        } else if path.contains("/examples/") || path.starts_with("examples/") {
            FileKind::Example
        } else if path.contains("/src/bin/") {
            FileKind::Bin
        } else {
            FileKind::Lib
        };
        FileMeta {
            krate,
            path: path.to_string(),
            kind,
        }
    }
}

/// Crates whose library code feeds the trace digest: any nondeterminism
/// here breaks byte-identical replay and parallel ≡ sequential exploration.
const TRACE_AFFECTING: &[&str] = &["sim", "store", "cluster", "core"];

/// The one sanctioned home for thread/atomic primitives: the deterministic
/// worker pool behind parallel exploration.
const THREAD_CARVE_OUT: &str = "crates/core/src/parallel.rs";

/// A rule's static description, for docs and the `--json` rule table.
pub struct RuleInfo {
    /// Stable rule id used in findings and suppressions.
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
}

/// All rule ids with summaries, in canonical order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "wall-clock",
        summary: "Instant::now/SystemTime::now in library code — sim time must come from the World clock",
    },
    RuleInfo {
        id: "unordered-iter",
        summary: "HashMap/HashSet in trace-affecting crates — iteration order is nondeterministic; use BTreeMap/BTreeSet",
    },
    RuleInfo {
        id: "unseeded-rng",
        summary: "thread-local or entropy-seeded RNG — all randomness must derive from the trial seed",
    },
    RuleInfo {
        id: "thread-primitive",
        summary: "threads/atomics/locks/Arc outside ph-core::parallel — concurrency lives in the deterministic pool; sim code shares with Rc",
    },
    RuleInfo {
        id: "stray-print",
        summary: "println!/eprintln!/dbg! in library code — output belongs in metrics or the trace",
    },
    RuleInfo {
        id: "unsafe-block",
        summary: "unsafe code anywhere in the workspace — backstop behind #![forbid(unsafe_code)]",
    },
    RuleInfo {
        id: "bad-suppression",
        summary: "ph-lint: allow(...) without a reason — every suppression must say why",
    },
    RuleInfo {
        id: "schedule-canon",
        summary: "Letter/PlannedOp schedule built by hand in a file that feeds the explorer without canonicalize/plan_class — duplicate commutation classes burn trials",
    },
];

/// Is `ident` present in `line` with identifier boundaries on both sides?
fn has_ident(line: &str, ident: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = line[start..].find(ident) {
        let at = start + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = line[at + ident.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + ident.len();
    }
    false
}

/// Is the macro `name!` invoked on `line` (boundary-checked)?
fn has_macro(line: &str, name: &str) -> bool {
    let with_bang = format!("{name}!");
    let mut start = 0;
    while let Some(pos) = line[start..].find(&with_bang) {
        let at = start + pos;
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok {
            return true;
        }
        start = at + with_bang.len();
    }
    false
}

/// Lints one file's source; returns findings sorted by line.
pub fn lint_file(meta: &FileMeta, src: &str) -> Vec<Finding> {
    let cleaned = clean(src);
    let test_mask = test_line_mask(&cleaned.lines);
    let mut findings = Vec::new();

    let trace_affecting = TRACE_AFFECTING.contains(&meta.krate.as_str());
    let lib = meta.kind == FileKind::Lib;

    for (idx, raw_line) in cleaned.lines.iter().enumerate() {
        let line_no = idx + 1;
        let in_test = test_mask[idx] || meta.kind == FileKind::Test;
        // Whitespace-compressed view so `Instant :: now` still matches.
        let line: String = raw_line.split_whitespace().collect::<Vec<_>>().join(" ");
        let packed: String = raw_line.split_whitespace().collect();

        let emit = |rule: &str, message: String, findings: &mut Vec<Finding>| {
            let suppressed = cleaned.suppression(rule, line_no).map(|d| d.reason.clone());
            findings.push(Finding {
                rule: rule.to_string(),
                file: meta.path.clone(),
                line: line_no,
                message,
                suppressed,
            });
        };

        // wall-clock: library code only; sim/test/bench time is either the
        // World clock or explicitly the harness's business.
        if lib
            && !in_test
            && (packed.contains("Instant::now(") || packed.contains("SystemTime::now("))
        {
            emit(
                "wall-clock",
                "wall-clock read in library code; use the simulated clock".to_string(),
                &mut findings,
            );
        }

        // unordered-iter: trace-affecting library code must not iterate
        // hash containers (order varies run to run).
        if lib
            && !in_test
            && trace_affecting
            && (has_ident(&line, "HashMap") || has_ident(&line, "HashSet"))
        {
            emit(
                "unordered-iter",
                "HashMap/HashSet in a trace-affecting crate; use BTreeMap/BTreeSet or sort keys"
                    .to_string(),
                &mut findings,
            );
        }

        // unseeded-rng: everywhere, including tests — a test seeded from
        // entropy is a flaky test.
        if packed.contains("thread_rng(")
            || packed.contains("from_entropy(")
            || packed.contains("rand::random")
            || has_ident(&line, "OsRng")
        {
            emit(
                "unseeded-rng",
                "entropy-seeded RNG; derive randomness from the trial seed".to_string(),
                &mut findings,
            );
        }

        // thread-primitive: trace-affecting library code, except the
        // deterministic pool itself. `Arc` counts: cross-thread sharing in
        // the single-threaded sim is a design smell (its atomic refcounts
        // also cost on the hot path) — share with `Rc` instead.
        if lib
            && !in_test
            && trace_affecting
            && meta.path != THREAD_CARVE_OUT
            && (packed.contains("std::thread")
                || packed.contains("thread::spawn(")
                || packed.contains("sync::atomic")
                || packed.contains("std::sync::mpsc")
                || has_ident(&line, "Mutex")
                || has_ident(&line, "RwLock")
                || has_ident(&line, "Condvar")
                || has_ident(&line, "Arc")
                || line.contains("Atomic"))
        {
            emit(
                "thread-primitive",
                "thread/atomic/lock/Arc primitive outside ph-core::parallel".to_string(),
                &mut findings,
            );
        }

        // stray-print: library code of every crate; diagnostics belong in
        // metrics/trace so replays stay byte-identical and quiet.
        if lib
            && !in_test
            && (has_macro(&line, "println")
                || has_macro(&line, "eprintln")
                || has_macro(&line, "print")
                || has_macro(&line, "eprint")
                || has_macro(&line, "dbg"))
        {
            emit(
                "stray-print",
                "print/dbg output in library code; route through metrics or the trace".to_string(),
                &mut findings,
            );
        }

        // unsafe-block: everywhere, every file kind, tests included —
        // every crate carries #![forbid(unsafe_code)], so this only fires
        // if someone also removes the attribute; a textual backstop keeps
        // the two honest against each other.
        if has_ident(&line, "unsafe") {
            emit(
                "unsafe-block",
                "unsafe code; the workspace forbids unsafe_code in every crate".to_string(),
                &mut findings,
            );
        }
    }

    // schedule-canon: a whole-file rule. Library or binary code that both
    // hand-builds perturbation schedules (`vec![Letter::…]`,
    // `.push(Letter::…)`, or their `PlannedOp` twins) and feeds the
    // explorer (`.explore(`, `explore_parallel(`, `first_detection`) must
    // canonicalize them (`canonicalize`/`plan_class`) — otherwise
    // schedules differing only by commuting swaps run as separate trials.
    if matches!(meta.kind, FileKind::Lib | FileKind::Bin) {
        let mut first_build: Option<usize> = None;
        let mut feeds_explorer = false;
        let mut canonicalizes = false;
        for (idx, raw_line) in cleaned.lines.iter().enumerate() {
            if test_mask[idx] {
                continue;
            }
            let packed: String = raw_line.split_whitespace().collect();
            if first_build.is_none()
                && (packed.contains("vec![Letter::")
                    || packed.contains(".push(Letter::")
                    || packed.contains("vec![PlannedOp::")
                    || packed.contains(".push(PlannedOp::"))
            {
                first_build = Some(idx + 1);
            }
            if packed.contains(".explore(")
                || packed.contains("explore_parallel(")
                || packed.contains("first_detection")
            {
                feeds_explorer = true;
            }
            if packed.contains("canonicalize") || packed.contains("plan_class") {
                canonicalizes = true;
            }
        }
        if let Some(line_no) = first_build {
            if feeds_explorer && !canonicalizes {
                let suppressed = cleaned
                    .suppression("schedule-canon", line_no)
                    .map(|d| d.reason.clone());
                findings.push(Finding {
                    rule: "schedule-canon".to_string(),
                    file: meta.path.clone(),
                    line: line_no,
                    message: "hand-built schedule feeds the explorer without canonicalization; \
                              pass it through canonicalize()/plan_class()"
                        .to_string(),
                    suppressed,
                });
            }
        }
    }

    // Malformed directives are findings themselves and cannot be
    // suppressed — otherwise a reasonless allow could allow itself.
    for bad in &cleaned.bad_directives {
        findings.push(Finding {
            rule: "bad-suppression".to_string(),
            file: meta.path.clone(),
            line: bad.line,
            message: format!("malformed ph-lint directive: {}", bad.problem),
            suppressed: None,
        });
    }

    findings.sort_by(|a, b| (a.line, &a.rule).cmp(&(b.line, &b.rule)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(krate: &str, kind: FileKind, src: &str) -> Vec<Finding> {
        let meta = FileMeta {
            krate: krate.to_string(),
            path: format!("crates/{krate}/src/x.rs"),
            kind,
        };
        lint_file(&meta, src)
    }

    #[test]
    fn wall_clock_flagged_in_lib_not_in_test_file() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(lint("sim", FileKind::Lib, src).len(), 1);
        assert!(lint("sim", FileKind::Test, src).is_empty());
    }

    #[test]
    fn hash_containers_flagged_only_in_trace_affecting_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(lint("cluster", FileKind::Lib, src).len(), 1);
        assert!(lint("bench", FileKind::Lib, src).is_empty());
    }

    #[test]
    fn rng_flagged_even_in_tests() {
        let src = "let mut rng = rand::thread_rng();\n";
        assert_eq!(lint("scenarios", FileKind::Test, src).len(), 1);
    }

    #[test]
    fn parallel_carve_out_is_exempt() {
        let meta = FileMeta {
            krate: "core".to_string(),
            path: "crates/core/src/parallel.rs".to_string(),
            kind: FileKind::Lib,
        };
        let src = "use std::sync::Mutex;\n";
        assert!(lint_file(&meta, src).is_empty());
        assert_eq!(lint("core", FileKind::Lib, src).len(), 1);
    }

    #[test]
    fn arc_flagged_rc_allowed() {
        assert_eq!(lint("sim", FileKind::Lib, "use std::sync::Arc;\n").len(), 1);
        assert_eq!(
            lint("store", FileKind::Lib, "let b: Arc<[u8]> = x.into();\n").len(),
            1
        );
        // Rc is the sanctioned sharing primitive for single-threaded sim
        // code; identifiers merely containing "Arc" don't match either.
        assert!(lint("sim", FileKind::Lib, "use std::rc::Rc;\n").is_empty());
        assert!(lint("sim", FileKind::Lib, "let sparc = Sparc::new();\n").is_empty());
    }

    #[test]
    fn suppression_with_reason_marks_finding() {
        let src = "// ph-lint: allow(wall-clock, harness measures real elapsed time)\nlet t = Instant::now();\n";
        let fs = lint("bench", FileKind::Lib, src);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].suppressed.is_some());
    }

    #[test]
    fn suppression_without_reason_is_its_own_finding() {
        let src = "// ph-lint: allow(wall-clock)\nlet t = Instant::now();\n";
        let fs = lint("bench", FileKind::Lib, src);
        assert_eq!(fs.len(), 2);
        assert!(fs.iter().any(|f| f.rule == "bad-suppression"));
        assert!(fs
            .iter()
            .any(|f| f.rule == "wall-clock" && f.suppressed.is_none()));
    }

    #[test]
    fn unsafe_flagged_everywhere_even_in_tests() {
        let src = "unsafe { std::mem::transmute::<u32, f32>(x) }\n";
        assert_eq!(lint("bench", FileKind::Test, src).len(), 1);
        assert_eq!(lint("sim", FileKind::Lib, src).len(), 1);
        // The forbid attribute itself must not trip the backstop.
        assert!(lint("sim", FileKind::Lib, "#![forbid(unsafe_code)]\n").is_empty());
    }

    #[test]
    fn schedule_canon_needs_both_signals_and_no_canonicalize() {
        let build = "let s = vec![Letter::UpstreamSwitch];\n";
        let feed = "let out = explorer.explore(\"x\", &run, &factory);\n";
        // Build + feed, no canonicalize → flagged (in Lib and Bin alike).
        let both = format!("{build}{feed}");
        let fs = lint("scenarios", FileKind::Lib, &both);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "schedule-canon");
        assert_eq!(fs[0].line, 1, "anchors on the construction site");
        let meta = FileMeta {
            krate: "scenarios".into(),
            path: "crates/scenarios/src/bin/x.rs".into(),
            kind: FileKind::Bin,
        };
        assert_eq!(lint_file(&meta, &both).len(), 1);
        // Either signal alone is fine.
        assert!(lint("scenarios", FileKind::Lib, build).is_empty());
        assert!(lint("scenarios", FileKind::Lib, feed).is_empty());
        // Canonicalizing anywhere in the file clears it.
        let fixed = format!("{build}let c = canonicalize(&s, &matrix);\n{feed}");
        assert!(lint("scenarios", FileKind::Lib, &fixed).is_empty());
        let classed = format!("{build}let k = plan_class(&ops);\n{feed}");
        assert!(lint("scenarios", FileKind::Lib, &classed).is_empty());
        // Tests may hand-roll schedules (that is how equivalence is pinned).
        assert!(lint("scenarios", FileKind::Test, &both).is_empty());
        // PlannedOp construction counts too.
        let planned = format!("ops.push(PlannedOp::new(letter, anchor));\n{feed}");
        assert_eq!(lint("scenarios", FileKind::Lib, &planned).len(), 1);
    }

    #[test]
    fn schedule_canon_is_suppressible_with_reason() {
        let src =
            "// ph-lint: allow(schedule-canon, witnesses are already canonical minimal words)\n\
                   let s = vec![Letter::UpstreamSwitch];\n\
                   let out = explorer.explore(\"x\", &run, &factory);\n";
        let fs = lint("scenarios", FileKind::Lib, src);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].suppressed.is_some());
    }

    #[test]
    fn println_in_string_literal_is_ignored() {
        let src = "let s = \"println!(hello)\";\n";
        assert!(lint("sim", FileKind::Lib, src).is_empty());
    }

    #[test]
    fn cfg_test_module_inside_lib_is_skipped() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { println!(\"x\"); }\n}\n";
        assert!(lint("sim", FileKind::Lib, src).is_empty());
    }
}
