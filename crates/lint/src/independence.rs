//! Static independence analysis over the perturbation alphabet.
//!
//! The model checker ([`crate::modelcheck`]) and the dynamic explorer both
//! burn budget re-exploring schedules that differ only by commuting
//! operations on unrelated views. This module derives, per component, the
//! *independence relation* on the enabled alphabet directly from the
//! [`AccessSummary`] IR — no execution needed — and emits it as an
//! auditable [`IndependenceMatrix`] with a one-line justification per
//! dependent pair (rendered by `phtool lint --json`).
//!
//! Two letters are **independent** (they commute) iff they touch disjoint
//! views and neither crosses an action gate's read set or a crash/replay
//! boundary. Concretely, a pair is *dependent* when any of three rules
//! fires, in order:
//!
//! 1. **Global** — `upstream-switch` and `crash-restart-replay` re-list
//!    every stale-able view and lose non-replayable events across the
//!    crash/replay boundary: they commute with nothing.
//! 2. **Same view** — both letters perturb the view over one resource;
//!    order is semantically visible (e.g. a reorder is absorbed by prior
//!    lag but not vice versa).
//! 3. **Gate-coupled** — the two resources are read *together* by one
//!    gate path of a destructive action: an admission check could observe
//!    the pair mid-flight, so the static relation keeps them ordered.
//!    This rule is deliberately conservative: the abstract transition
//!    semantics still commutes on disjoint views (the model checker's
//!    sleep sets therefore only use rule-1/rule-2 dependence), but any
//!    consumer that replays schedules against a *real* gate must not
//!    reorder across a joint read set.
//!
//! The matrix also classifies each letter as **absorbing** or not: an
//! absorbing letter's abstract effect is idempotent and monotone (flags
//! only set, a reorder is subsumed by any existing lag), so re-applying it
//! later in a schedule is provably a self-loop. The model checker uses
//! this for stutter elimination; the canonicalizer uses it to explain why
//! repeated letters never appear in a normal form's tail.

use crate::findings::esc;
use crate::modelcheck::{enabled_alphabet, Letter};
use crate::summary::AccessSummary;

/// Why a pair of letters is (in)dependent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairStatus {
    /// Disjoint views, no shared gate read set: the pair commutes.
    Independent,
    /// At least one letter is `upstream-switch`/`crash-restart-replay`.
    Global,
    /// Both letters perturb the view over the same resource.
    SameView,
    /// The two resources are read together by one destructive gate path.
    GateCoupled,
}

impl PairStatus {
    /// Stable serialized name.
    pub fn as_str(&self) -> &'static str {
        match self {
            PairStatus::Independent => "independent",
            PairStatus::Global => "global",
            PairStatus::SameView => "same-view",
            PairStatus::GateCoupled => "gate-coupled",
        }
    }
}

/// Classifies the pair `(a, b)` against `summary` (order-insensitive).
///
/// Identical letters are [`PairStatus::SameView`]: a letter never
/// commutes with itself in the sense the reduction needs (swapping two
/// copies is the identity, so nothing is gained).
pub fn pair_status(summary: &AccessSummary, a: &Letter, b: &Letter) -> PairStatus {
    if a.resource().is_none() || b.resource().is_none() {
        return PairStatus::Global;
    }
    let (ra, rb) = (a.resource().unwrap(), b.resource().unwrap());
    if ra == rb {
        return PairStatus::SameView;
    }
    if gate_coupling(summary, ra, rb).is_some() {
        return PairStatus::GateCoupled;
    }
    PairStatus::Independent
}

/// The `(action, path)` whose read set couples `ra` and `rb`, if any.
fn gate_coupling<'a>(summary: &'a AccessSummary, ra: &str, rb: &str) -> Option<(&'a str, &'a str)> {
    for action in &summary.actions {
        if !action.destructive {
            continue;
        }
        for path in &action.paths {
            let reads = |r: &str| path.gates.iter().any(|g| g.resource() == r);
            if reads(ra) && reads(rb) {
                return Some((&action.name, &path.name));
            }
        }
    }
    None
}

/// Is this letter's abstract effect idempotent (re-application a
/// self-loop)? `delay-cache` and `traffic-surge` keep aging the view until
/// the lag saturates, so they are not absorbing; everything else sets
/// monotone flags or is subsumed by lag it already created.
pub fn absorbing(letter: &Letter) -> bool {
    matches!(
        letter,
        Letter::ReorderUpdateConsume(_)
            | Letter::DropNotification(_)
            | Letter::UpstreamSwitch
            | Letter::CrashRestartReplay
    )
}

/// One classified letter pair (`a < b` by alphabet index).
#[derive(Debug, Clone)]
pub struct PairEntry {
    /// Index of the first letter in [`IndependenceMatrix::letters`].
    pub a: usize,
    /// Index of the second letter.
    pub b: usize,
    /// The pair's classification.
    pub status: PairStatus,
    /// One-line justification; `None` for independent pairs.
    pub why: Option<String>,
}

/// The per-component independence relation, auditable and deterministic.
#[derive(Debug, Clone)]
pub struct IndependenceMatrix {
    /// Component the relation was derived for.
    pub component: String,
    /// The enabled alphabet, in canonical order.
    letters: Vec<Letter>,
    /// Every unordered pair (`a < b`), in (a, b) index order.
    pairs: Vec<PairEntry>,
    /// Per-letter absorbing classification.
    absorbing: Vec<bool>,
}

impl IndependenceMatrix {
    /// Derives the relation for `summary` over its full enabled alphabet.
    pub fn derive(summary: &AccessSummary) -> IndependenceMatrix {
        let letters = enabled_alphabet(summary);
        Self::build(&summary.component, letters, Some(summary))
    }

    /// Derives a footprint-only relation (rules 1 and 2; no IR to consult
    /// for gate coupling) over an arbitrary alphabet — the dynamic
    /// explorer uses this for concrete injection plans whose "resources"
    /// are cache/component anchors rather than IR views.
    pub fn for_alphabet(component: &str, letters: Vec<Letter>) -> IndependenceMatrix {
        Self::build(component, letters, None)
    }

    fn build(
        component: &str,
        letters: Vec<Letter>,
        summary: Option<&AccessSummary>,
    ) -> IndependenceMatrix {
        let mut pairs = Vec::new();
        for a in 0..letters.len() {
            for b in (a + 1)..letters.len() {
                let (la, lb) = (&letters[a], &letters[b]);
                let status = match summary {
                    Some(s) => pair_status(s, la, lb),
                    None => match (la.resource(), lb.resource()) {
                        (None, _) | (_, None) => PairStatus::Global,
                        (Some(ra), Some(rb)) if ra == rb => PairStatus::SameView,
                        _ => PairStatus::Independent,
                    },
                };
                let why = match status {
                    PairStatus::Independent => None,
                    PairStatus::Global => {
                        let g = if la.resource().is_none() { la } else { lb };
                        Some(format!(
                            "`{}` is global: it re-lists every stale-able view and crosses \
                             the crash/replay boundary, so it commutes with nothing",
                            g.label()
                        ))
                    }
                    PairStatus::SameView => Some(format!(
                        "both perturb the view over `{}`: order is semantically visible \
                         (lag absorbs reorders, but not vice versa)",
                        la.resource().unwrap_or("?")
                    )),
                    PairStatus::GateCoupled => {
                        let (action, path) = summary
                            .and_then(|s| {
                                gate_coupling(s, la.resource().unwrap(), lb.resource().unwrap())
                            })
                            .unwrap_or(("?", "?"));
                        Some(format!(
                            "gate path `{path}` of `{action}` reads both `{}` and `{}`: an \
                             admission check could observe the pair mid-flight",
                            la.resource().unwrap_or("?"),
                            lb.resource().unwrap_or("?"),
                        ))
                    }
                };
                pairs.push(PairEntry { a, b, status, why });
            }
        }
        let absorbing = letters.iter().map(absorbing).collect();
        IndependenceMatrix {
            component: component.to_string(),
            letters,
            pairs,
            absorbing,
        }
    }

    /// The alphabet the relation is over, in canonical order.
    pub fn letters(&self) -> &[Letter] {
        &self.letters
    }

    /// Index of `letter` in the alphabet, if enabled.
    pub fn index_of(&self, letter: &Letter) -> Option<usize> {
        self.letters.iter().position(|l| l == letter)
    }

    /// The classified pairs (`a < b`), in index order.
    pub fn pairs(&self) -> &[PairEntry] {
        &self.pairs
    }

    /// Classification of the unordered pair `(i, j)`; identical indices
    /// are [`PairStatus::SameView`].
    pub fn status_idx(&self, i: usize, j: usize) -> PairStatus {
        if i == j {
            return PairStatus::SameView;
        }
        let (a, b) = (i.min(j), i.max(j));
        self.pairs
            .iter()
            .find(|p| p.a == a && p.b == b)
            .map(|p| p.status)
            .unwrap_or(PairStatus::SameView)
    }

    /// Do `a` and `b` commute? Letters outside the alphabet are
    /// conservatively dependent.
    pub fn independent(&self, a: &Letter, b: &Letter) -> bool {
        match (self.index_of(a), self.index_of(b)) {
            (Some(i), Some(j)) => self.status_idx(i, j) == PairStatus::Independent,
            _ => false,
        }
    }

    /// Is the letter at `i` absorbing (re-application a self-loop)?
    pub fn absorbing_idx(&self, i: usize) -> bool {
        self.absorbing.get(i).copied().unwrap_or(false)
    }

    /// `(independent, total)` pair counts.
    pub fn pair_counts(&self) -> (usize, usize) {
        let ind = self
            .pairs
            .iter()
            .filter(|p| p.status == PairStatus::Independent)
            .count();
        (ind, self.pairs.len())
    }

    /// Deterministic JSON object: alphabet, absorbing set, and every pair
    /// with its classification (and a justification when dependent).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"component\":\"");
        s.push_str(&esc(&self.component));
        s.push_str("\",\"letters\":[");
        for (i, l) in self.letters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            s.push_str(&esc(&l.label()));
            s.push('"');
        }
        s.push_str("],\"absorbing\":[");
        let mut first = true;
        for (l, &a) in self.letters.iter().zip(&self.absorbing) {
            if !a {
                continue;
            }
            if !first {
                s.push(',');
            }
            first = false;
            s.push('"');
            s.push_str(&esc(&l.label()));
            s.push('"');
        }
        let (ind, total) = self.pair_counts();
        s.push_str("],\"independent_pairs\":");
        s.push_str(&ind.to_string());
        s.push_str(",\"total_pairs\":");
        s.push_str(&total.to_string());
        s.push_str(",\"pairs\":[");
        for (i, p) in self.pairs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"a\":\"");
            s.push_str(&esc(&self.letters[p.a].label()));
            s.push_str("\",\"b\":\"");
            s.push_str(&esc(&self.letters[p.b].label()));
            s.push_str("\",\"status\":\"");
            s.push_str(p.status.as_str());
            s.push('"');
            if let Some(why) = &p.why {
                s.push_str(",\"why\":\"");
                s.push_str(&esc(why));
                s.push('"');
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Multi-line human rendering: a summary line, then one line per
    /// dependent pair with its justification.
    pub fn render(&self) -> String {
        let (ind, total) = self.pair_counts();
        let absorbing: Vec<String> = self
            .letters
            .iter()
            .zip(&self.absorbing)
            .filter(|(_, &a)| a)
            .map(|(l, _)| l.label())
            .collect();
        let mut out = format!(
            "independence({}): {} letters, {ind}/{total} pairs independent, absorbing: [{}]\n",
            self.component,
            self.letters.len(),
            absorbing.join(", ")
        );
        for p in &self.pairs {
            if p.status == PairStatus::Independent {
                continue;
            }
            out.push_str(&format!(
                "  {} x {} [{}]: {}\n",
                self.letters[p.a].label(),
                self.letters[p.b].label(),
                p.status.as_str(),
                p.why.as_deref().unwrap_or("")
            ));
        }
        out
    }
}

/// Derives matrices for a set of summaries, in input order.
pub fn derive_all(summaries: &[AccessSummary]) -> Vec<IndependenceMatrix> {
    summaries.iter().map(IndependenceMatrix::derive).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{ActionDecl, Gate, GatePath, ReadKind, ViewDecl};

    fn cache_view(resource: &str) -> ViewDecl {
        ViewDecl {
            resource: resource.to_string(),
            list: ReadKind::Cache,
            watch: true,
            relist_on_gap: true,
            periodic_resync: false,
            event_replay: false,
            congestible: false,
        }
    }

    fn two_view_summary(coupled: bool) -> AccessSummary {
        let gates = if coupled {
            vec![
                Gate::CacheAbsence("pods".into()),
                Gate::CachePresence("nodes".into()),
            ]
        } else {
            vec![Gate::CacheAbsence("pods".into())]
        };
        AccessSummary {
            component: "c".into(),
            upstream_switch: true,
            views: vec![cache_view("nodes"), cache_view("pods")],
            actions: vec![ActionDecl {
                name: "delete".into(),
                destructive: true,
                paths: vec![GatePath::new("p", gates)],
            }],
        }
    }

    #[test]
    fn disjoint_views_commute_same_view_does_not() {
        let m = IndependenceMatrix::derive(&two_view_summary(false));
        let dn = Letter::DelayCache("nodes".into());
        let dp = Letter::DelayCache("pods".into());
        let rp = Letter::ReorderUpdateConsume("pods".into());
        assert!(m.independent(&dn, &dp));
        assert!(!m.independent(&dp, &rp), "same view never commutes");
    }

    #[test]
    fn global_letters_commute_with_nothing() {
        let m = IndependenceMatrix::derive(&two_view_summary(false));
        let us = Letter::UpstreamSwitch;
        let crr = Letter::CrashRestartReplay;
        for l in m.letters().to_vec() {
            if l != us {
                assert!(
                    !m.independent(&us, &l),
                    "{} commuted with switch",
                    l.label()
                );
            }
            if l != crr {
                assert!(
                    !m.independent(&crr, &l),
                    "{} commuted with crash",
                    l.label()
                );
            }
        }
    }

    #[test]
    fn joint_gate_read_set_couples_the_pair() {
        let m = IndependenceMatrix::derive(&two_view_summary(true));
        let dn = Letter::DelayCache("nodes".into());
        let dp = Letter::DelayCache("pods".into());
        assert!(!m.independent(&dn, &dp));
        let (i, j) = (m.index_of(&dn).unwrap(), m.index_of(&dp).unwrap());
        assert_eq!(m.status_idx(i, j), PairStatus::GateCoupled);
        let entry = m
            .pairs()
            .iter()
            .find(|p| (p.a, p.b) == (i.min(j), i.max(j)))
            .unwrap();
        assert!(entry.why.as_deref().unwrap_or("").contains("gate path"));
    }

    #[test]
    fn json_is_deterministic_and_carries_justifications() {
        let s = two_view_summary(true);
        let a = IndependenceMatrix::derive(&s).to_json();
        let b = IndependenceMatrix::derive(&s).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"status\":\"gate-coupled\""));
        assert!(a.contains("\"status\":\"global\""));
        assert!(a.contains("\"why\":"));
        assert!(a.contains("\"absorbing\":["));
    }

    #[test]
    fn footprint_matrix_ignores_gates() {
        let letters = vec![
            Letter::DelayCache("cache:0".into()),
            Letter::DropNotification("cache:1".into()),
            Letter::CrashRestartReplay,
        ];
        let m = IndependenceMatrix::for_alphabet("plan", letters);
        assert!(m.independent(
            &Letter::DelayCache("cache:0".into()),
            &Letter::DropNotification("cache:1".into())
        ));
        assert!(!m.independent(
            &Letter::DelayCache("cache:0".into()),
            &Letter::CrashRestartReplay
        ));
    }

    #[test]
    fn absorbing_classification_matches_semantics() {
        assert!(absorbing(&Letter::ReorderUpdateConsume("r".into())));
        assert!(absorbing(&Letter::DropNotification("r".into())));
        assert!(absorbing(&Letter::UpstreamSwitch));
        assert!(absorbing(&Letter::CrashRestartReplay));
        assert!(!absorbing(&Letter::DelayCache("r".into())));
        assert!(!absorbing(&Letter::TrafficSurge("r".into())));
    }
}
