//! Bounded explicit-state model checking over the [`AccessSummary`] IR.
//!
//! [`check_summary`](crate::summary::check_summary) pattern-matches the IR
//! and says *whether* a §4.2 hazard class is possible. This module answers
//! the stronger question: *which perturbation schedule reaches it*. It
//! tracks, per view, a small symbolic freshness state — how many epochs the
//! view lags truth (capped at [`STALE_BOUND`], the §6.2 epoch counter),
//! whether an upstream switch has made it time-traveled, whether a watch
//! event was irrecoverably lost, and whether the component is hearing a
//! false silence — and explores the closure of that state space under an
//! alphabet of abstract perturbations ([`Letter`]).
//!
//! For every destructive action the checker either
//!
//! * emits a **minimal hazard witness** ([`Witness`]): the shortest
//!   perturbation schedule, in canonical alphabet order, after which some
//!   gate path admits the action while its guarding view is hazardous —
//!   classified with the §4.2 taxonomy; or
//! * proves the action **epoch-safe**: the *entire* reachable state space
//!   (every interleaving of every perturbation, staleness bounded by
//!   [`STALE_BOUND`]) contains no state satisfying any unfenced path, so
//!   every route to the action is fenced within epoch bounds.
//!
//! The exploration is exhaustive and the witness search breadth-first, so
//! the verdict is *complete* relative to the abstraction: a hazard class
//! has a witness **iff** `check_summary` flags it (the transition relation
//! was derived from the same four rules), and the witness is the shortest
//! schedule in the deterministic letter order. That containment is what
//! lets [`ModelCheckReport::hazards`] replace `check_summary` as the
//! static verdict source for the cross-check table, while the schedules
//! additionally seed the dynamic explorer (`ph-core::autoguide`).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::findings::esc;
use crate::summary::{AccessSummary, Gate, GatePath, Hazard, PatternClass, ReadKind};

/// Cap on the per-view staleness counter: views lagging by more than this
/// many epochs are indistinguishable to every gate, so the state space is
/// finite without losing any hazard (the gates only test *lag > 0*).
pub const STALE_BOUND: u8 = 3;

/// One abstract perturbation. The declaration order is the canonical
/// alphabet order: witnesses are minimal first by schedule length, then
/// lexicographically by letter index, so the same IR always yields the
/// same witness bytes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Letter {
    /// Delay the cache feeding the view over this resource by one epoch
    /// (§4.2.1: an apiserver watch cache falls behind the store).
    DelayCache(String),
    /// Reorder an update against its consumption: the component reads the
    /// view one epoch before the write it races with lands (a bounded
    /// special case of [`Letter::DelayCache`], kept for schedule realism).
    ReorderUpdateConsume(String),
    /// Drop a notification carrying an event or a liveness signal for this
    /// resource (§4.2.3: the event is missed; silence turns false).
    DropNotification(String),
    /// The component re-lists from a different — possibly older — upstream
    /// (§4.2.2: restart under `ByInstance`, or a retry detour).
    UpstreamSwitch,
    /// Crash, restart against a stale upstream, replay: the upstream
    /// switch plus the loss of any queued non-replayable watch events.
    CrashRestartReplay,
    /// Saturate the link feeding the view over this resource (§4.1): the
    /// offered load exceeds modeled capacity, so queueing delay and tail
    /// drops age the view with zero injected faults. Only enabled for
    /// views declared congestible.
    TrafficSurge(String),
}

impl Letter {
    /// Stable serialized name, e.g. `delay-cache(pods)`.
    pub fn label(&self) -> String {
        match self {
            Letter::DelayCache(r) => format!("delay-cache({r})"),
            Letter::ReorderUpdateConsume(r) => format!("reorder-update-consume({r})"),
            Letter::DropNotification(r) => format!("drop-notification({r})"),
            Letter::UpstreamSwitch => "upstream-switch".to_string(),
            Letter::CrashRestartReplay => "crash-restart-replay".to_string(),
            Letter::TrafficSurge(r) => format!("traffic-surge({r})"),
        }
    }

    /// The resource the letter perturbs, if it targets one.
    pub fn resource(&self) -> Option<&str> {
        match self {
            Letter::DelayCache(r)
            | Letter::ReorderUpdateConsume(r)
            | Letter::DropNotification(r)
            | Letter::TrafficSurge(r) => Some(r),
            Letter::UpstreamSwitch | Letter::CrashRestartReplay => None,
        }
    }
}

impl std::fmt::Display for Letter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A minimal hazard witness: the shortest perturbation schedule after
/// which `action` is admitted by `path` while the guarding view is
/// hazardous.
#[derive(Debug, Clone)]
pub struct Witness {
    /// Component the hazard lives in.
    pub component: String,
    /// The gated destructive action.
    pub action: String,
    /// §4.2 classification of the witnessed state.
    pub class: PatternClass,
    /// The admitting gate path (`*` for action-level missed-trigger
    /// hazards, which quantify over every path).
    pub path: String,
    /// The schedule, in canonical alphabet order.
    pub schedule: Vec<Letter>,
    /// Human explanation of the witnessed state.
    pub detail: String,
}

impl Witness {
    /// Deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"component\":\"");
        s.push_str(&esc(&self.component));
        s.push_str("\",\"action\":\"");
        s.push_str(&esc(&self.action));
        s.push_str("\",\"class\":\"");
        s.push_str(self.class.as_str());
        s.push_str("\",\"path\":\"");
        s.push_str(&esc(&self.path));
        s.push_str("\",\"schedule\":[");
        for (i, l) in self.schedule.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            s.push_str(&esc(&l.label()));
            s.push('"');
        }
        s.push_str("],\"detail\":\"");
        s.push_str(&esc(&self.detail));
        s.push_str("\"}");
        s
    }

    /// One-line rendering: `action [class] via letter1 ; letter2`.
    pub fn render(&self) -> String {
        let sched: Vec<String> = self.schedule.iter().map(Letter::label).collect();
        format!(
            "{} [{}] via [{}]",
            self.action,
            self.class.as_str(),
            sched.join(" ; ")
        )
    }
}

/// The checker's verdict on one destructive action.
#[derive(Debug, Clone)]
pub enum ActionVerdict {
    /// At least one reachable hazardous admission; minimal witnesses, one
    /// per hazard class, in class order.
    Hazardous(Vec<Witness>),
    /// Every reachable state that admits the action is fenced: the action
    /// is safe within epoch bounds.
    EpochSafe,
}

/// Verdict for one destructive action of the component.
#[derive(Debug, Clone)]
pub struct ActionReport {
    /// The action's declared name.
    pub action: String,
    /// Its verdict.
    pub verdict: ActionVerdict,
}

/// The full model-checking result for one component.
#[derive(Debug, Clone)]
pub struct ModelCheckReport {
    /// Component name.
    pub component: String,
    /// Size of the explored (= entire reachable) state space.
    pub states_explored: usize,
    /// The staleness cap the epoch-safety proof is relative to.
    pub stale_bound: u8,
    /// One entry per destructive action, in declaration order.
    pub actions: Vec<ActionReport>,
}

impl ModelCheckReport {
    /// `true` when every destructive action is epoch-safe.
    pub fn is_epoch_safe(&self) -> bool {
        self.actions
            .iter()
            .all(|a| matches!(a.verdict, ActionVerdict::EpochSafe))
    }

    /// All witnesses, in (action declaration, class) order.
    pub fn witnesses(&self) -> Vec<&Witness> {
        self.actions
            .iter()
            .filter_map(|a| match &a.verdict {
                ActionVerdict::Hazardous(ws) => Some(ws.iter()),
                ActionVerdict::EpochSafe => None,
            })
            .flatten()
            .collect()
    }

    /// Adapts witnesses to the [`Hazard`] shape the cross-check table
    /// consumes, carrying the witness schedule in the detail.
    pub fn hazards(&self) -> Vec<Hazard> {
        self.witnesses()
            .into_iter()
            .map(|w| Hazard {
                component: w.component.clone(),
                action: w.action.clone(),
                class: w.class,
                detail: {
                    let sched: Vec<String> = w.schedule.iter().map(Letter::label).collect();
                    format!("{} [witness: {}]", w.detail, sched.join(" ; "))
                },
            })
            .collect()
    }

    /// Deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"component\":\"");
        s.push_str(&esc(&self.component));
        s.push_str("\",\"states_explored\":");
        s.push_str(&self.states_explored.to_string());
        s.push_str(",\"stale_bound\":");
        s.push_str(&self.stale_bound.to_string());
        s.push_str(",\"actions\":[");
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"action\":\"");
            s.push_str(&esc(&a.action));
            s.push('"');
            match &a.verdict {
                ActionVerdict::EpochSafe => {
                    s.push_str(",\"verdict\":\"epoch-safe\"}");
                }
                ActionVerdict::Hazardous(ws) => {
                    s.push_str(",\"verdict\":\"hazardous\",\"witnesses\":[");
                    for (j, w) in ws.iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        s.push_str(&w.to_json());
                    }
                    s.push_str("]}");
                }
            }
        }
        s.push_str("]}");
        s
    }
}

// ---------------------------------------------------------------------
// The symbolic state
// ---------------------------------------------------------------------

const F_TIME_TRAVELED: u8 = 1 << 2;
const F_EVENT_LOST: u8 = 1 << 3;
const F_FALSE_SILENCE: u8 = 1 << 4;
const F_CONGESTED: u8 = 1 << 5;
const STALE_MASK: u8 = 0b11;

/// Per-resource packed freshness state: 2 bits of epoch lag plus the three
/// hazard flags. All transitions are monotone (lag saturates, flags only
/// set), which is what makes the reachable space small and the BFS total.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct State(Vec<u8>);

impl State {
    fn fresh(n: usize) -> State {
        State(vec![0; n])
    }

    fn stale(&self, r: usize) -> u8 {
        self.0[r] & STALE_MASK
    }

    fn add_stale(&mut self, r: usize, by: u8) {
        let lag = (self.stale(r) + by).min(STALE_BOUND);
        self.0[r] = (self.0[r] & !STALE_MASK) | lag;
    }

    fn flag(&self, r: usize, f: u8) -> bool {
        self.0[r] & f != 0
    }

    fn set_flag(&mut self, r: usize, f: u8) {
        self.0[r] |= f;
    }
}

/// The model: the summary, its sorted resource universe, and the enabled
/// alphabet in canonical order.
struct Model<'a> {
    summary: &'a AccessSummary,
    resources: Vec<String>,
    alphabet: Vec<Letter>,
}

impl<'a> Model<'a> {
    fn new(summary: &'a AccessSummary) -> Model<'a> {
        let mut resources: BTreeSet<String> = BTreeSet::new();
        for v in &summary.views {
            resources.insert(v.resource.clone());
        }
        for a in &summary.actions {
            for p in &a.paths {
                for g in &p.gates {
                    resources.insert(g.resource().to_string());
                }
            }
        }
        let resources: Vec<String> = resources.into_iter().collect();

        // The enabled alphabet. A letter is included only when the IR says
        // its perturbation can affect this component, so no-op letters
        // never pad a witness.
        let mut alphabet = Vec::new();
        for r in &resources {
            if stale_able(summary, r) {
                alphabet.push(Letter::DelayCache(r.clone()));
            }
        }
        for r in &resources {
            if stale_able(summary, r) {
                alphabet.push(Letter::ReorderUpdateConsume(r.clone()));
            }
        }
        for r in &resources {
            if droppable(summary, r) {
                alphabet.push(Letter::DropNotification(r.clone()));
            }
        }
        if summary.upstream_switch {
            alphabet.push(Letter::UpstreamSwitch);
            alphabet.push(Letter::CrashRestartReplay);
        }
        for r in &resources {
            if stale_able(summary, r) && congestible(summary, r) {
                alphabet.push(Letter::TrafficSurge(r.clone()));
            }
        }
        Model {
            summary,
            resources,
            alphabet,
        }
    }

    fn idx(&self, resource: &str) -> usize {
        self.resources
            .iter()
            .position(|r| r == resource)
            .expect("gate resources are in the universe by construction")
    }

    /// The successor of `state` under `letter`.
    fn apply(&self, state: &State, letter: &Letter) -> State {
        let mut next = state.clone();
        match letter {
            Letter::DelayCache(r) => next.add_stale(self.idx(r), 1),
            Letter::ReorderUpdateConsume(r) => {
                let i = self.idx(r);
                if next.stale(i) == 0 {
                    next.add_stale(i, 1);
                }
            }
            Letter::DropNotification(r) => {
                let i = self.idx(r);
                next.set_flag(i, F_FALSE_SILENCE);
                if event_loss_possible(self.summary, r) {
                    next.set_flag(i, F_EVENT_LOST);
                }
            }
            Letter::TrafficSurge(r) => {
                let i = self.idx(r);
                next.set_flag(i, F_CONGESTED);
                next.add_stale(i, 1);
            }
            Letter::UpstreamSwitch => self.switch_upstream(&mut next),
            Letter::CrashRestartReplay => {
                self.switch_upstream(&mut next);
                // The crash additionally loses queued watch notifications
                // for every view that cannot replay history.
                for v in &self.summary.views {
                    if v.watch && !v.event_replay {
                        next.set_flag(self.idx(&v.resource), F_EVENT_LOST);
                    }
                }
            }
        }
        next
    }

    /// Re-list from a potentially older upstream: every stale-able view
    /// may come back at least one epoch behind *and* behind state the
    /// component already consumed (time travel). Quorum-listed and
    /// resynced views re-list fresh, so they are untouched — exactly why
    /// the fixed variants prove epoch-safe.
    fn switch_upstream(&self, state: &mut State) {
        for (i, r) in self.resources.iter().enumerate() {
            if stale_able(self.summary, r) {
                if state.stale(i) == 0 {
                    state.add_stale(i, 1);
                }
                state.set_flag(i, F_TIME_TRAVELED);
            }
        }
    }

    /// Hazardous admissions in `state`, in (action, path, gate) order.
    fn hazards_in(&self, state: &State) -> Vec<(usize, PatternClass, String, String)> {
        let mut out = Vec::new();
        for (ai, action) in self.summary.actions.iter().enumerate() {
            if !action.destructive {
                continue;
            }
            for path in &action.paths {
                // Silence gap: the silence gate is satisfied *because* the
                // liveness signal was dropped, and no fence orders the
                // action after the peer's true state.
                for g in &path.gates {
                    if let Gate::ObservedSilence(r) = g {
                        let hard_fenced = path
                            .gates
                            .iter()
                            .any(|f| matches!(f, Gate::Fence(x) if x == r));
                        if !hard_fenced && state.flag(self.idx(r), F_FALSE_SILENCE) {
                            out.push((
                                ai,
                                PatternClass::ObservabilityGap,
                                path.name.clone(),
                                format!(
                                    "silence over {r} is false (the liveness signal was \
                                     dropped) and path `{}` has no fence on {r}",
                                    path.name
                                ),
                            ));
                        }
                    }
                }

                // Staleness / time travel: only snapshot paths — a path
                // with event or silence evidence is sound against
                // staleness (events cannot claim a state that never
                // existed).
                let has_evidence = path
                    .gates
                    .iter()
                    .any(|g| matches!(g, Gate::ObservedEvent(_) | Gate::ObservedSilence(_)));
                if has_evidence {
                    continue;
                }
                for g in &path.gates {
                    let r = match g {
                        Gate::CachePresence(r) | Gate::CacheAbsence(r) => r,
                        _ => continue,
                    };
                    if fenced(path, r) {
                        continue;
                    }
                    let i = self.idx(r);
                    if state.flag(i, F_TIME_TRAVELED) {
                        out.push((
                            ai,
                            PatternClass::TimeTravel,
                            path.name.clone(),
                            format!(
                                "the view over {r} re-listed from an older upstream; the \
                                 unfenced {r} gate in path `{}` consumes state older than \
                                 what the component already acted on",
                                path.name
                            ),
                        ));
                    } else if state.stale(i) > 0 {
                        out.push((
                            ai,
                            PatternClass::Staleness,
                            path.name.clone(),
                            format!(
                                "the view over {r} lags truth by {} epoch(s) and path `{}` \
                                 admits the action with no fresh-confirm or fence on {r}",
                                state.stale(i),
                                path.name
                            ),
                        ));
                    }
                    if state.flag(i, F_CONGESTED) {
                        out.push((
                            ai,
                            PatternClass::CongestionStaleness,
                            path.name.clone(),
                            format!(
                                "offered load past the capacity of the link feeding the \
                                 view over {r} aged it organically (no injected fault), \
                                 and path `{}` admits the action with no fresh-confirm \
                                 or fence on {r}",
                                path.name
                            ),
                        ));
                    }
                }
            }

            // Missed trigger: every justification requires an event that
            // the state has irrecoverably lost — the action never fires.
            let all_lost = !action.paths.is_empty()
                && action.paths.iter().all(|p| {
                    p.gates.iter().any(|g| {
                        matches!(g, Gate::ObservedEvent(r)
                            if state.flag(self.idx(r), F_EVENT_LOST))
                    })
                });
            if all_lost {
                out.push((
                    ai,
                    PatternClass::ObservabilityGap,
                    "*".to_string(),
                    "every path requires observing an event the schedule has lost over a \
                     view that does not replay history; the trigger is gone and the \
                     action never fires"
                        .to_string(),
                ));
            }
        }
        out
    }
}

/// Can a cache gate on `resource` be stale? Mirrors the checker's rule:
/// cache-backed list with no periodic resync, or no declared view at all.
fn stale_able(s: &AccessSummary, resource: &str) -> bool {
    match s.views.iter().find(|v| v.resource == resource) {
        Some(v) => v.list == ReadKind::Cache && !v.periodic_resync,
        None => true,
    }
}

/// Does the view over `resource` ride a saturable link? Mirrors rule 5:
/// only a *declared* congestible view enables the traffic-surge letter —
/// undeclared reads assume an uncontended feed.
fn congestible(s: &AccessSummary, resource: &str) -> bool {
    s.views
        .iter()
        .find(|v| v.resource == resource)
        .is_some_and(|v| v.congestible)
}

/// Is dropping a notification about `resource` meaningful? Yes when some
/// gate listens for events or silence on it, or a watch feeds its view.
fn droppable(s: &AccessSummary, resource: &str) -> bool {
    let gated = s.actions.iter().any(|a| {
        a.paths.iter().any(|p| {
            p.gates.iter().any(
                |g| matches!(g, Gate::ObservedEvent(r) | Gate::ObservedSilence(r) if r == resource),
            )
        })
    });
    let watched = s.views.iter().any(|v| v.resource == resource && v.watch);
    gated || watched
}

/// Does dropping an event on `resource` lose it forever? Yes unless the
/// declared view replays history on reconnect (undeclared views are
/// unmanaged and lose everything).
fn event_loss_possible(s: &AccessSummary, resource: &str) -> bool {
    s.views
        .iter()
        .find(|v| v.resource == resource)
        .map(|v| !v.event_replay)
        .unwrap_or(true)
}

/// A gate path discharges staleness on `r` when it re-confirms or fences.
fn fenced(path: &GatePath, r: &str) -> bool {
    path.gates
        .iter()
        .any(|g| matches!(g, Gate::FreshConfirm(x) | Gate::Fence(x) if x == r))
}

/// Model-checks one summary: exhaustive BFS over the perturbation closure,
/// recording the minimal witness per (destructive action, hazard class).
pub fn model_check(summary: &AccessSummary) -> ModelCheckReport {
    let model = Model::new(summary);
    let mut visited: BTreeSet<State> = BTreeSet::new();
    let mut queue: VecDeque<(State, Vec<usize>)> = VecDeque::new();
    let init = State::fresh(model.resources.len());
    visited.insert(init.clone());
    queue.push_back((init, Vec::new()));

    // Minimal witnesses, keyed by (action index, class). BFS dequeues
    // states in (schedule length, lexicographic letter index) order, so
    // first insertion wins minimality deterministically.
    let mut found: BTreeMap<(usize, PatternClass), Witness> = BTreeMap::new();

    while let Some((state, schedule)) = queue.pop_front() {
        for (ai, class, path, detail) in model.hazards_in(&state) {
            found.entry((ai, class)).or_insert_with(|| Witness {
                component: summary.component.clone(),
                action: summary.actions[ai].name.clone(),
                class,
                path,
                schedule: schedule
                    .iter()
                    .map(|&li| model.alphabet[li].clone())
                    .collect(),
                detail,
            });
        }
        for (li, letter) in model.alphabet.iter().enumerate() {
            let next = model.apply(&state, letter);
            if visited.insert(next.clone()) {
                let mut sched = schedule.clone();
                sched.push(li);
                queue.push_back((next, sched));
            }
        }
    }

    let actions = summary
        .actions
        .iter()
        .enumerate()
        .filter(|(_, a)| a.destructive)
        .map(|(ai, a)| {
            let ws: Vec<Witness> = found
                .range((ai, PatternClass::Staleness)..=(ai, PatternClass::CongestionStaleness))
                .map(|(_, w)| w.clone())
                .collect();
            ActionReport {
                action: a.name.clone(),
                verdict: if ws.is_empty() {
                    ActionVerdict::EpochSafe
                } else {
                    ActionVerdict::Hazardous(ws)
                },
            }
        })
        .collect();

    ModelCheckReport {
        component: summary.component.clone(),
        states_explored: visited.len(),
        stale_bound: STALE_BOUND,
        actions,
    }
}

/// Model-checks a set of summaries, in input order.
pub fn model_check_all(summaries: &[AccessSummary]) -> Vec<ModelCheckReport> {
    summaries.iter().map(model_check).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{check_summary, ActionDecl, ViewDecl};

    fn cache_view(resource: &str) -> ViewDecl {
        ViewDecl {
            resource: resource.to_string(),
            list: ReadKind::Cache,
            watch: true,
            relist_on_gap: true,
            periodic_resync: false,
            event_replay: false,
            congestible: false,
        }
    }

    fn summary(upstream_switch: bool, views: Vec<ViewDecl>, paths: Vec<GatePath>) -> AccessSummary {
        AccessSummary {
            component: "c".into(),
            upstream_switch,
            views,
            actions: vec![ActionDecl {
                name: "delete".into(),
                destructive: true,
                paths,
            }],
        }
    }

    /// (action, class) pairs from the heuristic checker.
    fn heuristic_pairs(s: &AccessSummary) -> BTreeSet<(String, PatternClass)> {
        check_summary(s)
            .into_iter()
            .map(|h| (h.action, h.class))
            .collect()
    }

    /// (action, class) pairs from the model checker's witnesses.
    fn model_pairs(s: &AccessSummary) -> BTreeSet<(String, PatternClass)> {
        model_check(s)
            .witnesses()
            .into_iter()
            .map(|w| (w.action.clone(), w.class))
            .collect()
    }

    #[test]
    fn unfenced_cache_gate_has_a_one_letter_staleness_witness() {
        let s = summary(
            false,
            vec![cache_view("pods")],
            vec![GatePath::new(
                "orphan",
                vec![Gate::CacheAbsence("pods".into())],
            )],
        );
        let report = model_check(&s);
        let ws = report.witnesses();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].class, PatternClass::Staleness);
        assert_eq!(ws[0].schedule, vec![Letter::DelayCache("pods".into())]);
        assert_eq!(ws[0].path, "orphan");
    }

    #[test]
    fn upstream_switch_yields_a_time_travel_witness_too() {
        let s = summary(
            true,
            vec![cache_view("pods")],
            vec![GatePath::new(
                "orphan",
                vec![Gate::CacheAbsence("pods".into())],
            )],
        );
        let report = model_check(&s);
        let classes: Vec<PatternClass> = report.witnesses().iter().map(|w| w.class).collect();
        assert_eq!(
            classes,
            vec![PatternClass::Staleness, PatternClass::TimeTravel]
        );
        let tt = report
            .witnesses()
            .into_iter()
            .find(|w| w.class == PatternClass::TimeTravel)
            .unwrap()
            .clone();
        assert_eq!(tt.schedule, vec![Letter::UpstreamSwitch]);
    }

    #[test]
    fn fenced_paths_prove_epoch_safe() {
        let s = summary(
            true,
            vec![cache_view("pods")],
            vec![GatePath::new(
                "orphan-confirmed",
                vec![
                    Gate::CacheAbsence("pods".into()),
                    Gate::FreshConfirm("pods".into()),
                ],
            )],
        );
        let report = model_check(&s);
        assert!(report.is_epoch_safe());
        assert!(report.states_explored > 1, "exploration actually ran");
    }

    #[test]
    fn quorum_views_prove_epoch_safe_under_upstream_switch() {
        let mut v = cache_view("pods");
        v.list = ReadKind::Quorum;
        let s = summary(
            true,
            vec![v],
            vec![GatePath::new(
                "orphan",
                vec![Gate::CacheAbsence("pods".into())],
            )],
        );
        assert!(model_check(&s).is_epoch_safe());
    }

    #[test]
    fn event_only_action_has_a_drop_notification_witness() {
        let s = summary(
            false,
            vec![cache_view("pods")],
            vec![GatePath::new(
                "observed-terminating",
                vec![Gate::ObservedEvent("pods".into())],
            )],
        );
        let report = model_check(&s);
        let ws = report.witnesses();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].class, PatternClass::ObservabilityGap);
        assert_eq!(
            ws[0].schedule,
            vec![Letter::DropNotification("pods".into())]
        );
        assert_eq!(ws[0].path, "*");
    }

    #[test]
    fn silence_gate_without_fence_has_a_gap_witness() {
        let s = summary(
            false,
            vec![cache_view("leases"), cache_view("pods")],
            vec![GatePath::new(
                "missed-leases",
                vec![
                    Gate::ObservedSilence("leases".into()),
                    Gate::CachePresence("pods".into()),
                ],
            )],
        );
        let report = model_check(&s);
        let ws = report.witnesses();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].class, PatternClass::ObservabilityGap);
        assert_eq!(
            ws[0].schedule,
            vec![Letter::DropNotification("leases".into())]
        );
    }

    #[test]
    fn event_replay_views_survive_dropped_notifications() {
        let mut v = cache_view("pods");
        v.event_replay = true;
        let s = summary(
            false,
            vec![v],
            vec![GatePath::new(
                "observed-terminating",
                vec![Gate::ObservedEvent("pods".into())],
            )],
        );
        assert!(model_check(&s).is_epoch_safe());
    }

    /// Exhaustive agreement with the heuristic checker over an enumerated
    /// IR space: every combination of list kind, resync, replay, upstream
    /// switch, and gate-path shape must produce the same (action, class)
    /// hazard set — witnesses are strictly *more* information, never a
    /// different verdict.
    #[test]
    fn model_checker_agrees_with_check_summary_everywhere() {
        let path_shapes: Vec<Vec<GatePath>> = vec![
            vec![GatePath::new("p", vec![Gate::CacheAbsence("r".into())])],
            vec![GatePath::new("p", vec![Gate::CachePresence("r".into())])],
            vec![GatePath::new(
                "p",
                vec![
                    Gate::CacheAbsence("r".into()),
                    Gate::FreshConfirm("r".into()),
                ],
            )],
            vec![GatePath::new(
                "p",
                vec![Gate::CachePresence("r".into()), Gate::Fence("r".into())],
            )],
            vec![GatePath::new("p", vec![Gate::ObservedEvent("r".into())])],
            vec![GatePath::new(
                "p",
                vec![
                    Gate::ObservedSilence("r".into()),
                    Gate::CachePresence("r".into()),
                ],
            )],
            vec![GatePath::new(
                "p",
                vec![Gate::ObservedSilence("r".into()), Gate::Fence("r".into())],
            )],
            vec![
                GatePath::new("e", vec![Gate::ObservedEvent("r".into())]),
                GatePath::new(
                    "s",
                    vec![
                        Gate::CacheAbsence("r".into()),
                        Gate::FreshConfirm("r".into()),
                    ],
                ),
            ],
            vec![
                GatePath::new("e", vec![Gate::ObservedEvent("r".into())]),
                GatePath::new("s", vec![Gate::CacheAbsence("r".into())]),
            ],
        ];
        let mut cases = 0;
        for declare_view in [false, true] {
            for list in [ReadKind::Cache, ReadKind::Quorum] {
                for periodic_resync in [false, true] {
                    for event_replay in [false, true] {
                        for congestible in [false, true] {
                            for upstream_switch in [false, true] {
                                for paths in &path_shapes {
                                    let views = if declare_view {
                                        vec![ViewDecl {
                                            resource: "r".into(),
                                            list,
                                            watch: true,
                                            relist_on_gap: true,
                                            periodic_resync,
                                            event_replay,
                                            congestible,
                                        }]
                                    } else {
                                        Vec::new()
                                    };
                                    let s = summary(upstream_switch, views, paths.clone());
                                    assert_eq!(
                                        heuristic_pairs(&s),
                                        model_pairs(&s),
                                        "divergence: view={declare_view} list={list:?} \
                                         resync={periodic_resync} replay={event_replay} \
                                         congestible={congestible} \
                                         switch={upstream_switch} paths={paths:?}"
                                    );
                                    cases += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(cases, 2 * 2 * 2 * 2 * 2 * 2 * path_shapes.len());
    }

    #[test]
    fn congestible_view_has_a_one_letter_traffic_surge_witness() {
        let mut v = cache_view("pods");
        v.congestible = true;
        let s = summary(
            false,
            vec![v],
            vec![GatePath::new(
                "orphan",
                vec![Gate::CacheAbsence("pods".into())],
            )],
        );
        let report = model_check(&s);
        let classes: Vec<PatternClass> = report.witnesses().iter().map(|w| w.class).collect();
        assert_eq!(
            classes,
            vec![PatternClass::Staleness, PatternClass::CongestionStaleness]
        );
        let cw = report
            .witnesses()
            .into_iter()
            .find(|w| w.class == PatternClass::CongestionStaleness)
            .unwrap()
            .clone();
        assert_eq!(
            cw.schedule,
            vec![Letter::TrafficSurge("pods".into())],
            "minimal congestion witness is the surge alone — no injected fault"
        );
        assert_eq!(cw.path, "orphan");
    }

    #[test]
    fn resynced_congestible_view_proves_epoch_safe() {
        let mut v = cache_view("pods");
        v.congestible = true;
        v.periodic_resync = true;
        let s = summary(
            false,
            vec![v],
            vec![GatePath::new(
                "orphan",
                vec![Gate::CacheAbsence("pods".into())],
            )],
        );
        assert!(model_check(&s).is_epoch_safe());
    }

    #[test]
    fn report_json_is_deterministic_across_runs() {
        let s = summary(
            true,
            vec![cache_view("pods"), cache_view("leases")],
            vec![
                GatePath::new("snap", vec![Gate::CacheAbsence("pods".into())]),
                GatePath::new("silence", vec![Gate::ObservedSilence("leases".into())]),
            ],
        );
        let a = model_check(&s).to_json();
        let b = model_check(&s).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"verdict\":\"hazardous\""));
        assert!(a.contains("delay-cache(pods)"));
    }

    #[test]
    fn non_destructive_actions_are_not_reported() {
        let s = AccessSummary {
            component: "c".into(),
            upstream_switch: true,
            views: vec![cache_view("pods")],
            actions: vec![ActionDecl {
                name: "create".into(),
                destructive: false,
                paths: vec![GatePath::new(
                    "missing",
                    vec![Gate::CacheAbsence("pods".into())],
                )],
            }],
        };
        let report = model_check(&s);
        assert!(report.actions.is_empty());
        assert!(report.is_epoch_safe());
    }
}
