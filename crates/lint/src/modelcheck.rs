//! Bounded explicit-state model checking over the [`AccessSummary`] IR.
//!
//! [`check_summary`](crate::summary::check_summary) pattern-matches the IR
//! and says *whether* a §4.2 hazard class is possible. This module answers
//! the stronger question: *which perturbation schedule reaches it*. It
//! tracks, per view, a small symbolic freshness state — how many epochs the
//! view lags truth (capped at [`STALE_BOUND`], the §6.2 epoch counter),
//! whether an upstream switch has made it time-traveled, whether a watch
//! event was irrecoverably lost, and whether the component is hearing a
//! false silence — and explores the closure of that state space under an
//! alphabet of abstract perturbations ([`Letter`]).
//!
//! For every destructive action the checker either
//!
//! * emits a **minimal hazard witness** ([`Witness`]): the shortest
//!   perturbation schedule, in canonical alphabet order, after which some
//!   gate path admits the action while its guarding view is hazardous —
//!   classified with the §4.2 taxonomy; or
//! * proves the action **epoch-safe**: the *entire* reachable state space
//!   (every interleaving of every perturbation, staleness bounded by
//!   [`STALE_BOUND`]) contains no state satisfying any unfenced path, so
//!   every route to the action is fenced within epoch bounds.
//!
//! The exploration covers the full reachable space and the witness search
//! is breadth-first, so the verdict is *complete* relative to the
//! abstraction: a hazard class has a witness **iff** `check_summary` flags
//! it (the transition relation was derived from the same four rules), and
//! the witness is the shortest schedule in the deterministic letter order.
//! That containment is what lets [`ModelCheckReport::hazards`] replace
//! `check_summary` as the static verdict source for the cross-check table,
//! while the schedules additionally seed the dynamic explorer
//! (`ph-core::autoguide`).
//!
//! By default the BFS runs with **partial-order reduction**
//! ([`Expansion::Reduced`]): the resource universe is sliced to the cone
//! of influence, permanently-absorbed letters are skipped, and sleep sets
//! driven by the static independence relation ([`crate::independence`])
//! prune commuting interleavings — with witnesses and epoch-safety
//! verdicts provably (and test-pinned) identical to the reference
//! [`model_check_exhaustive`], at a fraction of the expansion work
//! (reported as [`ModelCheckReport::states_expanded`]).

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::findings::esc;
use crate::independence::{pair_status, PairStatus};
use crate::summary::{AccessSummary, Gate, GatePath, Hazard, PatternClass, ReadKind};

/// Cap on the per-view staleness counter: views lagging by more than this
/// many epochs are indistinguishable to every gate, so the state space is
/// finite without losing any hazard (the gates only test *lag > 0*).
pub const STALE_BOUND: u8 = 3;

/// One abstract perturbation. The declaration order is the canonical
/// alphabet order: witnesses are minimal first by schedule length, then
/// lexicographically by letter index, so the same IR always yields the
/// same witness bytes.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Letter {
    /// Delay the cache feeding the view over this resource by one epoch
    /// (§4.2.1: an apiserver watch cache falls behind the store).
    DelayCache(String),
    /// Reorder an update against its consumption: the component reads the
    /// view one epoch before the write it races with lands (a bounded
    /// special case of [`Letter::DelayCache`], kept for schedule realism).
    ReorderUpdateConsume(String),
    /// Drop a notification carrying an event or a liveness signal for this
    /// resource (§4.2.3: the event is missed; silence turns false).
    DropNotification(String),
    /// The component re-lists from a different — possibly older — upstream
    /// (§4.2.2: restart under `ByInstance`, or a retry detour).
    UpstreamSwitch,
    /// Crash, restart against a stale upstream, replay: the upstream
    /// switch plus the loss of any queued non-replayable watch events.
    CrashRestartReplay,
    /// Saturate the link feeding the view over this resource (§4.1): the
    /// offered load exceeds modeled capacity, so queueing delay and tail
    /// drops age the view with zero injected faults. Only enabled for
    /// views declared congestible.
    TrafficSurge(String),
}

impl Letter {
    /// Stable serialized name, e.g. `delay-cache(pods)`.
    pub fn label(&self) -> String {
        match self {
            Letter::DelayCache(r) => format!("delay-cache({r})"),
            Letter::ReorderUpdateConsume(r) => format!("reorder-update-consume({r})"),
            Letter::DropNotification(r) => format!("drop-notification({r})"),
            Letter::UpstreamSwitch => "upstream-switch".to_string(),
            Letter::CrashRestartReplay => "crash-restart-replay".to_string(),
            Letter::TrafficSurge(r) => format!("traffic-surge({r})"),
        }
    }

    /// The resource the letter perturbs, if it targets one.
    pub fn resource(&self) -> Option<&str> {
        match self {
            Letter::DelayCache(r)
            | Letter::ReorderUpdateConsume(r)
            | Letter::DropNotification(r)
            | Letter::TrafficSurge(r) => Some(r),
            Letter::UpstreamSwitch | Letter::CrashRestartReplay => None,
        }
    }
}

impl std::fmt::Display for Letter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// A minimal hazard witness: the shortest perturbation schedule after
/// which `action` is admitted by `path` while the guarding view is
/// hazardous.
#[derive(Debug, Clone)]
pub struct Witness {
    /// Component the hazard lives in.
    pub component: String,
    /// The gated destructive action.
    pub action: String,
    /// §4.2 classification of the witnessed state.
    pub class: PatternClass,
    /// The admitting gate path (`*` for action-level missed-trigger
    /// hazards, which quantify over every path).
    pub path: String,
    /// The schedule, in canonical alphabet order.
    pub schedule: Vec<Letter>,
    /// Human explanation of the witnessed state.
    pub detail: String,
}

impl Witness {
    /// Deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"component\":\"");
        s.push_str(&esc(&self.component));
        s.push_str("\",\"action\":\"");
        s.push_str(&esc(&self.action));
        s.push_str("\",\"class\":\"");
        s.push_str(self.class.as_str());
        s.push_str("\",\"path\":\"");
        s.push_str(&esc(&self.path));
        s.push_str("\",\"schedule\":[");
        for (i, l) in self.schedule.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            s.push_str(&esc(&l.label()));
            s.push('"');
        }
        s.push_str("],\"detail\":\"");
        s.push_str(&esc(&self.detail));
        s.push_str("\"}");
        s
    }

    /// One-line rendering: `action [class] via letter1 ; letter2`.
    pub fn render(&self) -> String {
        let sched: Vec<String> = self.schedule.iter().map(Letter::label).collect();
        format!(
            "{} [{}] via [{}]",
            self.action,
            self.class.as_str(),
            sched.join(" ; ")
        )
    }
}

/// The checker's verdict on one destructive action.
#[derive(Debug, Clone)]
pub enum ActionVerdict {
    /// At least one reachable hazardous admission; minimal witnesses, one
    /// per hazard class, in class order.
    Hazardous(Vec<Witness>),
    /// Every reachable state that admits the action is fenced: the action
    /// is safe within epoch bounds.
    EpochSafe,
}

/// Verdict for one destructive action of the component.
#[derive(Debug, Clone)]
pub struct ActionReport {
    /// The action's declared name.
    pub action: String,
    /// Its verdict.
    pub verdict: ActionVerdict,
}

/// How the BFS expands the perturbation closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expansion {
    /// Every enabled letter from every reachable state over the full
    /// resource universe — the reference semantics.
    Exhaustive,
    /// Partial-order reduction: the resource universe is sliced to the
    /// cone of influence (resources some destructive gate actually
    /// reads), permanently-no-op letters are skipped (stutter
    /// elimination), and sleep sets prune commuting interleavings using
    /// the static independence relation ([`crate::independence`]) —
    /// only [`PairStatus::Independent`] pairs are ever commuted, so the
    /// conservative gate-coupled pairs stay ordered. Witnesses and
    /// epoch-safety verdicts are provably identical to exhaustive: a
    /// minimal witness never contains a no-op or an irrelevant letter,
    /// and pruned words always have a same-length lexicographically
    /// smaller equivalent that survives.
    Reduced,
}

impl Expansion {
    /// Stable serialized name.
    pub fn as_str(&self) -> &'static str {
        match self {
            Expansion::Exhaustive => "exhaustive",
            Expansion::Reduced => "reduced",
        }
    }
}

/// The full model-checking result for one component.
#[derive(Debug, Clone)]
pub struct ModelCheckReport {
    /// Component name.
    pub component: String,
    /// Size of the explored (= entire reachable, over the expansion's
    /// resource universe) state space.
    pub states_explored: usize,
    /// Successor expansions performed (one per `apply` of a letter to a
    /// dequeued state) — the work metric the reduction shrinks.
    /// `states_explored · |alphabet|` when exhaustive.
    pub states_expanded: usize,
    /// Which expansion strategy produced this report.
    pub expansion: Expansion,
    /// The staleness cap the epoch-safety proof is relative to.
    pub stale_bound: u8,
    /// One entry per destructive action, in declaration order.
    pub actions: Vec<ActionReport>,
}

impl ModelCheckReport {
    /// `true` when every destructive action is epoch-safe.
    pub fn is_epoch_safe(&self) -> bool {
        self.actions
            .iter()
            .all(|a| matches!(a.verdict, ActionVerdict::EpochSafe))
    }

    /// All witnesses, in (action declaration, class) order.
    pub fn witnesses(&self) -> Vec<&Witness> {
        self.actions
            .iter()
            .filter_map(|a| match &a.verdict {
                ActionVerdict::Hazardous(ws) => Some(ws.iter()),
                ActionVerdict::EpochSafe => None,
            })
            .flatten()
            .collect()
    }

    /// Adapts witnesses to the [`Hazard`] shape the cross-check table
    /// consumes, carrying the witness schedule in the detail.
    pub fn hazards(&self) -> Vec<Hazard> {
        self.witnesses()
            .into_iter()
            .map(|w| Hazard {
                component: w.component.clone(),
                action: w.action.clone(),
                class: w.class,
                detail: {
                    let sched: Vec<String> = w.schedule.iter().map(Letter::label).collect();
                    format!("{} [witness: {}]", w.detail, sched.join(" ; "))
                },
            })
            .collect()
    }

    /// Deterministic JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\"component\":\"");
        s.push_str(&esc(&self.component));
        s.push_str("\",\"states_explored\":");
        s.push_str(&self.states_explored.to_string());
        s.push_str(",\"states_expanded\":");
        s.push_str(&self.states_expanded.to_string());
        s.push_str(",\"reduction\":\"");
        s.push_str(self.expansion.as_str());
        s.push_str("\",\"stale_bound\":");
        s.push_str(&self.stale_bound.to_string());
        s.push_str(",\"actions\":[");
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"action\":\"");
            s.push_str(&esc(&a.action));
            s.push('"');
            match &a.verdict {
                ActionVerdict::EpochSafe => {
                    s.push_str(",\"verdict\":\"epoch-safe\"}");
                }
                ActionVerdict::Hazardous(ws) => {
                    s.push_str(",\"verdict\":\"hazardous\",\"witnesses\":[");
                    for (j, w) in ws.iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        s.push_str(&w.to_json());
                    }
                    s.push_str("]}");
                }
            }
        }
        s.push_str("]}");
        s
    }
}

// ---------------------------------------------------------------------
// The symbolic state
// ---------------------------------------------------------------------

const F_TIME_TRAVELED: u8 = 1 << 2;
const F_EVENT_LOST: u8 = 1 << 3;
const F_FALSE_SILENCE: u8 = 1 << 4;
const F_CONGESTED: u8 = 1 << 5;
const STALE_MASK: u8 = 0b11;

/// Per-resource packed freshness state: 2 bits of epoch lag plus the three
/// hazard flags. All transitions are monotone (lag saturates, flags only
/// set), which is what makes the reachable space small and the BFS total.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct State(Vec<u8>);

impl State {
    fn fresh(n: usize) -> State {
        State(vec![0; n])
    }

    fn stale(&self, r: usize) -> u8 {
        self.0[r] & STALE_MASK
    }

    fn add_stale(&mut self, r: usize, by: u8) {
        let lag = (self.stale(r) + by).min(STALE_BOUND);
        self.0[r] = (self.0[r] & !STALE_MASK) | lag;
    }

    fn flag(&self, r: usize, f: u8) -> bool {
        self.0[r] & f != 0
    }

    fn set_flag(&mut self, r: usize, f: u8) {
        self.0[r] |= f;
    }
}

/// The model: the summary, its sorted resource universe, and the enabled
/// alphabet in canonical order.
struct Model<'a> {
    summary: &'a AccessSummary,
    resources: Vec<String>,
    alphabet: Vec<Letter>,
}

impl<'a> Model<'a> {
    fn new(summary: &'a AccessSummary, expansion: Expansion) -> Model<'a> {
        let resources = match expansion {
            Expansion::Exhaustive => resource_universe(summary),
            // Cone of influence: the hazard predicates only read state
            // over resources some destructive gate path mentions, so the
            // reduced model drops every other coordinate — and with it
            // every letter that only perturbs irrelevant views. Minimal
            // witnesses never contain such a letter (dropping it would
            // shorten the witness), so verdicts and witness bytes are
            // unchanged while the state space shrinks multiplicatively.
            Expansion::Reduced => relevant_resources(summary),
        };
        let alphabet = alphabet_over(summary, &resources);
        Model {
            summary,
            resources,
            alphabet,
        }
    }

    fn idx(&self, resource: &str) -> usize {
        self.resources
            .iter()
            .position(|r| r == resource)
            .expect("gate resources are in the universe by construction")
    }

    fn find(&self, resource: &str) -> Option<usize> {
        self.resources.iter().position(|r| r == resource)
    }

    /// Is `letter` a permanent no-op in `state`? Every transition is
    /// monotone (lag saturates, flags only set), so once a letter's whole
    /// effect is already absorbed it stays absorbed: applying it is a
    /// self-loop forever after, and no minimal path contains it. Cheap
    /// bit tests — no clone, no apply.
    fn is_noop(&self, state: &State, letter: &Letter) -> bool {
        match letter {
            Letter::DelayCache(r) => state.stale(self.idx(r)) == STALE_BOUND,
            Letter::ReorderUpdateConsume(r) => state.stale(self.idx(r)) > 0,
            Letter::DropNotification(r) => {
                let i = self.idx(r);
                state.flag(i, F_FALSE_SILENCE)
                    && (!event_loss_possible(self.summary, r) || state.flag(i, F_EVENT_LOST))
            }
            Letter::TrafficSurge(r) => {
                let i = self.idx(r);
                state.flag(i, F_CONGESTED) && state.stale(i) == STALE_BOUND
            }
            Letter::UpstreamSwitch => self.switch_is_noop(state),
            Letter::CrashRestartReplay => {
                self.switch_is_noop(state)
                    && self.summary.views.iter().all(|v| {
                        !v.watch
                            || v.event_replay
                            || self
                                .find(&v.resource)
                                .map(|i| state.flag(i, F_EVENT_LOST))
                                .unwrap_or(true)
                    })
            }
        }
    }

    fn switch_is_noop(&self, state: &State) -> bool {
        self.resources.iter().enumerate().all(|(i, r)| {
            !stale_able(self.summary, r) || (state.stale(i) > 0 && state.flag(i, F_TIME_TRAVELED))
        })
    }

    /// The successor of `state` under `letter`.
    fn apply(&self, state: &State, letter: &Letter) -> State {
        let mut next = state.clone();
        match letter {
            Letter::DelayCache(r) => next.add_stale(self.idx(r), 1),
            Letter::ReorderUpdateConsume(r) => {
                let i = self.idx(r);
                if next.stale(i) == 0 {
                    next.add_stale(i, 1);
                }
            }
            Letter::DropNotification(r) => {
                let i = self.idx(r);
                next.set_flag(i, F_FALSE_SILENCE);
                if event_loss_possible(self.summary, r) {
                    next.set_flag(i, F_EVENT_LOST);
                }
            }
            Letter::TrafficSurge(r) => {
                let i = self.idx(r);
                next.set_flag(i, F_CONGESTED);
                next.add_stale(i, 1);
            }
            Letter::UpstreamSwitch => self.switch_upstream(&mut next),
            Letter::CrashRestartReplay => {
                self.switch_upstream(&mut next);
                // The crash additionally loses queued watch notifications
                // for every view that cannot replay history. (A sliced
                // universe may not track the view's resource at all; its
                // coordinate is then irrelevant to every hazard.)
                for v in &self.summary.views {
                    if v.watch && !v.event_replay {
                        if let Some(i) = self.find(&v.resource) {
                            next.set_flag(i, F_EVENT_LOST);
                        }
                    }
                }
            }
        }
        next
    }

    /// Re-list from a potentially older upstream: every stale-able view
    /// may come back at least one epoch behind *and* behind state the
    /// component already consumed (time travel). Quorum-listed and
    /// resynced views re-list fresh, so they are untouched — exactly why
    /// the fixed variants prove epoch-safe.
    fn switch_upstream(&self, state: &mut State) {
        for (i, r) in self.resources.iter().enumerate() {
            if stale_able(self.summary, r) {
                if state.stale(i) == 0 {
                    state.add_stale(i, 1);
                }
                state.set_flag(i, F_TIME_TRAVELED);
            }
        }
    }

    /// Hazardous admissions in `state`, in (action, path, gate) order.
    fn hazards_in(&self, state: &State) -> Vec<(usize, PatternClass, String, String)> {
        let mut out = Vec::new();
        for (ai, action) in self.summary.actions.iter().enumerate() {
            if !action.destructive {
                continue;
            }
            for path in &action.paths {
                // Silence gap: the silence gate is satisfied *because* the
                // liveness signal was dropped, and no fence orders the
                // action after the peer's true state.
                for g in &path.gates {
                    if let Gate::ObservedSilence(r) = g {
                        let hard_fenced = path
                            .gates
                            .iter()
                            .any(|f| matches!(f, Gate::Fence(x) if x == r));
                        if !hard_fenced && state.flag(self.idx(r), F_FALSE_SILENCE) {
                            out.push((
                                ai,
                                PatternClass::ObservabilityGap,
                                path.name.clone(),
                                format!(
                                    "silence over {r} is false (the liveness signal was \
                                     dropped) and path `{}` has no fence on {r}",
                                    path.name
                                ),
                            ));
                        }
                    }
                }

                // Staleness / time travel: only snapshot paths — a path
                // with event or silence evidence is sound against
                // staleness (events cannot claim a state that never
                // existed).
                let has_evidence = path
                    .gates
                    .iter()
                    .any(|g| matches!(g, Gate::ObservedEvent(_) | Gate::ObservedSilence(_)));
                if has_evidence {
                    continue;
                }
                for g in &path.gates {
                    let r = match g {
                        Gate::CachePresence(r) | Gate::CacheAbsence(r) => r,
                        _ => continue,
                    };
                    if fenced(path, r) {
                        continue;
                    }
                    let i = self.idx(r);
                    if state.flag(i, F_TIME_TRAVELED) {
                        out.push((
                            ai,
                            PatternClass::TimeTravel,
                            path.name.clone(),
                            format!(
                                "the view over {r} re-listed from an older upstream; the \
                                 unfenced {r} gate in path `{}` consumes state older than \
                                 what the component already acted on",
                                path.name
                            ),
                        ));
                    } else if state.stale(i) > 0 {
                        out.push((
                            ai,
                            PatternClass::Staleness,
                            path.name.clone(),
                            format!(
                                "the view over {r} lags truth by {} epoch(s) and path `{}` \
                                 admits the action with no fresh-confirm or fence on {r}",
                                state.stale(i),
                                path.name
                            ),
                        ));
                    }
                    if state.flag(i, F_CONGESTED) {
                        out.push((
                            ai,
                            PatternClass::CongestionStaleness,
                            path.name.clone(),
                            format!(
                                "offered load past the capacity of the link feeding the \
                                 view over {r} aged it organically (no injected fault), \
                                 and path `{}` admits the action with no fresh-confirm \
                                 or fence on {r}",
                                path.name
                            ),
                        ));
                    }
                }
            }

            // Missed trigger: every justification requires an event that
            // the state has irrecoverably lost — the action never fires.
            let all_lost = !action.paths.is_empty()
                && action.paths.iter().all(|p| {
                    p.gates.iter().any(|g| {
                        matches!(g, Gate::ObservedEvent(r)
                            if state.flag(self.idx(r), F_EVENT_LOST))
                    })
                });
            if all_lost {
                out.push((
                    ai,
                    PatternClass::ObservabilityGap,
                    "*".to_string(),
                    "every path requires observing an event the schedule has lost over a \
                     view that does not replay history; the trigger is gone and the \
                     action never fires"
                        .to_string(),
                ));
            }
        }
        out
    }
}

/// The full resource universe: every declared view plus every gate
/// resource of every action, sorted.
fn resource_universe(summary: &AccessSummary) -> Vec<String> {
    let mut resources: BTreeSet<String> = BTreeSet::new();
    for v in &summary.views {
        resources.insert(v.resource.clone());
    }
    for a in &summary.actions {
        for p in &a.paths {
            for g in &p.gates {
                resources.insert(g.resource().to_string());
            }
        }
    }
    resources.into_iter().collect()
}

/// The cone of influence: resources read by some gate path of a
/// *destructive* action — the only coordinates any hazard predicate
/// inspects.
fn relevant_resources(summary: &AccessSummary) -> Vec<String> {
    let mut resources: BTreeSet<String> = BTreeSet::new();
    for a in summary.actions.iter().filter(|a| a.destructive) {
        for p in &a.paths {
            for g in &p.gates {
                resources.insert(g.resource().to_string());
            }
        }
    }
    resources.into_iter().collect()
}

/// The alphabet enabled over a resource universe, in canonical order. A
/// letter is included only when the IR says its perturbation can affect
/// this component, so no-op letters never pad a witness.
fn alphabet_over(summary: &AccessSummary, resources: &[String]) -> Vec<Letter> {
    let mut alphabet = Vec::new();
    for r in resources {
        if stale_able(summary, r) {
            alphabet.push(Letter::DelayCache(r.clone()));
        }
    }
    for r in resources {
        if stale_able(summary, r) {
            alphabet.push(Letter::ReorderUpdateConsume(r.clone()));
        }
    }
    for r in resources {
        if droppable(summary, r) {
            alphabet.push(Letter::DropNotification(r.clone()));
        }
    }
    if summary.upstream_switch {
        alphabet.push(Letter::UpstreamSwitch);
        alphabet.push(Letter::CrashRestartReplay);
    }
    for r in resources {
        if stale_able(summary, r) && congestible(summary, r) {
            alphabet.push(Letter::TrafficSurge(r.clone()));
        }
    }
    alphabet
}

/// The full enabled perturbation alphabet of `summary`, in canonical
/// order — the alphabet the exhaustive checker explores and the
/// [`crate::independence::IndependenceMatrix`] is derived over.
pub fn enabled_alphabet(summary: &AccessSummary) -> Vec<Letter> {
    alphabet_over(summary, &resource_universe(summary))
}

/// Applies `schedule` to the fresh state of the exhaustive model and
/// returns the packed per-resource bytes (sorted resource order). Letters
/// over resources outside the component's universe are ignored. This is
/// the observable the canonical-equivalence property tests compare: two
/// schedules the independence relation calls equivalent must land on
/// byte-identical model state.
pub fn apply_schedule(summary: &AccessSummary, schedule: &[Letter]) -> Vec<u8> {
    let model = Model::new(summary, Expansion::Exhaustive);
    let mut state = State::fresh(model.resources.len());
    for letter in schedule {
        if let Some(r) = letter.resource() {
            if model.find(r).is_none() {
                continue;
            }
        }
        state = model.apply(&state, letter);
    }
    state.0
}

/// Can a cache gate on `resource` be stale? Mirrors the checker's rule:
/// cache-backed list with no periodic resync, or no declared view at all.
fn stale_able(s: &AccessSummary, resource: &str) -> bool {
    match s.views.iter().find(|v| v.resource == resource) {
        Some(v) => v.list == ReadKind::Cache && !v.periodic_resync,
        None => true,
    }
}

/// Does the view over `resource` ride a saturable link? Mirrors rule 5:
/// only a *declared* congestible view enables the traffic-surge letter —
/// undeclared reads assume an uncontended feed.
fn congestible(s: &AccessSummary, resource: &str) -> bool {
    s.views
        .iter()
        .find(|v| v.resource == resource)
        .is_some_and(|v| v.congestible)
}

/// Is dropping a notification about `resource` meaningful? Yes when some
/// gate listens for events or silence on it, or a watch feeds its view.
fn droppable(s: &AccessSummary, resource: &str) -> bool {
    let gated = s.actions.iter().any(|a| {
        a.paths.iter().any(|p| {
            p.gates.iter().any(
                |g| matches!(g, Gate::ObservedEvent(r) | Gate::ObservedSilence(r) if r == resource),
            )
        })
    });
    let watched = s.views.iter().any(|v| v.resource == resource && v.watch);
    gated || watched
}

/// Does dropping an event on `resource` lose it forever? Yes unless the
/// declared view replays history on reconnect (undeclared views are
/// unmanaged and lose everything).
fn event_loss_possible(s: &AccessSummary, resource: &str) -> bool {
    s.views
        .iter()
        .find(|v| v.resource == resource)
        .map(|v| !v.event_replay)
        .unwrap_or(true)
}

/// A gate path discharges staleness on `r` when it re-confirms or fences.
fn fenced(path: &GatePath, r: &str) -> bool {
    path.gates
        .iter()
        .any(|g| matches!(g, Gate::FreshConfirm(x) | Gate::Fence(x) if x == r))
}

/// Model-checks one summary with the reduced expansion (the default):
/// BFS over the perturbation closure with partial-order reduction,
/// recording the minimal witness per (destructive action, hazard class).
/// Verdicts and witness bytes match [`model_check_exhaustive`] — the
/// equivalence tests pin this over the enumerated IR grid and every
/// scenario component.
pub fn model_check(summary: &AccessSummary) -> ModelCheckReport {
    model_check_with(summary, Expansion::Reduced)
}

/// Model-checks one summary with the reference exhaustive expansion:
/// every enabled letter from every reachable state over the full
/// resource universe.
pub fn model_check_exhaustive(summary: &AccessSummary) -> ModelCheckReport {
    model_check_with(summary, Expansion::Exhaustive)
}

/// The BFS both expansions share.
///
/// Reduction soundness rests on one lemma: with state dedup, the path the
/// BFS records for a state is its (length, then lexicographic-by-letter-
/// index) minimal word, and *the prefix of a minimal word is the minimal
/// word of its intermediate state* (a smaller word to the intermediate
/// state would extend to a smaller word overall). Each pruning rule only
/// ever discards words that are not minimal for their endpoint:
///
/// * **stutter** — a minimal word never contains a permanent no-op step
///   (dropping it gives a shorter word to the same state);
/// * **sleep sets** — `sleep(p·m) = {l < m : indep(l, m)} ∪ {s ∈ sleep(p)
///   : indep(s, m)}`; a word taking a slept letter has a same-length,
///   lexicographically smaller equivalent (bubble the slept letter left
///   across the letters it commutes with), and our independence is
///   *semantic* commutation of the transition functions — state-
///   independent — so the equivalent word reaches the same state and
///   survives. Only [`PairStatus::Independent`] pairs are slept; the
///   conservatively dependent gate-coupled pairs are never commuted.
///
/// Hence every state keeps its minimal word, the dequeue order of the
/// survivors is the same global (length, lex) order, and the first-wins
/// witness per (action, class) is byte-identical to exhaustive.
fn model_check_with(summary: &AccessSummary, expansion: Expansion) -> ModelCheckReport {
    let model = Model::new(summary, expansion);
    let n = model.alphabet.len();
    // Per-letter bitmask of the letters it commutes with. Sleep sets are
    // only consulted under reduction, and only fit a u64 mask; a wider
    // alphabet (never seen in practice) just forfeits the sleep pruning.
    let indep: Vec<u64> = if expansion == Expansion::Reduced && n <= 64 {
        (0..n)
            .map(|i| {
                let mut mask = 0u64;
                for j in 0..n {
                    if j != i
                        && pair_status(summary, &model.alphabet[i], &model.alphabet[j])
                            == PairStatus::Independent
                    {
                        mask |= 1 << j;
                    }
                }
                mask
            })
            .collect()
    } else {
        vec![0; n]
    };

    let mut visited: BTreeSet<State> = BTreeSet::new();
    let mut queue: VecDeque<(State, Vec<usize>, u64)> = VecDeque::new();
    let init = State::fresh(model.resources.len());
    visited.insert(init.clone());
    queue.push_back((init, Vec::new(), 0));
    let mut expanded: usize = 0;

    // Minimal witnesses, keyed by (action index, class). BFS dequeues
    // states in (schedule length, lexicographic letter index) order, so
    // first insertion wins minimality deterministically.
    let mut found: BTreeMap<(usize, PatternClass), Witness> = BTreeMap::new();

    while let Some((state, schedule, sleep)) = queue.pop_front() {
        for (ai, class, path, detail) in model.hazards_in(&state) {
            found.entry((ai, class)).or_insert_with(|| Witness {
                component: summary.component.clone(),
                action: summary.actions[ai].name.clone(),
                class,
                path,
                schedule: schedule
                    .iter()
                    .map(|&li| model.alphabet[li].clone())
                    .collect(),
                detail,
            });
        }
        for (li, letter) in model.alphabet.iter().enumerate() {
            let bit = 1u64.checked_shl(li as u32).unwrap_or(0);
            if expansion == Expansion::Reduced
                && (sleep & bit != 0 || model.is_noop(&state, letter))
            {
                continue;
            }
            expanded += 1;
            let next = model.apply(&state, letter);
            if visited.insert(next.clone()) {
                let mut sched = schedule.clone();
                sched.push(li);
                let child_sleep = indep[li] & (bit.wrapping_sub(1) | sleep);
                queue.push_back((next, sched, child_sleep));
            }
        }
    }

    let actions = summary
        .actions
        .iter()
        .enumerate()
        .filter(|(_, a)| a.destructive)
        .map(|(ai, a)| {
            let ws: Vec<Witness> = found
                .range((ai, PatternClass::Staleness)..=(ai, PatternClass::CongestionStaleness))
                .map(|(_, w)| w.clone())
                .collect();
            ActionReport {
                action: a.name.clone(),
                verdict: if ws.is_empty() {
                    ActionVerdict::EpochSafe
                } else {
                    ActionVerdict::Hazardous(ws)
                },
            }
        })
        .collect();

    ModelCheckReport {
        component: summary.component.clone(),
        states_explored: visited.len(),
        states_expanded: expanded,
        expansion,
        stale_bound: STALE_BOUND,
        actions,
    }
}

/// Model-checks a set of summaries, in input order.
pub fn model_check_all(summaries: &[AccessSummary]) -> Vec<ModelCheckReport> {
    summaries.iter().map(model_check).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{check_summary, ActionDecl, ViewDecl};

    fn cache_view(resource: &str) -> ViewDecl {
        ViewDecl {
            resource: resource.to_string(),
            list: ReadKind::Cache,
            watch: true,
            relist_on_gap: true,
            periodic_resync: false,
            event_replay: false,
            congestible: false,
        }
    }

    fn summary(upstream_switch: bool, views: Vec<ViewDecl>, paths: Vec<GatePath>) -> AccessSummary {
        AccessSummary {
            component: "c".into(),
            upstream_switch,
            views,
            actions: vec![ActionDecl {
                name: "delete".into(),
                destructive: true,
                paths,
            }],
        }
    }

    /// (action, class) pairs from the heuristic checker.
    fn heuristic_pairs(s: &AccessSummary) -> BTreeSet<(String, PatternClass)> {
        check_summary(s)
            .into_iter()
            .map(|h| (h.action, h.class))
            .collect()
    }

    /// (action, class) pairs from the model checker's witnesses.
    fn model_pairs(s: &AccessSummary) -> BTreeSet<(String, PatternClass)> {
        model_check(s)
            .witnesses()
            .into_iter()
            .map(|w| (w.action.clone(), w.class))
            .collect()
    }

    #[test]
    fn unfenced_cache_gate_has_a_one_letter_staleness_witness() {
        let s = summary(
            false,
            vec![cache_view("pods")],
            vec![GatePath::new(
                "orphan",
                vec![Gate::CacheAbsence("pods".into())],
            )],
        );
        let report = model_check(&s);
        let ws = report.witnesses();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].class, PatternClass::Staleness);
        assert_eq!(ws[0].schedule, vec![Letter::DelayCache("pods".into())]);
        assert_eq!(ws[0].path, "orphan");
    }

    #[test]
    fn upstream_switch_yields_a_time_travel_witness_too() {
        let s = summary(
            true,
            vec![cache_view("pods")],
            vec![GatePath::new(
                "orphan",
                vec![Gate::CacheAbsence("pods".into())],
            )],
        );
        let report = model_check(&s);
        let classes: Vec<PatternClass> = report.witnesses().iter().map(|w| w.class).collect();
        assert_eq!(
            classes,
            vec![PatternClass::Staleness, PatternClass::TimeTravel]
        );
        let tt = report
            .witnesses()
            .into_iter()
            .find(|w| w.class == PatternClass::TimeTravel)
            .unwrap()
            .clone();
        assert_eq!(tt.schedule, vec![Letter::UpstreamSwitch]);
    }

    #[test]
    fn fenced_paths_prove_epoch_safe() {
        let s = summary(
            true,
            vec![cache_view("pods")],
            vec![GatePath::new(
                "orphan-confirmed",
                vec![
                    Gate::CacheAbsence("pods".into()),
                    Gate::FreshConfirm("pods".into()),
                ],
            )],
        );
        let report = model_check(&s);
        assert!(report.is_epoch_safe());
        assert!(report.states_explored > 1, "exploration actually ran");
    }

    #[test]
    fn quorum_views_prove_epoch_safe_under_upstream_switch() {
        let mut v = cache_view("pods");
        v.list = ReadKind::Quorum;
        let s = summary(
            true,
            vec![v],
            vec![GatePath::new(
                "orphan",
                vec![Gate::CacheAbsence("pods".into())],
            )],
        );
        assert!(model_check(&s).is_epoch_safe());
    }

    #[test]
    fn event_only_action_has_a_drop_notification_witness() {
        let s = summary(
            false,
            vec![cache_view("pods")],
            vec![GatePath::new(
                "observed-terminating",
                vec![Gate::ObservedEvent("pods".into())],
            )],
        );
        let report = model_check(&s);
        let ws = report.witnesses();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].class, PatternClass::ObservabilityGap);
        assert_eq!(
            ws[0].schedule,
            vec![Letter::DropNotification("pods".into())]
        );
        assert_eq!(ws[0].path, "*");
    }

    #[test]
    fn silence_gate_without_fence_has_a_gap_witness() {
        let s = summary(
            false,
            vec![cache_view("leases"), cache_view("pods")],
            vec![GatePath::new(
                "missed-leases",
                vec![
                    Gate::ObservedSilence("leases".into()),
                    Gate::CachePresence("pods".into()),
                ],
            )],
        );
        let report = model_check(&s);
        let ws = report.witnesses();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].class, PatternClass::ObservabilityGap);
        assert_eq!(
            ws[0].schedule,
            vec![Letter::DropNotification("leases".into())]
        );
    }

    #[test]
    fn event_replay_views_survive_dropped_notifications() {
        let mut v = cache_view("pods");
        v.event_replay = true;
        let s = summary(
            false,
            vec![v],
            vec![GatePath::new(
                "observed-terminating",
                vec![Gate::ObservedEvent("pods".into())],
            )],
        );
        assert!(model_check(&s).is_epoch_safe());
    }

    /// Exhaustive agreement with the heuristic checker over an enumerated
    /// IR space: every combination of list kind, resync, replay, upstream
    /// switch, and gate-path shape must produce the same (action, class)
    /// hazard set — witnesses are strictly *more* information, never a
    /// different verdict.
    #[test]
    fn model_checker_agrees_with_check_summary_everywhere() {
        let path_shapes: Vec<Vec<GatePath>> = vec![
            vec![GatePath::new("p", vec![Gate::CacheAbsence("r".into())])],
            vec![GatePath::new("p", vec![Gate::CachePresence("r".into())])],
            vec![GatePath::new(
                "p",
                vec![
                    Gate::CacheAbsence("r".into()),
                    Gate::FreshConfirm("r".into()),
                ],
            )],
            vec![GatePath::new(
                "p",
                vec![Gate::CachePresence("r".into()), Gate::Fence("r".into())],
            )],
            vec![GatePath::new("p", vec![Gate::ObservedEvent("r".into())])],
            vec![GatePath::new(
                "p",
                vec![
                    Gate::ObservedSilence("r".into()),
                    Gate::CachePresence("r".into()),
                ],
            )],
            vec![GatePath::new(
                "p",
                vec![Gate::ObservedSilence("r".into()), Gate::Fence("r".into())],
            )],
            vec![
                GatePath::new("e", vec![Gate::ObservedEvent("r".into())]),
                GatePath::new(
                    "s",
                    vec![
                        Gate::CacheAbsence("r".into()),
                        Gate::FreshConfirm("r".into()),
                    ],
                ),
            ],
            vec![
                GatePath::new("e", vec![Gate::ObservedEvent("r".into())]),
                GatePath::new("s", vec![Gate::CacheAbsence("r".into())]),
            ],
        ];
        let mut cases = 0;
        for declare_view in [false, true] {
            for list in [ReadKind::Cache, ReadKind::Quorum] {
                for periodic_resync in [false, true] {
                    for event_replay in [false, true] {
                        for congestible in [false, true] {
                            for upstream_switch in [false, true] {
                                for paths in &path_shapes {
                                    let views = if declare_view {
                                        vec![ViewDecl {
                                            resource: "r".into(),
                                            list,
                                            watch: true,
                                            relist_on_gap: true,
                                            periodic_resync,
                                            event_replay,
                                            congestible,
                                        }]
                                    } else {
                                        Vec::new()
                                    };
                                    let s = summary(upstream_switch, views, paths.clone());
                                    assert_eq!(
                                        heuristic_pairs(&s),
                                        model_pairs(&s),
                                        "divergence: view={declare_view} list={list:?} \
                                         resync={periodic_resync} replay={event_replay} \
                                         congestible={congestible} \
                                         switch={upstream_switch} paths={paths:?}"
                                    );
                                    cases += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(cases, 2 * 2 * 2 * 2 * 2 * 2 * path_shapes.len());
    }

    #[test]
    fn congestible_view_has_a_one_letter_traffic_surge_witness() {
        let mut v = cache_view("pods");
        v.congestible = true;
        let s = summary(
            false,
            vec![v],
            vec![GatePath::new(
                "orphan",
                vec![Gate::CacheAbsence("pods".into())],
            )],
        );
        let report = model_check(&s);
        let classes: Vec<PatternClass> = report.witnesses().iter().map(|w| w.class).collect();
        assert_eq!(
            classes,
            vec![PatternClass::Staleness, PatternClass::CongestionStaleness]
        );
        let cw = report
            .witnesses()
            .into_iter()
            .find(|w| w.class == PatternClass::CongestionStaleness)
            .unwrap()
            .clone();
        assert_eq!(
            cw.schedule,
            vec![Letter::TrafficSurge("pods".into())],
            "minimal congestion witness is the surge alone — no injected fault"
        );
        assert_eq!(cw.path, "orphan");
    }

    #[test]
    fn resynced_congestible_view_proves_epoch_safe() {
        let mut v = cache_view("pods");
        v.congestible = true;
        v.periodic_resync = true;
        let s = summary(
            false,
            vec![v],
            vec![GatePath::new(
                "orphan",
                vec![Gate::CacheAbsence("pods".into())],
            )],
        );
        assert!(model_check(&s).is_epoch_safe());
    }

    /// JSON of the actions array alone — the verdict-and-witness payload
    /// both expansions must agree on byte for byte (the report header
    /// legitimately differs in `states_*` and `reduction`).
    fn actions_json(report: &ModelCheckReport) -> String {
        let mut s = String::new();
        for a in &report.actions {
            s.push_str(&a.action);
            match &a.verdict {
                ActionVerdict::EpochSafe => s.push_str(":epoch-safe;"),
                ActionVerdict::Hazardous(ws) => {
                    for w in ws {
                        s.push_str(&w.to_json());
                    }
                    s.push(';');
                }
            }
        }
        s
    }

    /// The reduction-soundness pin over the same enumerated IR grid as
    /// the heuristic-agreement test: identical witnesses and verdicts,
    /// never more expansion work.
    #[test]
    fn reduced_and_exhaustive_agree_on_the_enumerated_grid() {
        let path_shapes: Vec<Vec<GatePath>> = vec![
            vec![GatePath::new("p", vec![Gate::CacheAbsence("r".into())])],
            vec![GatePath::new(
                "p",
                vec![Gate::CachePresence("r".into()), Gate::Fence("r".into())],
            )],
            vec![GatePath::new("p", vec![Gate::ObservedEvent("r".into())])],
            vec![GatePath::new(
                "p",
                vec![
                    Gate::ObservedSilence("r".into()),
                    Gate::CachePresence("r".into()),
                ],
            )],
            vec![
                GatePath::new("e", vec![Gate::ObservedEvent("r".into())]),
                GatePath::new("s", vec![Gate::CacheAbsence("r".into())]),
            ],
        ];
        for declare_view in [false, true] {
            for list in [ReadKind::Cache, ReadKind::Quorum] {
                for event_replay in [false, true] {
                    for congestible in [false, true] {
                        for upstream_switch in [false, true] {
                            for paths in &path_shapes {
                                let views = if declare_view {
                                    vec![ViewDecl {
                                        resource: "r".into(),
                                        list,
                                        watch: true,
                                        relist_on_gap: true,
                                        periodic_resync: false,
                                        event_replay,
                                        congestible,
                                    }]
                                } else {
                                    Vec::new()
                                };
                                let s = summary(upstream_switch, views, paths.clone());
                                let reduced = model_check(&s);
                                let full = model_check_exhaustive(&s);
                                assert_eq!(
                                    actions_json(&reduced),
                                    actions_json(&full),
                                    "witness divergence: view={declare_view} list={list:?} \
                                     replay={event_replay} congestible={congestible} \
                                     switch={upstream_switch} paths={paths:?}"
                                );
                                assert!(reduced.states_expanded <= full.states_expanded);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Two views, one of which no destructive gate ever reads: the
    /// reduction slices it away and must cut both state count and
    /// expansion work while keeping the witnesses byte-identical.
    #[test]
    fn irrelevant_views_are_sliced_without_changing_witnesses() {
        let s = summary(
            true,
            vec![cache_view("pods"), cache_view("metrics")],
            vec![GatePath::new(
                "orphan",
                vec![Gate::CacheAbsence("pods".into())],
            )],
        );
        let reduced = model_check(&s);
        let full = model_check_exhaustive(&s);
        assert_eq!(actions_json(&reduced), actions_json(&full));
        assert!(reduced.states_explored < full.states_explored);
        assert!(
            reduced.states_expanded * 2 <= full.states_expanded,
            "slicing an unread view should at least halve the work: {} vs {}",
            reduced.states_expanded,
            full.states_expanded
        );
        assert_eq!(reduced.expansion, Expansion::Reduced);
        assert_eq!(full.expansion, Expansion::Exhaustive);
        // Exhaustive work is exactly |V|·|alphabet|: two stale-able
        // watched views enable delay/reorder/drop each, plus the two
        // global letters.
        assert_eq!(full.states_expanded, full.states_explored * 8);
    }

    /// The diamond the sleep sets rely on: letters the static relation
    /// calls independent commute *semantically* — both orders land on the
    /// same packed state from any reachable point.
    #[test]
    fn independent_letters_commute_on_model_state() {
        let s = AccessSummary {
            component: "c".into(),
            upstream_switch: true,
            views: vec![cache_view("nodes"), cache_view("pods")],
            actions: vec![
                ActionDecl {
                    name: "evict".into(),
                    destructive: true,
                    paths: vec![GatePath::new(
                        "gone",
                        vec![Gate::CacheAbsence("pods".into())],
                    )],
                },
                ActionDecl {
                    name: "fence".into(),
                    destructive: true,
                    paths: vec![GatePath::new(
                        "dead",
                        vec![Gate::CachePresence("nodes".into())],
                    )],
                },
            ],
        };
        let matrix = crate::independence::IndependenceMatrix::derive(&s);
        let letters = matrix.letters().to_vec();
        // A few reachable prefixes to start the diamond from.
        let prefixes: Vec<Vec<Letter>> = vec![
            vec![],
            vec![Letter::DelayCache("pods".into())],
            vec![Letter::UpstreamSwitch],
            vec![
                Letter::DropNotification("nodes".into()),
                Letter::DelayCache("nodes".into()),
            ],
        ];
        for a in &letters {
            for b in &letters {
                if !matrix.independent(a, b) {
                    continue;
                }
                for p in &prefixes {
                    let mut ab = p.clone();
                    ab.push(a.clone());
                    ab.push(b.clone());
                    let mut ba = p.clone();
                    ba.push(b.clone());
                    ba.push(a.clone());
                    assert_eq!(
                        apply_schedule(&s, &ab),
                        apply_schedule(&s, &ba),
                        "{} and {} marked independent but do not commute after {p:?}",
                        a.label(),
                        b.label()
                    );
                }
            }
        }
    }

    #[test]
    fn report_json_is_deterministic_across_runs() {
        let s = summary(
            true,
            vec![cache_view("pods"), cache_view("leases")],
            vec![
                GatePath::new("snap", vec![Gate::CacheAbsence("pods".into())]),
                GatePath::new("silence", vec![Gate::ObservedSilence("leases".into())]),
            ],
        );
        let a = model_check(&s).to_json();
        let b = model_check(&s).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"verdict\":\"hazardous\""));
        assert!(a.contains("delay-cache(pods)"));
    }

    #[test]
    fn non_destructive_actions_are_not_reported() {
        let s = AccessSummary {
            component: "c".into(),
            upstream_switch: true,
            views: vec![cache_view("pods")],
            actions: vec![ActionDecl {
                name: "create".into(),
                destructive: false,
                paths: vec![GatePath::new(
                    "missing",
                    vec![Gate::CacheAbsence("pods".into())],
                )],
            }],
        };
        let report = model_check(&s);
        assert!(report.actions.is_empty());
        assert!(report.is_epoch_safe());
    }
}
