//! Lint findings and their deterministic text/JSON renderings.

/// One lint finding, suppressed or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `wall-clock`.
    pub rule: String,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human explanation of what matched and why it matters.
    pub message: String,
    /// `Some(reason)` if a well-formed `ph-lint: allow` covers this line.
    pub suppressed: Option<String>,
}

/// The result of a workspace determinism scan.
#[derive(Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Sorts findings into their canonical deterministic order and drops
    /// exact duplicates, so rendered output is independent of directory
    /// walk order and of the same file being scanned via two passes.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (&a.file, a.line, &a.rule, &a.message).cmp(&(&b.file, b.line, &b.rule, &b.message))
        });
        self.findings.dedup();
    }

    /// Findings not covered by a suppression — these gate CI.
    pub fn unsuppressed(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.suppressed.is_none())
    }

    /// Count of gating findings.
    pub fn unsuppressed_count(&self) -> usize {
        self.unsuppressed().count()
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            match &f.suppressed {
                Some(reason) => out.push_str(&format!(
                    "allowed   {}:{} [{}] {} (reason: {})\n",
                    f.file, f.line, f.rule, f.message, reason
                )),
                None => out.push_str(&format!(
                    "finding   {}:{} [{}] {}\n",
                    f.file, f.line, f.rule, f.message
                )),
            }
        }
        out.push_str(&format!(
            "determinism: {} finding(s), {} suppressed, {} file(s) scanned\n",
            self.unsuppressed_count(),
            self.findings.len() - self.unsuppressed_count(),
            self.files_scanned
        ));
        out
    }

    /// Deterministic JSON rendering (no external serializer).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"suppressed\":{}}}",
                esc(&f.rule),
                esc(&f.file),
                f.line,
                esc(&f.message),
                match &f.suppressed {
                    Some(r) => format!("\"{}\"", esc(r)),
                    None => "null".to_string(),
                }
            ));
        }
        out.push_str(&format!(
            "],\"unsuppressed\":{},\"files_scanned\":{}}}",
            self.unsuppressed_count(),
            self.files_scanned
        ));
        out
    }
}

/// Escapes a string for embedding in JSON.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
