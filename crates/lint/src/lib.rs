//! # ph-lint — static determinism lint + partial-history hazard analysis
//!
//! Two static passes that complement the dynamic explorer:
//!
//! 1. **Determinism lint** ([`rules`], [`lexer`], [`findings`]): every
//!    guarantee the repo sells — byte-identical replay, parallel ≡
//!    sequential exploration — rests on the workspace containing zero
//!    nondeterminism. The lint scans all `.rs` files with a hand-rolled
//!    comment/string-aware cleaner and flags wall-clock reads, unordered
//!    hash iteration in trace-affecting crates, entropy-seeded RNG, thread
//!    primitives outside the deterministic pool, and stray prints.
//!    Suppressions (`// ph-lint: allow(<rule>, <reason>)`) require a
//!    reason.
//!
//! 2. **Partial-history hazard analysis** ([`summary`], [`modelcheck`]):
//!    each ph-cluster component exports an [`summary::AccessSummary`] of
//!    how it reads (cache vs. quorum lists, watches, resyncs) and what
//!    gates its destructive actions; a bounded explicit-state model
//!    checker explores the IR's freshness state space under an alphabet of
//!    abstract perturbations and, per destructive action, either emits a
//!    **minimal hazard witness** (the shortest schedule reaching a §4.2
//!    pattern — staleness, time travel, observability gap) or proves the
//!    action **epoch-safe** — *before anything runs*. The checker's
//!    search is pruned by a static **independence relation**
//!    ([`independence`]): letters on disjoint views commute unless a
//!    declared gate path reads both, so a sleep-set partial-order
//!    reduction expands one representative per commutation class —
//!    provably without changing any verdict or witness. The same
//!    auditable [`independence::IndependenceMatrix`] drives
//!    canonical-schedule dedup in the dynamic explorer
//!    (`ph_core::canon`).
//!
//! 3. **IR ↔ source conformance** ([`conformance`]): a lightweight item
//!    scanner over the ph-cluster sources extracts the access protocol the
//!    code actually implements and diffs it against the declared
//!    summaries, so the IR can never silently rot.
//!
//! All passes are wired into `phtool lint` / `phtool check`; the hazard
//! pass is cross-checked against the dynamic explorer over all eight
//! scenarios, and its witnesses seed the explorer's guided search.
//!
//! This crate has **no dependencies** (std only) and sits below every
//! other workspace crate so they can export summaries in its IR.

#![forbid(unsafe_code)]

pub mod conformance;
pub mod findings;
pub mod independence;
pub mod lexer;
pub mod modelcheck;
pub mod rules;
pub mod summary;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use findings::LintReport;
use rules::{lint_file, FileMeta};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Collects all workspace `.rs` files under `root`, sorted for
/// deterministic output. `fixtures` directories are skipped — they hold
/// deliberately bad source for the lint's own golden tests.
fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Runs the determinism lint over every `.rs` file under `root` (a
/// workspace checkout). Findings use repo-relative paths.
pub fn scan_workspace(root: &Path) -> io::Result<LintReport> {
    let files = collect_rs_files(root)?;
    let mut report = LintReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        let meta = FileMeta::from_path(&rel);
        report.findings.extend(lint_file(&meta, &src));
        report.files_scanned += 1;
    }
    report.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_handles_a_small_tree() {
        let dir = std::env::temp_dir().join("ph-lint-scan-test");
        let src_dir = dir.join("crates/sim/src");
        fs::create_dir_all(&src_dir).unwrap();
        fs::write(
            src_dir.join("bad.rs"),
            "pub fn t() { let _ = std::time::Instant::now(); }\n",
        )
        .unwrap();
        let report = scan_workspace(&dir).unwrap();
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.unsuppressed_count(), 1);
        assert_eq!(report.findings[0].file, "crates/sim/src/bad.rs");
        fs::remove_dir_all(&dir).ok();
    }
}
