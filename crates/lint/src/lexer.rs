//! A line-preserving Rust source cleaner.
//!
//! The determinism rules in [`crate::rules`] are textual: they look for
//! identifiers like `Instant::now` or `HashMap` on each line. Matching raw
//! source would mis-fire on comments, doc text and string literals, so this
//! module first *cleans* the source: every character inside a comment or a
//! string/char literal is replaced by a space, while newlines are kept, so
//! line numbers in findings match the original file exactly.
//!
//! While scanning, comment text is inspected for suppression directives of
//! the form `ph-lint: allow(<rule>, <reason>)`. A directive suppresses
//! matching findings on its own line (trailing comment) and on the next
//! line (a comment placed above the offending statement). Directives with a
//! missing or empty reason are reported as [`CleanFile::bad_directives`];
//! the lint turns those into findings of their own, so a reason is
//! mandatory, as the paper's methodology demands an argument for every
//! deliberate divergence from determinism.

/// A well-formed suppression directive extracted from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line the directive's comment ends on.
    pub line: usize,
    /// The rule id being allowed, e.g. `wall-clock`.
    pub rule: String,
    /// The mandatory human reason.
    pub reason: String,
}

/// A malformed `ph-lint:` directive (unparseable, or missing a reason).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadDirective {
    /// 1-based line the directive's comment ends on.
    pub line: usize,
    /// What was wrong with it.
    pub problem: String,
}

/// Cleaned source: code with comments/strings blanked, plus directives.
#[derive(Debug, Default)]
pub struct CleanFile {
    /// One entry per source line; comments and literal contents are spaces.
    pub lines: Vec<String>,
    /// Well-formed suppressions, in source order.
    pub directives: Vec<Directive>,
    /// Malformed `ph-lint:` directives, in source order.
    pub bad_directives: Vec<BadDirective>,
}

impl CleanFile {
    /// The directive suppressing `rule` at `line` (1-based), if any. A
    /// directive covers its own line and the line after it.
    pub fn suppression(&self, rule: &str, line: usize) -> Option<&Directive> {
        self.directives
            .iter()
            .find(|d| d.rule == rule && (d.line == line || d.line + 1 == line))
    }
}

/// Lexer state while cleaning.
enum State {
    Code,
    LineComment,
    /// Block comments nest in Rust; the payload is the current depth.
    BlockComment(u32),
    Str,
    /// Raw string `r##"…"##`; the payload is the number of `#`s.
    RawStr(u32),
    Char,
}

/// Cleans `src`, preserving line structure, and extracts directives.
pub fn clean(src: &str) -> CleanFile {
    let bytes: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut state = State::Code;
    // Text of the comment currently being scanned, for directive parsing.
    let mut comment = String::new();
    let mut file = CleanFile::default();
    let mut line = 1usize;
    let mut i = 0usize;

    // Ends the current comment: parse any directive out of its text. Only
    // a comment whose body *starts* with `ph-lint:` (after doc markers and
    // whitespace) is a directive — prose that merely mentions the syntax,
    // like this lint's own documentation, is not.
    fn finish_comment(text: &mut String, line: usize, file: &mut CleanFile) {
        let body = text.trim_start_matches(['/', '!']).trim_start();
        if let Some(rest) = body.strip_prefix("ph-lint:") {
            parse_directive(rest, line, file);
        }
        text.clear();
    }

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    state = State::LineComment;
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Str;
                    out.push('"');
                }
                'r' | 'b' if starts_raw_string(&bytes, i) => {
                    // Consume the prefix (r, br, rb…) and the hashes.
                    let mut j = i;
                    while bytes[j] == 'r' || bytes[j] == 'b' {
                        out.push(bytes[j]);
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while bytes.get(j) == Some(&'#') {
                        out.push('#');
                        hashes += 1;
                        j += 1;
                    }
                    // bytes[j] is the opening quote.
                    out.push('"');
                    state = State::RawStr(hashes);
                    i = j + 1;
                    continue;
                }
                'b' if next == Some('"') => {
                    out.push_str("b\"");
                    state = State::Str;
                    i += 2;
                    continue;
                }
                '\'' if is_char_literal(&bytes, i) => {
                    state = State::Char;
                    out.push('\'');
                }
                _ => out.push(c),
            },
            State::LineComment => {
                if c == '\n' {
                    finish_comment(&mut comment, line, &mut file);
                    state = State::Code;
                    out.push('\n');
                } else {
                    comment.push(c);
                    out.push(' ');
                }
                // fallthrough to the shared line counter below
                if c == '\n' {
                    line += 1;
                }
                i += 1;
                continue;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    if depth == 1 {
                        finish_comment(&mut comment, line, &mut file);
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                if c == '\n' {
                    out.push('\n');
                    line += 1;
                } else {
                    comment.push(c);
                    out.push(' ');
                }
                i += 1;
                continue;
            }
            State::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next == Some('\n') {
                        out.push('\n');
                        line += 1;
                    } else if next.is_some() {
                        out.push(' ');
                    }
                    i += 2;
                    continue;
                }
                '"' => {
                    state = State::Code;
                    out.push('"');
                }
                '\n' => {
                    out.push('\n');
                    line += 1;
                    i += 1;
                    continue;
                }
                _ => out.push(' '),
            },
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&bytes, i, hashes) {
                    out.push('"');
                    for _ in 0..hashes {
                        out.push('#');
                    }
                    state = State::Code;
                    i += 1 + hashes as usize;
                    continue;
                }
                if c == '\n' {
                    out.push('\n');
                    line += 1;
                } else {
                    out.push(' ');
                }
                i += 1;
                continue;
            }
            State::Char => match c {
                '\\' => {
                    out.push_str("  ");
                    i += 2;
                    continue;
                }
                '\'' => {
                    state = State::Code;
                    out.push('\'');
                }
                _ => out.push(' '),
            },
        }
        if c == '\n' {
            line += 1;
        }
        i += 1;
    }
    // EOF inside a line comment still carries a directive.
    if matches!(state, State::LineComment | State::BlockComment(_)) {
        finish_comment(&mut comment, line, &mut file);
    }

    file.lines = out.split('\n').map(|s| s.to_string()).collect();
    file
}

/// Does position `i` (at `r` or `b`) start a raw string literal?
fn starts_raw_string(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    let mut saw_r = false;
    // Accept r, br, rb prefixes (one of each letter at most).
    let mut seen_b = false;
    while j < bytes.len() {
        match bytes[j] {
            'r' if !saw_r => {
                saw_r = true;
                j += 1;
            }
            'b' if !seen_b => {
                seen_b = true;
                j += 1;
            }
            _ => break,
        }
    }
    if !saw_r {
        return false;
    }
    // Identifier chars before? then this `r` is part of an identifier.
    if i > 0 {
        let p = bytes[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return false;
        }
    }
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// Does the quote at `i` close a raw string with `hashes` trailing `#`s?
fn closes_raw(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Disambiguates a `'` as char literal vs. lifetime: a lifetime is `'` +
/// identifier with no closing quote within a couple of characters.
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some('\\') => true,
        Some(_) => bytes.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Parses the text after `ph-lint:` as `allow(<rule>, <reason>)`.
fn parse_directive(text: &str, line: usize, file: &mut CleanFile) {
    let text = text.trim();
    let bad = |problem: &str, file: &mut CleanFile| {
        file.bad_directives.push(BadDirective {
            line,
            problem: problem.to_string(),
        });
    };
    let Some(rest) = text.strip_prefix("allow(") else {
        bad("expected `allow(<rule>, <reason>)`", file);
        return;
    };
    let Some(inner) = rest.rfind(')').map(|p| &rest[..p]) else {
        bad("unclosed `allow(`", file);
        return;
    };
    let Some((rule, reason)) = inner.split_once(',') else {
        bad("missing reason: use `allow(<rule>, <reason>)`", file);
        return;
    };
    let rule = rule.trim();
    let reason = reason.trim();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
        bad("rule id must be lowercase-kebab", file);
        return;
    }
    if reason.is_empty() {
        bad("empty reason: suppressions must say why", file);
        return;
    }
    file.directives.push(Directive {
        line,
        rule: rule.to_string(),
        reason: reason.to_string(),
    });
}

/// Marks lines belonging to `#[cfg(test)]`-gated modules.
///
/// Returns one flag per line of `lines` (same indexing); `true` means the
/// line is test-only code, which most rules skip — tests may print, spawn
/// threads, and measure wall time without affecting traces.
pub fn test_line_mask(lines: &[String]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        let stripped: String = lines[i].split_whitespace().collect();
        if stripped.contains("#[cfg(test)]") {
            // Find the start of the gated item and its opening brace.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                for c in lines[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                mask[j] = true;
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = clean("let x = \"Instant::now()\"; // Instant::now()\nInstant::now();");
        assert!(!f.lines[0].contains("Instant"));
        assert!(f.lines[1].contains("Instant::now"));
    }

    #[test]
    fn nested_block_comments() {
        let f = clean("/* a /* b */ c */ let y = 1;");
        assert!(f.lines[0].contains("let y = 1;"));
        assert!(!f.lines[0].contains('a') && !f.lines[0].contains('c'));
    }

    #[test]
    fn raw_strings_preserve_lines() {
        let f = clean("let s = r#\"one\ntwo HashMap\"#;\nlet t = 2;");
        assert_eq!(f.lines.len(), 3);
        assert!(!f.lines[1].contains("HashMap"));
        assert!(f.lines[2].contains("let t"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = clean("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(f.lines[0].contains("str"));
    }

    #[test]
    fn directive_with_reason_parses() {
        let f = clean("foo(); // ph-lint: allow(wall-clock, bench harness measures real time)");
        assert_eq!(f.directives.len(), 1);
        assert_eq!(f.directives[0].rule, "wall-clock");
        assert!(f.directives[0].reason.contains("bench"));
        assert!(f.suppression("wall-clock", 1).is_some());
        assert!(f.suppression("wall-clock", 2).is_some());
        assert!(f.suppression("wall-clock", 3).is_none());
    }

    #[test]
    fn directive_without_reason_is_bad() {
        let f = clean("// ph-lint: allow(wall-clock)");
        assert!(f.directives.is_empty());
        assert_eq!(f.bad_directives.len(), 1);
    }

    #[test]
    fn prose_mentioning_the_syntax_is_not_a_directive() {
        let src = "//! Suppressions use `ph-lint: allow(<rule>, <reason>)`.\n\
                   /// A malformed `ph-lint:` directive is flagged.\n\
                   //! ph-lint: allow(stray-print, doc comments can be directives too)\n";
        let f = clean(src);
        assert_eq!(f.directives.len(), 1, "{:?}", f.directives);
        assert_eq!(f.directives[0].line, 3);
        assert!(f.bad_directives.is_empty(), "{:?}", f.bad_directives);
    }

    #[test]
    fn cfg_test_mask_covers_module() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let f = clean(src);
        let mask = test_line_mask(&f.lines);
        assert!(!mask[0]);
        assert!(mask[1] && mask[2] && mask[3] && mask[4]);
        assert!(!mask[5]);
    }
}
