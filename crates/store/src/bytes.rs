//! A cheaply cloneable, immutable byte buffer.
//!
//! A minimal in-repo stand-in for the `bytes` crate's `Bytes`: values are
//! reference-counted slices, so fanning one value out to many caches (the
//! apiserver watch cache, every informer's `S′`) never copies the payload.
//! Only the API surface the workspace actually uses is provided.

use std::borrow::Cow;
use std::rc::Rc;

/// An immutable, reference-counted byte string.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    /// Borrowed from the binary; clone is a pointer copy.
    Static(&'static [u8]),
    /// Shared heap allocation; clone bumps a refcount.
    Shared(Rc<[u8]>),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Bytes {
        Bytes(Repr::Static(&[]))
    }

    /// Wraps a `'static` slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Repr::Static(bytes))
    }

    /// Copies a slice into a shared buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes(Repr::Shared(Rc::from(bytes)))
    }

    /// The bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(s) => s,
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// `true` if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Repr::Shared(Rc::from(v.into_boxed_slice())))
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Render printable payloads as text (object codecs are line-based),
        // escaping everything else, like `bytes::Bytes` does.
        let text: Cow<'_, str> = String::from_utf8_lossy(self.as_slice());
        write!(f, "b{text:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_and_copied_buffers_compare_equal() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert_eq!(&a[..], b"abc");
    }

    #[test]
    fn clones_share_the_allocation() {
        let a = Bytes::copy_from_slice(&[1, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Bytes::from(vec![9, 9]), Bytes::copy_from_slice(&[9, 9]));
        assert_eq!(Bytes::from("hi"), Bytes::from_static(b"hi"));
        assert_eq!(Bytes::from(String::from("hi")), Bytes::from_static(b"hi"));
        assert!(Bytes::new().is_empty());
        assert!(Bytes::default().is_empty());
    }

    #[test]
    fn ordering_and_hashing_follow_the_bytes() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        set.insert(Bytes::from_static(b"b"));
        set.insert(Bytes::from_static(b"a"));
        let ordered: Vec<&Bytes> = set.iter().collect();
        assert_eq!(ordered[0].as_slice(), b"a");
    }

    #[test]
    fn debug_renders_text() {
        assert_eq!(format!("{:?}", Bytes::from_static(b"k=v")), "b\"k=v\"");
    }
}
