//! Per-node watch registries.
//!
//! Watches are served from each node's *applied* state machine, exactly like
//! etcd's: a watcher attached to a lagging follower sees history late. This
//! is the notification path through which components build their partial
//! histories `H′` (§3), and the path the `ph-core` perturbation strategies
//! delay and drop.

use std::collections::BTreeMap;
use std::rc::Rc;

use ph_sim::ActorId;

use crate::kv::{KvEvent, Revision};

/// One registered watcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Watcher {
    /// The watching client actor.
    pub client: ActorId,
    /// The client's watch id.
    pub watch: u64,
    /// Key prefix filter.
    pub prefix: String,
    /// Next stream sequence number (dense per registration; clients detect
    /// lost stream messages by gaps).
    pub next_seq: u64,
}

/// All watchers registered on one store node. Volatile: cleared on crash
/// (clients detect the dead stream via progress timeouts and re-register).
#[derive(Debug, Default, Clone)]
pub struct WatchRegistry {
    watchers: BTreeMap<(ActorId, u64), Watcher>,
}

impl WatchRegistry {
    /// Creates an empty registry.
    pub fn new() -> WatchRegistry {
        WatchRegistry::default()
    }

    /// Registers (or replaces) a watcher; a replacement restarts the
    /// stream sequence at 0.
    pub fn register(&mut self, client: ActorId, watch: u64, prefix: String) {
        self.watchers.insert(
            (client, watch),
            Watcher {
                client,
                watch,
                prefix,
                next_seq: 0,
            },
        );
    }

    /// Takes the next stream sequence number for a watcher.
    pub fn next_seq(&mut self, client: ActorId, watch: u64) -> Option<u64> {
        self.watchers.get_mut(&(client, watch)).map(|w| {
            let s = w.next_seq;
            w.next_seq += 1;
            s
        })
    }

    /// Removes a watcher. Returns `true` if it existed.
    pub fn cancel(&mut self, client: ActorId, watch: u64) -> bool {
        self.watchers.remove(&(client, watch)).is_some()
    }

    /// Drops every watcher (node crash).
    pub fn clear(&mut self) {
        self.watchers.clear();
    }

    /// Number of registered watchers.
    pub fn len(&self) -> usize {
        self.watchers.len()
    }

    /// `true` if no watchers are registered.
    pub fn is_empty(&self) -> bool {
        self.watchers.is_empty()
    }

    /// All watchers, in deterministic `(client, watch)` order.
    pub fn watchers(&self) -> impl Iterator<Item = &Watcher> {
        self.watchers.values()
    }

    /// Routes a batch of freshly applied events: returns, per interested
    /// watcher, the subsequence matching its prefix with the watcher's next
    /// stream sequence number. `revision` is the node's applied revision
    /// after the batch.
    pub fn route(
        &mut self,
        events: &[Rc<KvEvent>],
        revision: Revision,
    ) -> Vec<(Watcher, Vec<Rc<KvEvent>>, Revision)> {
        let mut out = Vec::new();
        for w in self.watchers.values_mut() {
            let matching: Vec<Rc<KvEvent>> = events
                .iter()
                .filter(|e| e.key().has_prefix(&w.prefix))
                .cloned()
                .collect();
            if !matching.is_empty() {
                let snapshot = w.clone();
                w.next_seq += 1;
                out.push((snapshot, matching, revision));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{Key, KeyValue, Value};

    fn put_event(key: &str, rev: u64) -> Rc<KvEvent> {
        Rc::new(KvEvent::Put {
            kv: KeyValue {
                key: Key::new(key),
                value: Value::from_static(b"v"),
                create_revision: Revision(rev),
                mod_revision: Revision(rev),
                version: 1,
                lease: None,
            },
            prev: None,
        })
    }

    #[test]
    fn routes_by_prefix() {
        let mut reg = WatchRegistry::new();
        reg.register(ActorId(10), 1, "pods/".into());
        reg.register(ActorId(11), 1, "nodes/".into());
        reg.register(ActorId(12), 1, "".into());
        let events = [put_event("pods/a", 1), put_event("nodes/x", 2)];
        let routed = reg.route(&events, Revision(2));
        assert_eq!(routed.len(), 3);
        let for_pods = routed
            .iter()
            .find(|(w, ..)| w.client == ActorId(10))
            .expect("pods watcher");
        assert_eq!(for_pods.1.len(), 1);
        assert_eq!(for_pods.1[0].key().as_str(), "pods/a");
        let for_all = routed
            .iter()
            .find(|(w, ..)| w.client == ActorId(12))
            .expect("catch-all watcher");
        assert_eq!(for_all.1.len(), 2);
        assert_eq!(for_all.2, Revision(2));
    }

    #[test]
    fn uninterested_watchers_get_nothing() {
        let mut reg = WatchRegistry::new();
        reg.register(ActorId(10), 1, "volumes/".into());
        let routed = reg.route(&[put_event("pods/a", 1)], Revision(1));
        assert!(routed.is_empty());
    }

    #[test]
    fn cancel_and_clear() {
        let mut reg = WatchRegistry::new();
        reg.register(ActorId(1), 1, "".into());
        reg.register(ActorId(1), 2, "".into());
        assert_eq!(reg.len(), 2);
        assert!(reg.cancel(ActorId(1), 1));
        assert!(!reg.cancel(ActorId(1), 1));
        assert_eq!(reg.len(), 1);
        reg.clear();
        assert!(reg.is_empty());
    }

    #[test]
    fn reregistration_replaces_prefix() {
        let mut reg = WatchRegistry::new();
        reg.register(ActorId(1), 1, "pods/".into());
        reg.register(ActorId(1), 1, "nodes/".into());
        assert_eq!(reg.len(), 1);
        let routed = reg.route(&[put_event("nodes/x", 1)], Revision(1));
        assert_eq!(routed.len(), 1);
    }
}
