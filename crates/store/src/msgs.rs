//! Client-facing operations and wire messages of the store.
//!
//! Mutations and linearizable reads travel through the Raft log; serializable
//! reads and watch streams are served from each node's *applied* (possibly
//! lagging) state — the two observation paths of the paper's §3 model.

use ph_sim::ActorId;

use crate::kv::{Key, KeyValue, KvEvent, LeaseId, Revision, Value};

/// Precondition on a key's current `mod_revision` for compare-and-swap
/// writes (the optimistic-concurrency primitive apiservers and the HBase
/// scenario build on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// No precondition.
    Any,
    /// The key must not currently exist.
    NotExists,
    /// The key must exist with exactly this `mod_revision`.
    ModRev(Revision),
}

/// A state-machine command (or linearizable read) submitted to the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Create or update a key.
    Put {
        /// Target key.
        key: Key,
        /// New value.
        value: Value,
        /// Lease to attach (key dies with the lease).
        lease: Option<LeaseId>,
        /// CAS precondition.
        expect: Expect,
    },
    /// Delete a key.
    Delete {
        /// Target key.
        key: Key,
        /// CAS precondition.
        expect: Expect,
    },
    /// Read every key with the given prefix. Routed through the log when
    /// issued at [`ReadLevel::Linearizable`].
    Read {
        /// Key prefix (empty string reads everything).
        prefix: String,
    },
    /// Create a lease with the given TTL in milliseconds. The id is chosen
    /// by the client (ids are namespaced per client in practice).
    LeaseGrant {
        /// Client-chosen lease id.
        id: LeaseId,
        /// Time-to-live in logical milliseconds.
        ttl_ms: u64,
    },
    /// Refresh a lease's TTL.
    LeaseKeepAlive {
        /// The lease.
        id: LeaseId,
    },
    /// Revoke a lease, deleting all attached keys.
    LeaseRevoke {
        /// The lease.
        id: LeaseId,
    },
    /// Discard history at and below the given revision. Watches that later
    /// ask for compacted revisions are cancelled with
    /// [`OpError::Compacted`] — the §4.2.3 rolling window.
    Compact {
        /// Highest revision to discard.
        at: Revision,
    },
    /// No-op (used by leaders to commit entries from earlier terms promptly).
    Nop,
}

/// Successful outcome of an [`Op`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpResult {
    /// The put committed at this revision.
    Put {
        /// Revision of the write.
        revision: Revision,
    },
    /// The delete committed.
    Delete {
        /// Store revision after the operation (unchanged if nothing existed).
        revision: Revision,
        /// Whether a key actually existed and was removed.
        existed: bool,
    },
    /// Read results.
    Read {
        /// Matching keys in key order.
        kvs: Vec<KeyValue>,
        /// Store revision the read reflects.
        revision: Revision,
    },
    /// Lease created.
    LeaseGranted {
        /// The lease.
        id: LeaseId,
    },
    /// Lease refreshed.
    LeaseAlive {
        /// The lease.
        id: LeaseId,
    },
    /// Lease revoked; attached keys deleted.
    LeaseRevoked {
        /// The lease.
        id: LeaseId,
        /// Number of keys deleted with it.
        deleted: usize,
    },
    /// History compacted.
    Compacted {
        /// New compaction floor.
        at: Revision,
    },
    /// No-op applied.
    Nop,
}

/// Application-level failure of an [`Op`] (the op reached the state machine
/// and was rejected there; these are deterministic across replicas).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpError {
    /// A CAS precondition failed.
    CasFailed {
        /// The key whose precondition failed.
        key: Key,
        /// The key's actual `mod_revision` (`None` if it does not exist).
        actual: Option<Revision>,
    },
    /// The referenced lease does not exist (or has expired).
    LeaseNotFound(LeaseId),
    /// The requested revision has been compacted away.
    Compacted {
        /// What was asked for.
        requested: Revision,
        /// The compaction floor (everything ≤ this is gone).
        compacted: Revision,
    },
    /// A lease grant re-used an existing id.
    LeaseExists(LeaseId),
}

impl std::fmt::Display for OpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpError::CasFailed { key, actual } => {
                write!(f, "cas failed on {key}: actual mod_revision {actual:?}")
            }
            OpError::LeaseNotFound(id) => write!(f, "{id} not found"),
            OpError::Compacted {
                requested,
                compacted,
            } => write!(f, "revision {requested} compacted (floor {compacted})"),
            OpError::LeaseExists(id) => write!(f, "{id} already exists"),
        }
    }
}

impl std::error::Error for OpError {}

/// Consistency level for [`Op::Read`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadLevel {
    /// Served through the Raft log: reflects every commit that precedes it.
    Linearizable,
    /// Served from the contacted node's applied state: may be stale.
    /// This is the follower/ZooKeeper-style read the HBase-3136 scenario
    /// exploits.
    Serializable,
}

// ---------------------------------------------------------------------
// Wire messages (client ↔ store node)
// ---------------------------------------------------------------------

/// A request from a client to a store node.
#[derive(Debug, Clone)]
pub struct ClientRequest {
    /// Client-chosen request id, echoed in the response.
    pub req: u64,
    /// The operation.
    pub op: Op,
    /// Read consistency (ignored for non-reads).
    pub level: ReadLevel,
}

/// Transport/availability failure of a request (as opposed to a
/// deterministic [`OpError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The contacted node is not the leader; `hint` is its best guess.
    NotLeader {
        /// Believed leader, if known.
        hint: Option<ActorId>,
    },
    /// The node cannot serve the request right now (e.g. no leader elected).
    Unavailable,
    /// The operation was rejected by the state machine.
    Op(OpError),
}

/// A store node's reply to a [`ClientRequest`].
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Echoed request id.
    pub req: u64,
    /// Outcome.
    pub result: Result<OpResult, RequestError>,
}

/// Creates a watch on a node. Events with `revision > after` are delivered
/// in order via [`WatchNotify`] messages ([`crate::Revision`] 0 = the full
/// retained history; refused as compacted if that history is gone).
#[derive(Debug, Clone)]
pub struct WatchCreate {
    /// Client-chosen watch id (unique per client).
    pub watch: u64,
    /// Only events whose key has this prefix are delivered.
    pub prefix: String,
    /// Deliver events strictly after this revision (0 = everything the
    /// node still retains; refused if compaction removed any of it).
    pub after: Revision,
}

/// Cancels a watch.
#[derive(Debug, Clone)]
pub struct WatchCancelReq {
    /// The watch to cancel.
    pub watch: u64,
}

/// A batch of watch events from a node's applied state.
#[derive(Debug, Clone)]
pub struct WatchNotify {
    /// The watch.
    pub watch: u64,
    /// Per-watch stream sequence number (dense from 0 per registration).
    /// A gap means the network lost a message of this stream: the client
    /// must treat the stream as dead and reconnect from its last
    /// contiguous revision — never paper over the hole.
    pub stream_seq: u64,
    /// New events, in revision order (shared with the node's retained
    /// log — fan-out to N watchers bumps refcounts, never deep-copies).
    pub events: Vec<std::rc::Rc<KvEvent>>,
    /// The node's applied revision after this batch (watchers use it to
    /// resume: `after = revision`).
    pub revision: Revision,
}

/// Periodic progress notification on an otherwise idle watch, so watchers
/// can both advance their resume point and detect dead streams.
#[derive(Debug, Clone)]
pub struct WatchProgress {
    /// The watch.
    pub watch: u64,
    /// Stream sequence number (shared counter with [`WatchNotify`]).
    pub stream_seq: u64,
    /// The node's applied revision.
    pub revision: Revision,
}

/// Server-initiated watch termination.
#[derive(Debug, Clone)]
pub struct WatchCancelled {
    /// The watch.
    pub watch: u64,
    /// Why (typically [`OpError::Compacted`]).
    pub reason: OpError,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_error_displays() {
        let e = OpError::CasFailed {
            key: Key::new("k"),
            actual: Some(Revision(3)),
        };
        assert!(e.to_string().contains("cas failed"));
        assert!(OpError::LeaseNotFound(LeaseId(1))
            .to_string()
            .contains("lease-1"));
        let c = OpError::Compacted {
            requested: Revision(2),
            compacted: Revision(9),
        };
        assert!(c.to_string().contains("r2"));
        assert!(c.to_string().contains("r9"));
    }

    #[test]
    fn expect_and_read_level_are_copy() {
        let e = Expect::ModRev(Revision(1));
        let _e2 = e;
        assert_eq!(e, Expect::ModRev(Revision(1)));
        let l = ReadLevel::Serializable;
        let _l2 = l;
        assert_ne!(l, ReadLevel::Linearizable);
    }
}
