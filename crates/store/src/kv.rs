//! Core key-value types: keys, values, revisions, events, leases.
//!
//! A [`Revision`] is the store's global logical clock: every committed
//! mutation increments it by one. The ordered sequence of [`KvEvent`]s —
//! one per revision — is exactly the paper's history `H`; the materialized
//! map of [`KeyValue`]s at a revision is the state `S`.

use crate::bytes::Bytes;

/// A key in the store. Keys are ordered byte strings; prefix scans model
/// etcd range reads and Kubernetes collection lists.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub String);

impl Key {
    /// Builds a key from anything string-like.
    pub fn new(s: impl Into<String>) -> Key {
        Key(s.into())
    }

    /// `true` if this key starts with `prefix`.
    pub fn has_prefix(&self, prefix: &str) -> bool {
        self.0.starts_with(prefix)
    }

    /// The raw key string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Key {
        Key::new(s)
    }
}

impl From<String> for Key {
    fn from(s: String) -> Key {
        Key(s)
    }
}

/// An opaque value. Upper layers define their own encodings.
pub type Value = Bytes;

/// The store's global, totally ordered mutation counter.
///
/// Revision 0 means "empty store / before any write"; the first commit is
/// revision 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Revision(pub u64);

impl Revision {
    /// The pre-history revision.
    pub const ZERO: Revision = Revision(0);

    /// The next revision.
    #[inline]
    pub fn next(self) -> Revision {
        Revision(self.0 + 1)
    }
}

impl std::fmt::Display for Revision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifies a lease (TTL-scoped key ownership, per Gray & Cheriton [23]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LeaseId(pub u64);

impl std::fmt::Display for LeaseId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lease-{}", self.0)
    }
}

/// A stored key with its MVCC metadata — the unit of the state `S`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyValue {
    /// The key.
    pub key: Key,
    /// The value at `mod_revision`.
    pub value: Value,
    /// Revision at which the key was (last) created.
    pub create_revision: Revision,
    /// Revision of the most recent write to the key.
    pub mod_revision: Revision,
    /// Number of writes since creation (1 for a fresh key).
    pub version: u64,
    /// Owning lease, if any; the key is deleted when the lease expires.
    pub lease: Option<LeaseId>,
}

/// One committed change — the unit of the history `H`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvEvent {
    /// A key was created or updated.
    Put {
        /// The key's state after the write.
        kv: KeyValue,
        /// The key's state before the write (`None` on create).
        prev: Option<KeyValue>,
    },
    /// A key was deleted (tombstone).
    Delete {
        /// The deleted key.
        key: Key,
        /// Revision of the deletion.
        revision: Revision,
        /// The key's state before deletion.
        prev: Option<KeyValue>,
    },
}

impl KvEvent {
    /// The key this event concerns.
    pub fn key(&self) -> &Key {
        match self {
            KvEvent::Put { kv, .. } => &kv.key,
            KvEvent::Delete { key, .. } => key,
        }
    }

    /// The revision at which this event committed.
    pub fn revision(&self) -> Revision {
        match self {
            KvEvent::Put { kv, .. } => kv.mod_revision,
            KvEvent::Delete { revision, .. } => *revision,
        }
    }

    /// `true` for deletions.
    pub fn is_delete(&self) -> bool {
        matches!(self, KvEvent::Delete { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(key: &str, rev: u64) -> KeyValue {
        KeyValue {
            key: Key::new(key),
            value: Value::from_static(b"v"),
            create_revision: Revision(rev),
            mod_revision: Revision(rev),
            version: 1,
            lease: None,
        }
    }

    #[test]
    fn keys_order_lexicographically_and_prefix_match() {
        assert!(Key::new("a") < Key::new("b"));
        assert!(Key::new("pods/a") < Key::new("pods/b"));
        assert!(Key::new("pods/a").has_prefix("pods/"));
        assert!(!Key::new("nodes/a").has_prefix("pods/"));
        assert_eq!(Key::from("x").as_str(), "x");
    }

    #[test]
    fn revision_next_increments() {
        assert_eq!(Revision::ZERO.next(), Revision(1));
        assert_eq!(Revision(41).next(), Revision(42));
        assert!(Revision(1) < Revision(2));
    }

    #[test]
    fn event_accessors() {
        let put = KvEvent::Put {
            kv: kv("a", 5),
            prev: None,
        };
        assert_eq!(put.key(), &Key::new("a"));
        assert_eq!(put.revision(), Revision(5));
        assert!(!put.is_delete());

        let del = KvEvent::Delete {
            key: Key::new("a"),
            revision: Revision(6),
            prev: Some(kv("a", 5)),
        };
        assert_eq!(del.revision(), Revision(6));
        assert!(del.is_delete());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Revision(3).to_string(), "r3");
        assert_eq!(LeaseId(7).to_string(), "lease-7");
        assert_eq!(Key::new("pods/p1").to_string(), "pods/p1");
    }
}
