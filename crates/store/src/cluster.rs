//! Topology helpers: spawning an n-node store cluster in a world.

use std::rc::Rc;

use ph_sim::{ActorId, SimTime, World};

use crate::node::{StoreNode, StoreNodeConfig};

/// Handle to a spawned store cluster.
///
/// The member list is a shared slice: cloning a handle (or lifting the
/// list into per-trial [`crate::StoreClientConfig`]s and perturbation
/// target sets) bumps a refcount instead of copying the ids.
#[derive(Debug, Clone)]
pub struct StoreCluster {
    /// Actor ids of the members, in node-index order.
    pub nodes: Rc<[ActorId]>,
}

impl StoreCluster {
    /// Number of members.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the cluster has no members (never true for spawned
    /// clusters).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The current leader's actor id, if any node currently leads.
    pub fn leader(&self, world: &World) -> Option<ActorId> {
        self.nodes.iter().copied().find(|&n| {
            !world.is_crashed(n)
                && world
                    .actor_ref::<StoreNode>(n)
                    .is_some_and(|s| s.is_leader())
        })
    }

    /// Runs the world until a leader exists or `deadline` passes.
    pub fn wait_for_leader(&self, world: &mut World, deadline: SimTime) -> Option<ActorId> {
        loop {
            if let Some(l) = self.leader(world) {
                return Some(l);
            }
            match world.peek_next() {
                Some(at) if at <= deadline => {
                    world.step();
                }
                _ => return self.leader(world),
            }
        }
    }
}

/// Spawns `n` store nodes named `store-0 … store-{n-1}`.
///
/// Actor ids are assigned in spawn order, so the member list handed to each
/// node is computed up front from the world's current actor count.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn spawn_store_cluster(world: &mut World, n: usize, cfg: StoreNodeConfig) -> StoreCluster {
    assert!(n > 0, "cluster must have at least one node");
    let base = world.actor_ids().count() as u32;
    let peers: Vec<ActorId> = (0..n as u32).map(|i| ActorId(base + i)).collect();
    let mut nodes = Vec::with_capacity(n);
    for idx in 0..n {
        let id = world.spawn(
            &format!("store-{idx}"),
            StoreNode::new(cfg, idx, peers.clone()),
        );
        assert_eq!(id, peers[idx], "spawn order must match precomputed ids");
        nodes.push(id);
    }
    StoreCluster {
        nodes: nodes.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_sim::{Duration, WorldConfig};

    #[test]
    fn cluster_elects_a_leader() {
        let mut world = World::new(WorldConfig::default(), 11);
        let cluster = spawn_store_cluster(&mut world, 3, StoreNodeConfig::default());
        assert_eq!(cluster.len(), 3);
        let leader = cluster.wait_for_leader(&mut world, SimTime(Duration::secs(2).as_nanos()));
        assert!(leader.is_some(), "no leader within 2s");
    }

    #[test]
    fn single_node_cluster_leads_quickly() {
        let mut world = World::new(WorldConfig::default(), 12);
        let cluster = spawn_store_cluster(&mut world, 1, StoreNodeConfig::default());
        let leader = cluster.wait_for_leader(&mut world, SimTime(Duration::secs(1).as_nanos()));
        assert_eq!(leader, Some(cluster.nodes[0]));
    }

    #[test]
    fn leader_failover() {
        let mut world = World::new(WorldConfig::default(), 13);
        let cluster = spawn_store_cluster(&mut world, 3, StoreNodeConfig::default());
        let first = cluster
            .wait_for_leader(&mut world, SimTime(Duration::secs(2).as_nanos()))
            .expect("initial leader");
        world.crash(first);
        world.run_for(Duration::millis(500));
        let second = cluster.leader(&world).expect("failover leader");
        assert_ne!(first, second);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_cluster_panics() {
        let mut world = World::new(WorldConfig::default(), 1);
        spawn_store_cluster(&mut world, 0, StoreNodeConfig::default());
    }
}
