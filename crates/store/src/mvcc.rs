//! The revisioned key-value state machine.
//!
//! [`MvccStore`] is deterministic: replicas applying the same command
//! sequence hold identical state, and a node replaying its Raft log after a
//! restart reconstructs the exact same revisions. The retained event log
//! ([`MvccStore::events_since`]) is the paper's history `H`; the current map
//! ([`MvccStore::range`]) is the state `S`. [`MvccStore::compact`] drops the
//! old tail of `H`, creating the rolling window whose edge produces
//! observability gaps (§4.2.3).

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::rc::Rc;

use crate::kv::{Key, KeyValue, KvEvent, LeaseId, Revision, Value};
use crate::msgs::{Expect, Op, OpError, OpResult};

/// Replicated lease state (existence and attached keys; expiry timing lives
/// at the leader, which proposes revocations through the log).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseInfo {
    /// Granted TTL in logical milliseconds.
    pub ttl_ms: u64,
    /// Keys currently attached.
    pub keys: BTreeSet<Key>,
}

/// The MVCC store: state `S`, retained history `H`, and lease table.
#[derive(Debug, Default, Clone)]
pub struct MvccStore {
    current: BTreeMap<Key, KeyValue>,
    /// Retained events; `events[i]` committed at revision
    /// `compacted + 1 + i`. Only puts and deletes consume revisions, so the
    /// log is dense.
    events: VecDeque<Rc<KvEvent>>,
    /// Highest compacted revision; events at or below it are gone.
    compacted: Revision,
    /// Latest committed revision.
    revision: Revision,
    leases: BTreeMap<LeaseId, LeaseInfo>,
}

impl MvccStore {
    /// Creates an empty store at revision 0.
    pub fn new() -> MvccStore {
        MvccStore::default()
    }

    /// Latest committed revision.
    pub fn revision(&self) -> Revision {
        self.revision
    }

    /// The compaction floor: events at or below this revision are gone.
    pub fn compacted(&self) -> Revision {
        self.compacted
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.current.len()
    }

    /// `true` if no keys are live.
    pub fn is_empty(&self) -> bool {
        self.current.is_empty()
    }

    /// Number of retained history events.
    pub fn retained_events(&self) -> usize {
        self.events.len()
    }

    /// Current state of one key.
    pub fn get(&self, key: &Key) -> Option<&KeyValue> {
        self.current.get(key)
    }

    /// All live keys with the given prefix, in key order, plus the revision
    /// the read reflects.
    pub fn range(&self, prefix: &str) -> (Vec<KeyValue>, Revision) {
        let kvs = self
            .current
            .range(Key::new(prefix)..)
            .take_while(|(k, _)| k.has_prefix(prefix))
            .map(|(_, v)| v.clone())
            .collect();
        (kvs, self.revision)
    }

    /// Lease table entry.
    pub fn lease(&self, id: LeaseId) -> Option<&LeaseInfo> {
        self.leases.get(&id)
    }

    /// Ids of all live leases.
    pub fn lease_ids(&self) -> Vec<LeaseId> {
        self.leases.keys().copied().collect()
    }

    /// Retained events strictly after `after`, in revision order.
    ///
    /// # Errors
    ///
    /// [`OpError::Compacted`] if `after` is below the compaction floor —
    /// events in `(after, compacted]` are irrecoverably gone, so resuming
    /// from `after` would silently skip history.
    pub fn events_since(&self, after: Revision) -> Result<Vec<Rc<KvEvent>>, OpError> {
        if after < self.compacted {
            return Err(OpError::Compacted {
                requested: after,
                compacted: self.compacted,
            });
        }
        let skip = (after.0 - self.compacted.0) as usize;
        Ok(self.events.iter().skip(skip).cloned().collect())
    }

    /// Applies one command, returning its result and the history events it
    /// produced (one per consumed revision).
    pub fn apply(&mut self, op: &Op) -> (Result<OpResult, OpError>, Vec<Rc<KvEvent>>) {
        match op {
            Op::Put {
                key,
                value,
                lease,
                expect,
            } => self.apply_put(key, value, *lease, *expect),
            Op::Delete { key, expect } => self.apply_delete(key, *expect),
            Op::Read { prefix } => {
                let (kvs, revision) = self.range(prefix);
                (Ok(OpResult::Read { kvs, revision }), Vec::new())
            }
            Op::LeaseGrant { id, ttl_ms } => {
                if self.leases.contains_key(id) {
                    return (Err(OpError::LeaseExists(*id)), Vec::new());
                }
                self.leases.insert(
                    *id,
                    LeaseInfo {
                        ttl_ms: *ttl_ms,
                        keys: BTreeSet::new(),
                    },
                );
                (Ok(OpResult::LeaseGranted { id: *id }), Vec::new())
            }
            Op::LeaseKeepAlive { id } => {
                if self.leases.contains_key(id) {
                    (Ok(OpResult::LeaseAlive { id: *id }), Vec::new())
                } else {
                    (Err(OpError::LeaseNotFound(*id)), Vec::new())
                }
            }
            Op::LeaseRevoke { id } => self.apply_lease_revoke(*id),
            Op::Compact { at } => {
                let at = (*at).min(self.revision);
                let n = self.compact(at);
                let _ = n;
                (Ok(OpResult::Compacted { at: self.compacted }), Vec::new())
            }
            Op::Nop => (Ok(OpResult::Nop), Vec::new()),
        }
    }

    fn check_expect(&self, key: &Key, expect: Expect) -> Result<(), OpError> {
        let actual = self.current.get(key).map(|kv| kv.mod_revision);
        let ok = match expect {
            Expect::Any => true,
            Expect::NotExists => actual.is_none(),
            Expect::ModRev(r) => actual == Some(r),
        };
        if ok {
            Ok(())
        } else {
            Err(OpError::CasFailed {
                key: key.clone(),
                actual,
            })
        }
    }

    fn apply_put(
        &mut self,
        key: &Key,
        value: &Value,
        lease: Option<LeaseId>,
        expect: Expect,
    ) -> (Result<OpResult, OpError>, Vec<Rc<KvEvent>>) {
        if let Err(e) = self.check_expect(key, expect) {
            return (Err(e), Vec::new());
        }
        if let Some(id) = lease {
            if !self.leases.contains_key(&id) {
                return (Err(OpError::LeaseNotFound(id)), Vec::new());
            }
        }
        let rev = self.revision.next();
        let prev = self.current.get(key).cloned();
        // Maintain lease attachment sets across ownership changes.
        if let Some(p) = &prev {
            if let Some(old_lease) = p.lease {
                if Some(old_lease) != lease {
                    if let Some(info) = self.leases.get_mut(&old_lease) {
                        info.keys.remove(key);
                    }
                }
            }
        }
        if let Some(id) = lease {
            self.leases
                .get_mut(&id)
                .expect("checked above")
                .keys
                .insert(key.clone());
        }
        let kv = KeyValue {
            key: key.clone(),
            value: value.clone(),
            create_revision: prev.as_ref().map_or(rev, |p| p.create_revision),
            mod_revision: rev,
            version: prev.as_ref().map_or(1, |p| p.version + 1),
            lease,
        };
        self.current.insert(key.clone(), kv.clone());
        self.revision = rev;
        // Construct the event once; the retained log and the notification
        // batch share the allocation.
        let ev = Rc::new(KvEvent::Put { kv, prev });
        self.events.push_back(Rc::clone(&ev));
        (Ok(OpResult::Put { revision: rev }), vec![ev])
    }

    fn apply_delete(
        &mut self,
        key: &Key,
        expect: Expect,
    ) -> (Result<OpResult, OpError>, Vec<Rc<KvEvent>>) {
        if let Err(e) = self.check_expect(key, expect) {
            return (Err(e), Vec::new());
        }
        let Some(prev) = self.current.remove(key) else {
            return (
                Ok(OpResult::Delete {
                    revision: self.revision,
                    existed: false,
                }),
                Vec::new(),
            );
        };
        if let Some(lease) = prev.lease {
            if let Some(info) = self.leases.get_mut(&lease) {
                info.keys.remove(key);
            }
        }
        let rev = self.revision.next();
        self.revision = rev;
        let ev = Rc::new(KvEvent::Delete {
            key: key.clone(),
            revision: rev,
            prev: Some(prev),
        });
        self.events.push_back(Rc::clone(&ev));
        (
            Ok(OpResult::Delete {
                revision: rev,
                existed: true,
            }),
            vec![ev],
        )
    }

    fn apply_lease_revoke(&mut self, id: LeaseId) -> (Result<OpResult, OpError>, Vec<Rc<KvEvent>>) {
        let Some(info) = self.leases.remove(&id) else {
            return (Err(OpError::LeaseNotFound(id)), Vec::new());
        };
        let mut events = Vec::with_capacity(info.keys.len());
        for key in &info.keys {
            let (_, mut evs) = self.apply_delete(key, Expect::Any);
            events.append(&mut evs);
        }
        (
            Ok(OpResult::LeaseRevoked {
                id,
                deleted: events.len(),
            }),
            events,
        )
    }

    /// Drops retained events at or below `at` (clamped to the current
    /// revision). Returns the number of events discarded.
    pub fn compact(&mut self, at: Revision) -> usize {
        let at = at.min(self.revision);
        if at <= self.compacted {
            return 0;
        }
        let drop = (at.0 - self.compacted.0) as usize;
        let drop = drop.min(self.events.len());
        self.events.drain(..drop);
        self.compacted = at;
        drop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(s: &mut MvccStore, key: &str, val: &str) -> Revision {
        let (res, _) = s.apply(&Op::Put {
            key: Key::new(key),
            value: Value::copy_from_slice(val.as_bytes()),
            lease: None,
            expect: Expect::Any,
        });
        match res.expect("put") {
            OpResult::Put { revision } => revision,
            other => panic!("unexpected {other:?}"),
        }
    }

    fn delete(s: &mut MvccStore, key: &str) {
        let (res, _) = s.apply(&Op::Delete {
            key: Key::new(key),
            expect: Expect::Any,
        });
        res.expect("delete");
    }

    #[test]
    fn puts_assign_dense_revisions() {
        let mut s = MvccStore::new();
        assert_eq!(put(&mut s, "a", "1"), Revision(1));
        assert_eq!(put(&mut s, "b", "2"), Revision(2));
        assert_eq!(put(&mut s, "a", "3"), Revision(3));
        assert_eq!(s.revision(), Revision(3));
        let a = s.get(&Key::new("a")).expect("a");
        assert_eq!(a.create_revision, Revision(1));
        assert_eq!(a.mod_revision, Revision(3));
        assert_eq!(a.version, 2);
    }

    #[test]
    fn range_scans_by_prefix_in_order() {
        let mut s = MvccStore::new();
        put(&mut s, "pods/b", "1");
        put(&mut s, "pods/a", "2");
        put(&mut s, "nodes/x", "3");
        let (kvs, rev) = s.range("pods/");
        assert_eq!(rev, Revision(3));
        let keys: Vec<_> = kvs.iter().map(|kv| kv.key.as_str()).collect();
        assert_eq!(keys, vec!["pods/a", "pods/b"]);
        let (all, _) = s.range("");
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn delete_tombstones_and_reads_through() {
        let mut s = MvccStore::new();
        put(&mut s, "a", "1");
        delete(&mut s, "a");
        assert!(s.get(&Key::new("a")).is_none());
        assert_eq!(s.revision(), Revision(2));
        // Deleting a missing key consumes no revision.
        let (res, evs) = s.apply(&Op::Delete {
            key: Key::new("zzz"),
            expect: Expect::Any,
        });
        assert!(matches!(res, Ok(OpResult::Delete { existed: false, .. })));
        assert!(evs.is_empty());
        assert_eq!(s.revision(), Revision(2));
    }

    #[test]
    fn recreated_key_gets_fresh_create_revision() {
        let mut s = MvccStore::new();
        put(&mut s, "a", "1");
        delete(&mut s, "a");
        put(&mut s, "a", "2");
        let a = s.get(&Key::new("a")).expect("a");
        assert_eq!(a.create_revision, Revision(3));
        assert_eq!(a.version, 1);
    }

    #[test]
    fn cas_preconditions_enforced() {
        let mut s = MvccStore::new();
        let r1 = put(&mut s, "a", "1");
        // NotExists on an existing key fails.
        let (res, _) = s.apply(&Op::Put {
            key: Key::new("a"),
            value: Value::from_static(b"x"),
            lease: None,
            expect: Expect::NotExists,
        });
        assert_eq!(
            res,
            Err(OpError::CasFailed {
                key: Key::new("a"),
                actual: Some(r1),
            })
        );
        // Correct ModRev succeeds.
        let (res, _) = s.apply(&Op::Put {
            key: Key::new("a"),
            value: Value::from_static(b"y"),
            lease: None,
            expect: Expect::ModRev(r1),
        });
        assert!(res.is_ok());
        // Stale ModRev now fails — the HBase-3136 mechanism.
        let (res, _) = s.apply(&Op::Put {
            key: Key::new("a"),
            value: Value::from_static(b"z"),
            lease: None,
            expect: Expect::ModRev(r1),
        });
        assert!(matches!(res, Err(OpError::CasFailed { .. })));
        // Failed CAS consumed no revision.
        assert_eq!(s.revision(), Revision(2));
    }

    #[test]
    fn cas_delete_with_modrev() {
        let mut s = MvccStore::new();
        let r1 = put(&mut s, "a", "1");
        put(&mut s, "a", "2");
        let (res, _) = s.apply(&Op::Delete {
            key: Key::new("a"),
            expect: Expect::ModRev(r1),
        });
        assert!(matches!(res, Err(OpError::CasFailed { .. })));
        assert!(s.get(&Key::new("a")).is_some());
    }

    #[test]
    fn events_since_returns_suffix_in_order() {
        let mut s = MvccStore::new();
        put(&mut s, "a", "1");
        put(&mut s, "b", "2");
        delete(&mut s, "a");
        let evs = s.events_since(Revision(1)).expect("retained");
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].revision(), Revision(2));
        assert_eq!(evs[1].revision(), Revision(3));
        assert!(evs[1].is_delete());
        assert!(s.events_since(Revision(3)).expect("empty").is_empty());
    }

    #[test]
    fn compaction_drops_tail_and_poisons_old_resumes() {
        let mut s = MvccStore::new();
        for i in 0..10 {
            put(&mut s, &format!("k{i}"), "v");
        }
        let dropped = s.compact(Revision(6));
        assert_eq!(dropped, 6);
        assert_eq!(s.compacted(), Revision(6));
        assert_eq!(s.retained_events(), 4);
        // Resuming exactly at the floor is fine...
        let evs = s.events_since(Revision(6)).expect("at floor");
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].revision(), Revision(7));
        // ...but below it is an observability gap.
        let err = s.events_since(Revision(5)).expect_err("compacted");
        assert_eq!(
            err,
            OpError::Compacted {
                requested: Revision(5),
                compacted: Revision(6),
            }
        );
        // State is unaffected by compaction.
        assert_eq!(s.len(), 10);
        // Compacting backwards or twice is a no-op.
        assert_eq!(s.compact(Revision(3)), 0);
    }

    #[test]
    fn compact_clamps_to_current_revision() {
        let mut s = MvccStore::new();
        put(&mut s, "a", "1");
        let dropped = s.compact(Revision(99));
        assert_eq!(dropped, 1);
        assert_eq!(s.compacted(), Revision(1));
        assert_eq!(s.revision(), Revision(1));
    }

    #[test]
    fn leases_attach_and_revoke_deletes_keys() {
        let mut s = MvccStore::new();
        let (res, _) = s.apply(&Op::LeaseGrant {
            id: LeaseId(1),
            ttl_ms: 1000,
        });
        assert!(res.is_ok());
        // Re-grant fails.
        let (res, _) = s.apply(&Op::LeaseGrant {
            id: LeaseId(1),
            ttl_ms: 1000,
        });
        assert_eq!(res, Err(OpError::LeaseExists(LeaseId(1))));
        // Attach two keys.
        for k in ["x", "y"] {
            let (res, _) = s.apply(&Op::Put {
                key: Key::new(k),
                value: Value::from_static(b"v"),
                lease: Some(LeaseId(1)),
                expect: Expect::Any,
            });
            res.expect("leased put");
        }
        assert_eq!(s.lease(LeaseId(1)).expect("lease").keys.len(), 2);
        // Keepalive works, unknown lease errors.
        assert!(s.apply(&Op::LeaseKeepAlive { id: LeaseId(1) }).0.is_ok());
        assert_eq!(
            s.apply(&Op::LeaseKeepAlive { id: LeaseId(9) }).0,
            Err(OpError::LeaseNotFound(LeaseId(9)))
        );
        // Revoke deletes both keys, emitting events.
        let (res, evs) = s.apply(&Op::LeaseRevoke { id: LeaseId(1) });
        assert_eq!(
            res,
            Ok(OpResult::LeaseRevoked {
                id: LeaseId(1),
                deleted: 2,
            })
        );
        assert_eq!(evs.len(), 2);
        assert!(s.is_empty());
        assert!(s.lease(LeaseId(1)).is_none());
    }

    #[test]
    fn leased_put_requires_live_lease() {
        let mut s = MvccStore::new();
        let (res, _) = s.apply(&Op::Put {
            key: Key::new("x"),
            value: Value::from_static(b"v"),
            lease: Some(LeaseId(404)),
            expect: Expect::Any,
        });
        assert_eq!(res, Err(OpError::LeaseNotFound(LeaseId(404))));
    }

    #[test]
    fn overwrite_detaches_old_lease() {
        let mut s = MvccStore::new();
        s.apply(&Op::LeaseGrant {
            id: LeaseId(1),
            ttl_ms: 1000,
        })
        .0
        .expect("grant");
        s.apply(&Op::Put {
            key: Key::new("x"),
            value: Value::from_static(b"v"),
            lease: Some(LeaseId(1)),
            expect: Expect::Any,
        })
        .0
        .expect("leased put");
        // Overwrite without a lease detaches.
        put(&mut s, "x", "v2");
        assert!(s.lease(LeaseId(1)).expect("lease").keys.is_empty());
        let (_, evs) = s.apply(&Op::LeaseRevoke { id: LeaseId(1) });
        assert!(evs.is_empty(), "no keys should die with the lease");
        assert!(s.get(&Key::new("x")).is_some());
    }

    #[test]
    fn reads_and_nops_consume_no_revisions() {
        let mut s = MvccStore::new();
        put(&mut s, "a", "1");
        let before = s.revision();
        s.apply(&Op::Read { prefix: "".into() }).0.expect("read");
        s.apply(&Op::Nop).0.expect("nop");
        s.apply(&Op::Compact { at: Revision(1) })
            .0
            .expect("compact");
        assert_eq!(s.revision(), before);
        assert!(s.events_since(before).expect("ok").is_empty());
    }

    #[test]
    fn replaying_the_same_ops_reproduces_identical_state() {
        let ops = [
            Op::Put {
                key: Key::new("a"),
                value: Value::from_static(b"1"),
                lease: None,
                expect: Expect::Any,
            },
            Op::LeaseGrant {
                id: LeaseId(1),
                ttl_ms: 500,
            },
            Op::Put {
                key: Key::new("b"),
                value: Value::from_static(b"2"),
                lease: Some(LeaseId(1)),
                expect: Expect::Any,
            },
            Op::Delete {
                key: Key::new("a"),
                expect: Expect::Any,
            },
            Op::LeaseRevoke { id: LeaseId(1) },
        ];
        let mut s1 = MvccStore::new();
        let mut s2 = MvccStore::new();
        let out1: Vec<_> = ops.iter().map(|op| s1.apply(op)).collect();
        let out2: Vec<_> = ops.iter().map(|op| s2.apply(op)).collect();
        assert_eq!(out1, out2);
        assert_eq!(s1.revision(), s2.revision());
        assert_eq!(s1.range(""), s2.range(""));
    }
}
