//! A compact Raft consensus core.
//!
//! Implements leader election, log replication and commit advancement from
//! the Raft paper (Ongaro & Ousterhout, ATC '14) for a fixed-membership
//! cluster — the shape the paper's infrastructures use for their central
//! store (§4.1: "a small cluster of nodes, typically one to nine").
//! Snapshots and membership change are deliberately out of scope.
//!
//! The core is *pure*: it never touches clocks, networks or randomness.
//! Inputs are messages and timeout notifications; outputs are [`Effect`]s
//! the caller executes. This makes safety properties directly unit-testable
//! and lets [`crate::node::StoreNode`] own all timing via `ph-sim`.

use std::rc::Rc;

use ph_sim::ActorId;

use crate::msgs::Op;

/// Index of a node within its cluster (0-based, dense).
pub type NodeIdx = usize;

/// Raft log position (1-based; 0 means "before the log").
pub type LogIndex = u64;

/// Raft term.
pub type Term = u64;

/// Where a command came from, so exactly one node answers the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Origin {
    /// The cluster node that received the client request.
    pub node: NodeIdx,
    /// The requesting client actor.
    pub client: ActorId,
    /// The client's request id.
    pub req: u64,
}

/// A replicated command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Command {
    /// The state-machine operation.
    pub op: Op,
    /// Reply routing (`None` for internally generated commands).
    pub origin: Option<Origin>,
}

impl Command {
    /// An internal command with no reply routing.
    pub fn internal(op: Op) -> Command {
        Command { op, origin: None }
    }
}

/// One log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Term in which the entry was appended at the leader.
    pub term: Term,
    /// The command.
    pub cmd: Command,
}

/// Raft protocol messages between cluster nodes.
#[derive(Debug, Clone)]
pub enum RaftMsg {
    /// Candidate solicits a vote.
    RequestVote {
        /// Candidate's term.
        term: Term,
        /// Index of the candidate's last log entry.
        last_log_index: LogIndex,
        /// Term of the candidate's last log entry.
        last_log_term: Term,
    },
    /// Vote reply.
    VoteResp {
        /// Voter's term.
        term: Term,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Log replication / heartbeat.
    AppendEntries {
        /// Leader's term.
        term: Term,
        /// Index of the entry immediately preceding `entries`.
        prev_index: LogIndex,
        /// Term of that entry.
        prev_term: Term,
        /// New entries (empty for pure heartbeats). Shared (`Rc`) with the
        /// leader's log so re-sends to lagging followers — which are O(window)
        /// per append under batched load — bump a refcount instead of deep
        /// copying keys and values.
        entries: Vec<Rc<LogEntry>>,
        /// Leader's commit index.
        commit: LogIndex,
    },
    /// Replication reply.
    AppendResp {
        /// Follower's term.
        term: Term,
        /// Whether the consistency check passed and entries were appended.
        success: bool,
        /// On success, the follower's highest replicated index.
        match_index: LogIndex,
    },
}

/// What the caller must do after feeding the core an input.
#[derive(Debug, Clone)]
pub enum Effect {
    /// Send a message to a peer.
    Send(NodeIdx, RaftMsg),
    /// Apply a newly committed entry to the state machine, in order.
    Apply {
        /// The entry's log index.
        index: LogIndex,
        /// The entry.
        entry: LogEntry,
    },
    /// Re-arm the (randomized) election timer.
    ResetElectionTimer,
    /// This node just won an election; start the heartbeat timer.
    BecameLeader,
    /// This node just lost leadership; stop the heartbeat timer.
    SteppedDown,
}

/// A node's current role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Passive replica.
    Follower,
    /// Running an election.
    Candidate,
    /// Serving writes.
    Leader,
}

/// Why [`RaftCore::propose`] rejected a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotLeader {
    /// Best guess at the current leader.
    pub hint: Option<NodeIdx>,
}

/// The Raft state machine for one node.
#[derive(Debug, Clone)]
pub struct RaftCore {
    id: NodeIdx,
    n: usize,

    // Persistent state (survives restart).
    term: Term,
    voted_for: Option<NodeIdx>,
    log: Vec<Rc<LogEntry>>, // log[i] has index i+1

    // Volatile state.
    role: Role,
    commit: LogIndex,
    applied: LogIndex,
    leader_hint: Option<NodeIdx>,
    votes: Vec<bool>,
    next_index: Vec<LogIndex>,
    match_index: Vec<LogIndex>,
}

impl RaftCore {
    /// Creates a follower in term 0 for a cluster of `n` nodes, of which this
    /// is node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `id >= n`.
    pub fn new(id: NodeIdx, n: usize) -> RaftCore {
        assert!(n > 0, "cluster must have at least one node");
        assert!(id < n, "node id {id} out of range for cluster of {n}");
        RaftCore {
            id,
            n,
            term: 0,
            voted_for: None,
            log: Vec::new(),
            role: Role::Follower,
            commit: 0,
            applied: 0,
            leader_hint: None,
            votes: vec![false; n],
            next_index: vec![1; n],
            match_index: vec![0; n],
        }
    }

    /// This node's index.
    pub fn id(&self) -> NodeIdx {
        self.id
    }

    /// Cluster size.
    pub fn cluster_size(&self) -> usize {
        self.n
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// `true` if this node currently believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Current term.
    pub fn term(&self) -> Term {
        self.term
    }

    /// Commit index.
    pub fn commit(&self) -> LogIndex {
        self.commit
    }

    /// Number of log entries.
    pub fn log_len(&self) -> LogIndex {
        self.log.len() as LogIndex
    }

    /// The entry at `index`, if present.
    pub fn entry(&self, index: LogIndex) -> Option<&LogEntry> {
        if index == 0 {
            None
        } else {
            self.log.get(index as usize - 1).map(Rc::as_ref)
        }
    }

    /// Best guess at the current leader.
    pub fn leader_hint(&self) -> Option<NodeIdx> {
        if self.role == Role::Leader {
            Some(self.id)
        } else {
            self.leader_hint
        }
    }

    /// Models a crash+restart: persistent state (term, vote, log) survives,
    /// volatile state resets. The caller must also reset its state machine
    /// and will re-apply entries as the commit index re-advances.
    pub fn restart(&mut self) {
        self.role = Role::Follower;
        self.commit = 0;
        self.applied = 0;
        self.leader_hint = None;
        self.votes = vec![false; self.n];
        self.next_index = vec![1; self.n];
        self.match_index = vec![0; self.n];
    }

    fn last_log_index(&self) -> LogIndex {
        self.log.len() as LogIndex
    }

    fn last_log_term(&self) -> Term {
        self.log.last().map_or(0, |e| e.term)
    }

    fn term_at(&self, index: LogIndex) -> Term {
        if index == 0 {
            0
        } else {
            self.log.get(index as usize - 1).map_or(0, |e| e.term)
        }
    }

    fn majority(&self) -> usize {
        self.n / 2 + 1
    }

    fn peers(&self) -> impl Iterator<Item = NodeIdx> + '_ {
        (0..self.n).filter(move |&p| p != self.id)
    }

    fn become_follower(&mut self, term: Term, effects: &mut Vec<Effect>) {
        let was_leader = self.role == Role::Leader;
        if term > self.term {
            self.term = term;
            self.voted_for = None;
        }
        self.role = Role::Follower;
        if was_leader {
            effects.push(Effect::SteppedDown);
        }
    }

    /// The election timer fired: start (or restart) an election.
    pub fn on_election_timeout(&mut self, effects: &mut Vec<Effect>) {
        if self.role == Role::Leader {
            return;
        }
        self.term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.id);
        self.votes = vec![false; self.n];
        self.votes[self.id] = true;
        self.leader_hint = None;
        effects.push(Effect::ResetElectionTimer);
        if self.n == 1 {
            self.become_leader(effects);
            return;
        }
        let msg = RaftMsg::RequestVote {
            term: self.term,
            last_log_index: self.last_log_index(),
            last_log_term: self.last_log_term(),
        };
        for p in self.peers().collect::<Vec<_>>() {
            effects.push(Effect::Send(p, msg.clone()));
        }
    }

    fn become_leader(&mut self, effects: &mut Vec<Effect>) {
        self.role = Role::Leader;
        self.leader_hint = Some(self.id);
        let last = self.last_log_index();
        for p in 0..self.n {
            self.next_index[p] = last + 1;
            self.match_index[p] = 0;
        }
        self.match_index[self.id] = last;
        effects.push(Effect::BecameLeader);
        // Commit a no-op from the new term so earlier-term entries commit
        // promptly (Raft §5.4.2 restriction workaround).
        self.append_local(Command::internal(Op::Nop));
        self.broadcast_append(effects);
        self.advance_commit(effects);
    }

    /// The heartbeat timer fired (leaders only): replicate to everyone.
    pub fn on_heartbeat(&mut self, effects: &mut Vec<Effect>) {
        if self.role == Role::Leader {
            self.broadcast_append(effects);
        }
    }

    fn append_local(&mut self, cmd: Command) -> LogIndex {
        self.log.push(Rc::new(LogEntry {
            term: self.term,
            cmd,
        }));
        let idx = self.last_log_index();
        self.match_index[self.id] = idx;
        idx
    }

    /// Submits a command for replication.
    ///
    /// # Errors
    ///
    /// [`NotLeader`] (with a leader hint) if this node is not the leader.
    pub fn propose(
        &mut self,
        cmd: Command,
        effects: &mut Vec<Effect>,
    ) -> Result<LogIndex, NotLeader> {
        if self.role != Role::Leader {
            return Err(NotLeader {
                hint: self.leader_hint,
            });
        }
        let idx = self.append_local(cmd);
        self.broadcast_append(effects);
        self.advance_commit(effects); // single-node clusters commit instantly
        Ok(idx)
    }

    fn broadcast_append(&mut self, effects: &mut Vec<Effect>) {
        for p in self.peers().collect::<Vec<_>>() {
            self.send_append(p, effects);
        }
    }

    fn send_append(&mut self, to: NodeIdx, effects: &mut Vec<Effect>) {
        let next = self.next_index[to];
        let prev_index = next - 1;
        let prev_term = self.term_at(prev_index);
        let entries: Vec<Rc<LogEntry>> = self.log[prev_index as usize..].to_vec();
        effects.push(Effect::Send(
            to,
            RaftMsg::AppendEntries {
                term: self.term,
                prev_index,
                prev_term,
                entries,
                commit: self.commit,
            },
        ));
    }

    /// Feeds one protocol message into the core.
    pub fn on_message(&mut self, from: NodeIdx, msg: RaftMsg, effects: &mut Vec<Effect>) {
        match msg {
            RaftMsg::RequestVote {
                term,
                last_log_index,
                last_log_term,
            } => self.on_request_vote(from, term, last_log_index, last_log_term, effects),
            RaftMsg::VoteResp { term, granted } => self.on_vote_resp(from, term, granted, effects),
            RaftMsg::AppendEntries {
                term,
                prev_index,
                prev_term,
                entries,
                commit,
            } => self.on_append(from, term, prev_index, prev_term, entries, commit, effects),
            RaftMsg::AppendResp {
                term,
                success,
                match_index,
            } => self.on_append_resp(from, term, success, match_index, effects),
        }
    }

    fn on_request_vote(
        &mut self,
        from: NodeIdx,
        term: Term,
        last_log_index: LogIndex,
        last_log_term: Term,
        effects: &mut Vec<Effect>,
    ) {
        if term > self.term {
            self.become_follower(term, effects);
        }
        let log_ok = last_log_term > self.last_log_term()
            || (last_log_term == self.last_log_term() && last_log_index >= self.last_log_index());
        let grant = term == self.term
            && log_ok
            && (self.voted_for.is_none() || self.voted_for == Some(from));
        if grant {
            self.voted_for = Some(from);
            effects.push(Effect::ResetElectionTimer);
        }
        effects.push(Effect::Send(
            from,
            RaftMsg::VoteResp {
                term: self.term,
                granted: grant,
            },
        ));
    }

    fn on_vote_resp(
        &mut self,
        from: NodeIdx,
        term: Term,
        granted: bool,
        effects: &mut Vec<Effect>,
    ) {
        if term > self.term {
            self.become_follower(term, effects);
            return;
        }
        if self.role != Role::Candidate || term < self.term || !granted {
            return;
        }
        self.votes[from] = true;
        let count = self.votes.iter().filter(|&&v| v).count();
        if count >= self.majority() {
            self.become_leader(effects);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_append(
        &mut self,
        from: NodeIdx,
        term: Term,
        prev_index: LogIndex,
        prev_term: Term,
        entries: Vec<Rc<LogEntry>>,
        commit: LogIndex,
        effects: &mut Vec<Effect>,
    ) {
        if term < self.term {
            effects.push(Effect::Send(
                from,
                RaftMsg::AppendResp {
                    term: self.term,
                    success: false,
                    match_index: 0,
                },
            ));
            return;
        }
        // Valid leader for this term.
        self.become_follower(term, effects);
        self.leader_hint = Some(from);
        effects.push(Effect::ResetElectionTimer);

        // Consistency check.
        if prev_index > self.last_log_index() || self.term_at(prev_index) != prev_term {
            effects.push(Effect::Send(
                from,
                RaftMsg::AppendResp {
                    term: self.term,
                    success: false,
                    match_index: 0,
                },
            ));
            return;
        }
        // Append, truncating conflicts.
        let mut idx = prev_index;
        for entry in entries {
            idx += 1;
            if self.term_at(idx) != entry.term {
                self.log.truncate(idx as usize - 1);
                self.log.push(entry);
            }
        }
        let match_index = idx;
        let new_commit = commit.min(match_index);
        if new_commit > self.commit {
            self.commit = new_commit;
            self.emit_applies(effects);
        }
        effects.push(Effect::Send(
            from,
            RaftMsg::AppendResp {
                term: self.term,
                success: true,
                match_index,
            },
        ));
    }

    fn on_append_resp(
        &mut self,
        from: NodeIdx,
        term: Term,
        success: bool,
        match_index: LogIndex,
        effects: &mut Vec<Effect>,
    ) {
        if term > self.term {
            self.become_follower(term, effects);
            return;
        }
        if self.role != Role::Leader || term < self.term {
            return;
        }
        if success {
            if match_index > self.match_index[from] {
                self.match_index[from] = match_index;
            }
            self.next_index[from] = self.match_index[from] + 1;
            self.advance_commit(effects);
        } else {
            // Back off and retry (at the next heartbeat).
            self.next_index[from] = self.next_index[from].saturating_sub(1).max(1);
        }
    }

    fn advance_commit(&mut self, effects: &mut Vec<Effect>) {
        let mut candidate = self.last_log_index();
        while candidate > self.commit {
            // Only entries from the current term commit by counting (§5.4.2).
            if self.term_at(candidate) == self.term {
                let replicated = self.match_index.iter().filter(|&&m| m >= candidate).count();
                if replicated >= self.majority() {
                    self.commit = candidate;
                    self.emit_applies(effects);
                    // Propagate the new commit index immediately (as etcd
                    // does) so follower-applied state trails commits by a
                    // round-trip, not a heartbeat interval.
                    self.broadcast_append(effects);
                    return;
                }
            }
            candidate -= 1;
        }
    }

    fn emit_applies(&mut self, effects: &mut Vec<Effect>) {
        while self.applied < self.commit {
            self.applied += 1;
            let entry = LogEntry::clone(&self.log[self.applied as usize - 1]);
            effects.push(Effect::Apply {
                index: self.applied,
                entry,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// In-memory test harness: perfect, ordered links between pure cores.
    struct Net {
        cores: Vec<RaftCore>,
        inflight: VecDeque<(NodeIdx, NodeIdx, RaftMsg)>, // (from, to, msg)
        applied: Vec<Vec<(LogIndex, LogEntry)>>,
        blocked: Vec<bool>,
    }

    impl Net {
        fn new(n: usize) -> Net {
            Net {
                cores: (0..n).map(|i| RaftCore::new(i, n)).collect(),
                inflight: VecDeque::new(),
                applied: vec![Vec::new(); n],
                blocked: vec![false; n],
            }
        }

        fn absorb(&mut self, at: NodeIdx, effects: Vec<Effect>) {
            for e in effects {
                match e {
                    Effect::Send(to, msg) => self.inflight.push_back((at, to, msg)),
                    Effect::Apply { index, entry } => self.applied[at].push((index, entry)),
                    _ => {}
                }
            }
        }

        fn timeout(&mut self, at: NodeIdx) {
            let mut eff = Vec::new();
            self.cores[at].on_election_timeout(&mut eff);
            self.absorb(at, eff);
        }

        fn heartbeat(&mut self, at: NodeIdx) {
            let mut eff = Vec::new();
            self.cores[at].on_heartbeat(&mut eff);
            self.absorb(at, eff);
        }

        fn propose(&mut self, at: NodeIdx, op: Op) -> Result<LogIndex, NotLeader> {
            let mut eff = Vec::new();
            let r = self.cores[at].propose(Command::internal(op), &mut eff);
            self.absorb(at, eff);
            r
        }

        /// Delivers all in-flight messages to completion.
        fn settle(&mut self) {
            let mut guard = 0;
            while let Some((from, to, msg)) = self.inflight.pop_front() {
                guard += 1;
                assert!(guard < 100_000, "message storm");
                if self.blocked[to] || self.blocked[from] {
                    continue;
                }
                let mut eff = Vec::new();
                self.cores[to].on_message(from, msg, &mut eff);
                self.absorb(to, eff);
            }
        }

        fn leader(&self) -> Option<NodeIdx> {
            let leaders: Vec<_> = self
                .cores
                .iter()
                .enumerate()
                .filter(|(i, c)| c.is_leader() && !self.blocked[*i])
                .map(|(i, _)| i)
                .collect();
            assert!(leaders.len() <= 1, "split brain among reachable nodes");
            leaders.first().copied()
        }
    }

    fn put_op(k: &str) -> Op {
        Op::Put {
            key: crate::kv::Key::new(k),
            value: crate::kv::Value::from_static(b"v"),
            lease: None,
            expect: crate::msgs::Expect::Any,
        }
    }

    #[test]
    fn single_node_elects_itself_and_commits_instantly() {
        let mut net = Net::new(1);
        net.timeout(0);
        assert!(net.cores[0].is_leader());
        let idx = net.propose(0, put_op("a")).expect("leader");
        assert_eq!(idx, 2); // 1 is the leader's no-op
        assert_eq!(net.cores[0].commit(), 2);
        assert_eq!(net.applied[0].len(), 2);
    }

    #[test]
    fn three_nodes_elect_exactly_one_leader() {
        let mut net = Net::new(3);
        net.timeout(0);
        net.settle();
        assert_eq!(net.leader(), Some(0));
        assert_eq!(net.cores[0].term(), 1);
        // Everyone agrees on the hint.
        for c in &net.cores {
            assert_eq!(c.leader_hint(), Some(0));
        }
    }

    #[test]
    fn replication_commits_on_majority_and_applies_in_order() {
        let mut net = Net::new(3);
        net.timeout(0);
        net.settle();
        net.propose(0, put_op("a")).expect("leader");
        net.propose(0, put_op("b")).expect("leader");
        net.settle();
        net.heartbeat(0); // commit index propagation
        net.settle();
        for i in 0..3 {
            assert_eq!(net.cores[i].commit(), 3, "node {i}");
            let indices: Vec<_> = net.applied[i].iter().map(|(x, _)| *x).collect();
            assert_eq!(indices, vec![1, 2, 3]);
        }
    }

    #[test]
    fn follower_rejects_propose_with_hint() {
        let mut net = Net::new(3);
        net.timeout(2);
        net.settle();
        let err = net.propose(0, put_op("a")).expect_err("follower");
        assert_eq!(err.hint, Some(2));
    }

    #[test]
    fn higher_term_candidate_deposes_leader() {
        let mut net = Net::new(3);
        net.timeout(0);
        net.settle();
        assert!(net.cores[0].is_leader());
        // Node 1 times out twice (higher term) while able to reach others.
        net.timeout(1);
        net.settle();
        let leader = net.leader().expect("someone leads");
        // Old leader must have stepped down if node 1 won.
        if leader == 1 {
            assert!(!net.cores[0].is_leader());
            assert!(net.cores[0].term() >= net.cores[1].term());
        }
    }

    #[test]
    fn partitioned_minority_leader_cannot_commit() {
        let mut net = Net::new(3);
        net.timeout(0);
        net.settle();
        // Cut the leader off.
        net.blocked[0] = true;
        let _ = net.propose(0, put_op("lost"));
        net.settle();
        assert_eq!(net.cores[0].commit(), 1, "only its own no-op from election");
        // Majority side elects a new leader and commits.
        net.timeout(1);
        net.settle();
        assert_eq!(net.leader(), Some(1));
        net.propose(1, put_op("kept")).expect("new leader");
        net.settle();
        net.heartbeat(1);
        net.settle();
        assert!(net.cores[1].commit() >= 2);

        // Heal: old leader rejoins, truncates its conflicting entry.
        net.blocked[0] = false;
        net.heartbeat(1);
        net.settle();
        net.heartbeat(1);
        net.settle();
        assert!(!net.cores[0].is_leader());
        assert_eq!(net.cores[0].commit(), net.cores[1].commit());
        // Logs agree entry-by-entry.
        for idx in 1..=net.cores[1].commit() {
            assert_eq!(
                net.cores[0].entry(idx).map(|e| &e.cmd),
                net.cores[1].entry(idx).map(|e| &e.cmd),
                "divergence at {idx}"
            );
        }
        // The minority leader's uncommitted "lost" entry is gone everywhere.
        for i in 0..3 {
            for idx in 1..=net.cores[i].log_len() {
                if let Some(e) = net.cores[i].entry(idx) {
                    if let Op::Put { key, .. } = &e.cmd.op {
                        assert_ne!(key.as_str(), "lost", "node {i} kept a lost write");
                    }
                }
            }
        }
    }

    #[test]
    fn candidate_with_stale_log_cannot_win() {
        let mut net = Net::new(3);
        net.timeout(0);
        net.settle();
        net.propose(0, put_op("a")).expect("leader");
        net.settle();
        net.heartbeat(0);
        net.settle();
        // Node 2 misses everything from now on.
        net.blocked[2] = true;
        net.propose(0, put_op("b")).expect("leader");
        net.settle();
        net.heartbeat(0);
        net.settle();
        // Node 2 comes back and immediately campaigns; 0 and 1 have longer logs.
        net.blocked[2] = false;
        // Force node 0 and 1 to be receptive (candidate term will be higher).
        net.timeout(2);
        net.settle();
        assert!(!net.cores[2].is_leader(), "stale log must not win");
        // The cluster recovers: a fresh election by an up-to-date node wins.
        net.timeout(0);
        net.settle();
        assert!(net.cores[0].is_leader() || net.cores[1].is_leader());
    }

    #[test]
    fn restart_preserves_log_and_reapplies_on_commit() {
        let mut net = Net::new(3);
        net.timeout(0);
        net.settle();
        net.propose(0, put_op("a")).expect("leader");
        net.settle();
        net.heartbeat(0);
        net.settle();
        let log_before = net.cores[1].log_len();
        assert_eq!(net.cores[1].commit(), 2);

        // Restart follower 1: volatile state resets, log survives.
        net.cores[1].restart();
        net.applied[1].clear();
        assert_eq!(net.cores[1].commit(), 0);
        assert_eq!(net.cores[1].log_len(), log_before);

        // Leader heartbeat re-advances its commit; applies re-fire from 1.
        net.heartbeat(0);
        net.settle();
        assert_eq!(net.cores[1].commit(), 2);
        let indices: Vec<_> = net.applied[1].iter().map(|(x, _)| *x).collect();
        assert_eq!(indices, vec![1, 2]);
    }

    #[test]
    fn five_node_cluster_commits_with_two_failures() {
        let mut net = Net::new(5);
        net.timeout(3);
        net.settle();
        assert_eq!(net.leader(), Some(3));
        net.blocked[0] = true;
        net.blocked[1] = true;
        net.propose(3, put_op("x")).expect("leader");
        net.settle();
        net.heartbeat(3);
        net.settle();
        assert_eq!(net.cores[3].commit(), 2, "3 of 5 is a majority");
        for i in [2, 4] {
            assert_eq!(net.cores[i].commit(), 2, "node {i}");
        }
    }

    #[test]
    fn votes_are_single_use_per_term() {
        let mut core = RaftCore::new(0, 3);
        let mut eff = Vec::new();
        // Two candidates ask for term 1; only the first gets the vote.
        core.on_message(
            1,
            RaftMsg::RequestVote {
                term: 1,
                last_log_index: 0,
                last_log_term: 0,
            },
            &mut eff,
        );
        core.on_message(
            2,
            RaftMsg::RequestVote {
                term: 1,
                last_log_index: 0,
                last_log_term: 0,
            },
            &mut eff,
        );
        let grants: Vec<bool> = eff
            .iter()
            .filter_map(|e| match e {
                Effect::Send(_, RaftMsg::VoteResp { granted, .. }) => Some(*granted),
                _ => None,
            })
            .collect();
        assert_eq!(grants, vec![true, false]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_node_id_panics() {
        RaftCore::new(3, 3);
    }
}
