//! # ph-store — a strongly consistent replicated MVCC store (etcd analog)
//!
//! The centralized data store at the heart of the infrastructures the paper
//! studies (§1, §3): a small replicated cluster that records the *history*
//! `H` of all committed changes and materializes the *state* `S`. Components
//! above it observe `(H, S)` only through this crate's interfaces — quorum
//! reads, serializable (possibly stale) local reads, and watch streams — and
//! therefore operate on *partial histories* `(H′, S′)`.
//!
//! Built from scratch on [`ph_sim`]:
//!
//! * [`raft`] — a compact Raft core (elections, log replication, commit
//!   index) as a pure, effect-returning state machine, independently
//!   testable without the simulator;
//! * [`mvcc`] — the revisioned key-value state machine: every committed
//!   write gets a global [`kv::Revision`]; the retained event log *is* the
//!   history `H`, and [`mvcc::MvccStore::compact`] implements the rolling
//!   window that makes old events unobservable (§4.2.3);
//! * [`node`] — the store server actor: Raft + MVCC + watch streams +
//!   leases + auto-compaction;
//! * [`watch`] — per-node watch registries; watches are served from each
//!   node's *applied* state, so follower-served streams lag exactly like
//!   etcd's;
//! * [`client`] — an embeddable, retrying client state machine used by every
//!   upper-layer component (apiservers, controllers) to talk to the store;
//! * [`cluster`] — topology helper to spawn an n-node store cluster.

//! ## The state machine in isolation
//!
//! ```
//! use ph_store::mvcc::MvccStore;
//! use ph_store::msgs::{Expect, Op};
//! use ph_store::{Key, Revision, Value};
//!
//! let mut s = MvccStore::new();
//! s.apply(&Op::Put {
//!     key: Key::new("pods/p1"),
//!     value: Value::from_static(b"running"),
//!     lease: None,
//!     expect: Expect::NotExists,
//! }).0.unwrap();
//! assert_eq!(s.revision(), Revision(1));
//! // The retained event log IS the history H:
//! assert_eq!(s.events_since(Revision::ZERO).unwrap().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod client;
pub mod cluster;
pub mod kv;
pub mod msgs;
pub mod mvcc;
pub mod node;
pub mod raft;
pub mod watch;

pub use client::{Completion, StoreClient, StoreClientConfig};
pub use cluster::{spawn_store_cluster, StoreCluster};
pub use kv::{Key, KeyValue, KvEvent, LeaseId, Revision, Value};
pub use msgs::{Op, OpError, OpResult, ReadLevel};
pub use mvcc::MvccStore;
pub use node::{StoreNode, StoreNodeConfig};
