//! An embeddable, retrying store client.
//!
//! [`StoreClient`] is a state machine that upper-layer actors (apiservers,
//! controllers, schedulers) embed. It tracks outstanding requests, follows
//! leader hints, retries on timeout, and maintains watch streams with
//! liveness detection and resume-from-revision reconnection — the same
//! machinery etcd client libraries provide, and the machinery whose
//! weaknesses (resuming on a *different, possibly stale* node) enable
//! time-travel bugs (§4.2.2).
//!
//! The owning actor must:
//! 1. forward incoming messages to [`StoreClient::on_message`];
//! 2. call [`StoreClient::tick`] from a periodic timer (retries, liveness);
//! 3. consume the returned [`Completion`]s.

use std::collections::BTreeMap;

use ph_sim::{ActorId, AnyMsg, Ctx, Duration, SimTime};

use crate::kv::{Key, KvEvent, Revision, Value};
use crate::msgs::{
    ClientRequest, ClientResponse, Expect, Op, OpError, OpResult, ReadLevel, RequestError,
    WatchCancelReq, WatchCancelled, WatchCreate, WatchNotify, WatchProgress,
};

/// Client tuning.
#[derive(Debug, Clone)]
pub struct StoreClientConfig {
    /// Actor ids of the store cluster members (shared — every client and
    /// per-trial config cloned from a cluster bumps a refcount instead of
    /// copying the id list).
    pub nodes: std::rc::Rc<[ActorId]>,
    /// Resend an unanswered request after this long.
    pub request_timeout: Duration,
    /// Declare a watch stream dead after this long without events or
    /// progress, and re-create it (possibly on a different node).
    pub watch_timeout: Duration,
    /// Preferred node index for serializable reads and watches (`None`
    /// round-robins). Components pin this to "their" endpoint, like real
    /// deployments pin an apiserver to a local etcd member.
    pub affinity: Option<usize>,
}

impl StoreClientConfig {
    /// Sensible defaults for a given member list (accepts a `Vec`, a
    /// shared `Rc<[ActorId]>` handle, or anything else slice-convertible).
    pub fn new(nodes: impl Into<std::rc::Rc<[ActorId]>>) -> StoreClientConfig {
        StoreClientConfig {
            nodes: nodes.into(),
            request_timeout: Duration::millis(500),
            watch_timeout: Duration::millis(1000),
            affinity: None,
        }
    }
}

/// A finished interaction, surfaced to the owning component.
#[derive(Debug, Clone)]
pub enum Completion {
    /// A submitted operation finished (possibly after retries).
    OpDone {
        /// The request id returned by the submit call.
        req: u64,
        /// Outcome (deterministic state-machine errors only; transport
        /// failures are retried internally and never surface).
        result: Result<OpResult, OpError>,
    },
    /// New events on a watch stream, in revision order.
    WatchEvents {
        /// The watch id.
        watch: u64,
        /// The events (shared, not deep-copied, along the whole
        /// store → client → cache path).
        events: Vec<std::rc::Rc<KvEvent>>,
        /// Resume point after this batch.
        revision: Revision,
    },
    /// The watch was cancelled because its resume revision was compacted
    /// away: the owner's view has an unrecoverable gap and it must re-list
    /// (§4.2.3).
    WatchCompacted {
        /// The watch id.
        watch: u64,
    },
}

#[derive(Debug, Clone)]
struct Pending {
    op: Op,
    level: ReadLevel,
    target: ActorId,
    deadline: SimTime,
    attempts: u32,
}

/// State of one client-side watch.
#[derive(Debug, Clone)]
pub struct WatchState {
    /// Prefix being watched.
    pub prefix: String,
    /// Deliver events after this revision on (re)connect.
    pub resume: Revision,
    /// Node currently serving the stream.
    pub node: ActorId,
    last_seen: SimTime,
    /// Next expected stream sequence number; a gap ⇒ the network lost a
    /// stream message ⇒ reconnect from `resume` instead of silently
    /// skipping history.
    expect_seq: u64,
}

/// The client state machine. See the module docs for the embedding contract.
#[derive(Debug)]
pub struct StoreClient {
    cfg: StoreClientConfig,
    leader_hint: Option<ActorId>,
    next_req: u64,
    next_watch: u64,
    pending: BTreeMap<u64, Pending>,
    watches: BTreeMap<u64, WatchState>,
    rr: usize,
}

impl StoreClient {
    /// Creates a client for the given cluster.
    ///
    /// # Panics
    ///
    /// Panics if the member list is empty or the affinity index is out of
    /// range.
    pub fn new(cfg: StoreClientConfig) -> StoreClient {
        assert!(
            !cfg.nodes.is_empty(),
            "store client needs at least one node"
        );
        if let Some(a) = cfg.affinity {
            assert!(a < cfg.nodes.len(), "affinity index out of range");
        }
        StoreClient {
            cfg,
            leader_hint: None,
            next_req: 0,
            next_watch: 0,
            pending: BTreeMap::new(),
            watches: BTreeMap::new(),
            rr: 0,
        }
    }

    /// Number of requests awaiting a response.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// State of one watch, if it exists.
    pub fn watch_state(&self, watch: u64) -> Option<&WatchState> {
        self.watches.get(&watch)
    }

    fn rotate(&mut self) -> ActorId {
        let node = self.cfg.nodes[self.rr % self.cfg.nodes.len()];
        self.rr += 1;
        node
    }

    fn affinity_node(&mut self) -> ActorId {
        match self.cfg.affinity {
            Some(i) => self.cfg.nodes[i],
            None => self.rotate(),
        }
    }

    fn write_target(&mut self) -> ActorId {
        self.leader_hint.unwrap_or_else(|| self.rotate())
    }

    // -----------------------------------------------------------------
    // Submitting operations
    // -----------------------------------------------------------------

    /// Submits an operation; the result arrives later as
    /// [`Completion::OpDone`] carrying the returned request id.
    pub fn submit(&mut self, op: Op, level: ReadLevel, ctx: &mut Ctx) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        let target = match (&op, level) {
            (Op::Read { .. }, ReadLevel::Serializable) => self.affinity_node(),
            _ => self.write_target(),
        };
        ctx.send(
            target,
            ClientRequest {
                req,
                op: op.clone(),
                level,
            },
        );
        self.pending.insert(
            req,
            Pending {
                op,
                level,
                target,
                deadline: ctx.now() + self.cfg.request_timeout,
                attempts: 1,
            },
        );
        req
    }

    /// Unconditional put.
    pub fn put(&mut self, key: impl Into<Key>, value: Value, ctx: &mut Ctx) -> u64 {
        self.submit(
            Op::Put {
                key: key.into(),
                value,
                lease: None,
                expect: Expect::Any,
            },
            ReadLevel::Linearizable,
            ctx,
        )
    }

    /// Compare-and-swap put.
    pub fn cas_put(
        &mut self,
        key: impl Into<Key>,
        value: Value,
        expect: Expect,
        ctx: &mut Ctx,
    ) -> u64 {
        self.submit(
            Op::Put {
                key: key.into(),
                value,
                lease: None,
                expect,
            },
            ReadLevel::Linearizable,
            ctx,
        )
    }

    /// Delete (optionally guarded).
    pub fn delete(&mut self, key: impl Into<Key>, expect: Expect, ctx: &mut Ctx) -> u64 {
        self.submit(
            Op::Delete {
                key: key.into(),
                expect,
            },
            ReadLevel::Linearizable,
            ctx,
        )
    }

    /// Prefix read at the chosen consistency level.
    pub fn read(&mut self, prefix: impl Into<String>, level: ReadLevel, ctx: &mut Ctx) -> u64 {
        self.submit(
            Op::Read {
                prefix: prefix.into(),
            },
            level,
            ctx,
        )
    }

    // -----------------------------------------------------------------
    // Watches
    // -----------------------------------------------------------------

    /// Opens a watch on `prefix` for events strictly after `after`
    /// (0 = the node's full retained history). Events arrive as
    /// [`Completion::WatchEvents`].
    pub fn watch(&mut self, prefix: impl Into<String>, after: Revision, ctx: &mut Ctx) -> u64 {
        let watch = self.next_watch;
        self.next_watch += 1;
        let node = self.affinity_node();
        let prefix = prefix.into();
        ctx.send(
            node,
            WatchCreate {
                watch,
                prefix: prefix.clone(),
                after,
            },
        );
        self.watches.insert(
            watch,
            WatchState {
                prefix,
                resume: after,
                node,
                last_seen: ctx.now(),
                expect_seq: 0,
            },
        );
        watch
    }

    /// Cancels a watch.
    pub fn cancel_watch(&mut self, watch: u64, ctx: &mut Ctx) {
        if let Some(st) = self.watches.remove(&watch) {
            ctx.send(st.node, WatchCancelReq { watch });
        }
    }

    // -----------------------------------------------------------------
    // Message plumbing
    // -----------------------------------------------------------------

    /// Offers an incoming message to the client. Returns `true` if the
    /// message belonged to this client (completions, if any, are appended
    /// to `out`).
    pub fn on_message(
        &mut self,
        from: ActorId,
        msg: &AnyMsg,
        ctx: &mut Ctx,
        out: &mut Vec<Completion>,
    ) -> bool {
        if let Some(resp) = msg.downcast_ref::<ClientResponse>() {
            self.on_response(from, resp, ctx, out);
            return true;
        }
        if let Some(n) = msg.downcast_ref::<WatchNotify>() {
            match self.stream_check(n.watch, from, n.stream_seq) {
                StreamCheck::Ok => {
                    let st = self.watches.get_mut(&n.watch).expect("checked");
                    st.resume = st.resume.max(n.revision);
                    st.last_seen = ctx.now();
                    out.push(Completion::WatchEvents {
                        watch: n.watch,
                        events: n.events.clone(),
                        revision: n.revision,
                    });
                }
                StreamCheck::Broken => self.reconnect_watch(n.watch, ctx),
                StreamCheck::Ignore => {}
            }
            return true;
        }
        if let Some(p) = msg.downcast_ref::<WatchProgress>() {
            match self.stream_check(p.watch, from, p.stream_seq) {
                StreamCheck::Ok => {
                    let st = self.watches.get_mut(&p.watch).expect("checked");
                    st.resume = st.resume.max(p.revision);
                    st.last_seen = ctx.now();
                }
                StreamCheck::Broken => self.reconnect_watch(p.watch, ctx),
                StreamCheck::Ignore => {}
            }
            return true;
        }
        if let Some(c) = msg.downcast_ref::<WatchCancelled>() {
            if self.watches.remove(&c.watch).is_some() {
                out.push(Completion::WatchCompacted { watch: c.watch });
            }
            return true;
        }
        false
    }

    fn on_response(
        &mut self,
        from: ActorId,
        resp: &ClientResponse,
        ctx: &mut Ctx,
        out: &mut Vec<Completion>,
    ) {
        let Some(p) = self.pending.get(&resp.req) else {
            return; // late duplicate; already resolved
        };
        match &resp.result {
            Ok(r) => {
                self.pending.remove(&resp.req);
                out.push(Completion::OpDone {
                    req: resp.req,
                    result: Ok(r.clone()),
                });
            }
            Err(RequestError::Op(e)) => {
                self.pending.remove(&resp.req);
                out.push(Completion::OpDone {
                    req: resp.req,
                    result: Err(e.clone()),
                });
            }
            Err(RequestError::NotLeader { hint }) => {
                if from != p.target {
                    return; // stale response from an earlier attempt
                }
                self.leader_hint = *hint;
                self.resend(resp.req, ctx);
            }
            Err(RequestError::Unavailable) => {
                if from != p.target {
                    return;
                }
                self.leader_hint = None;
                self.resend(resp.req, ctx);
            }
        }
    }

    /// Validates a stream message's sequence number.
    fn stream_check(&mut self, watch: u64, from: ActorId, seq: u64) -> StreamCheck {
        let Some(st) = self.watches.get_mut(&watch) else {
            return StreamCheck::Ignore;
        };
        if st.node != from {
            return StreamCheck::Ignore; // stale registration elsewhere
        }
        use std::cmp::Ordering;
        match seq.cmp(&st.expect_seq) {
            Ordering::Equal => {
                st.expect_seq += 1;
                StreamCheck::Ok
            }
            Ordering::Less => StreamCheck::Ignore, // pre-reconnect leftover
            Ordering::Greater => StreamCheck::Broken, // a message was lost
        }
    }

    /// Tears a broken stream down and re-creates it from the last
    /// contiguously received revision.
    fn reconnect_watch(&mut self, watch: u64, ctx: &mut Ctx) {
        let Some(st) = self.watches.get(&watch).cloned() else {
            return;
        };
        ctx.send(st.node, WatchCancelReq { watch });
        let node = self.affinity_node();
        ctx.send(
            node,
            WatchCreate {
                watch,
                prefix: st.prefix.clone(),
                after: st.resume,
            },
        );
        let entry = self.watches.get_mut(&watch).expect("exists");
        entry.node = node;
        entry.last_seen = ctx.now();
        entry.expect_seq = 0;
    }

    fn resend(&mut self, req: u64, ctx: &mut Ctx) {
        let timeout = self.cfg.request_timeout;
        let Some(p) = self.pending.get(&req) else {
            return;
        };
        let (op, level, old_target) = (p.op.clone(), p.level, p.target);
        let target = match (&op, level) {
            (Op::Read { .. }, ReadLevel::Serializable) => self.affinity_node(),
            _ => {
                // Avoid immediately re-asking the node that just refused.
                let mut t = self.write_target();
                if t == old_target {
                    t = self.rotate();
                }
                t
            }
        };
        ctx.send(target, ClientRequest { req, op, level });
        let p = self.pending.get_mut(&req).expect("checked");
        p.target = target;
        p.deadline = ctx.now() + timeout;
        p.attempts += 1;
    }

    /// Periodic maintenance: retries timed-out requests and re-creates dead
    /// watch streams (resuming after the last seen revision, possibly on a
    /// different — and possibly *less caught-up* — node).
    pub fn tick(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        let timed_out: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&r, _)| r)
            .collect();
        for req in timed_out {
            self.leader_hint = None;
            self.resend(req, ctx);
        }
        let dead: Vec<u64> = self
            .watches
            .iter()
            .filter(|(_, st)| now.since(st.last_seen) > self.cfg.watch_timeout)
            .map(|(&w, _)| w)
            .collect();
        for watch in dead {
            self.reconnect_watch(watch, ctx);
        }
    }
}

/// Outcome of a stream sequence check.
enum StreamCheck {
    /// In order: process.
    Ok,
    /// A gap: the stream lost a message; reconnect.
    Broken,
    /// Duplicate/stale: drop silently.
    Ignore,
}

/// A minimal actor wrapping a [`StoreClient`], used by tests, benches and
/// examples that just need "a client in the world": submit via
/// [`ph_sim::World::invoke`], then inspect [`BasicClient::completions`].
#[derive(Debug)]
pub struct BasicClient {
    /// The embedded client.
    pub client: StoreClient,
    /// Everything that has completed, in order.
    pub completions: Vec<Completion>,
    tick_every: Duration,
}

impl BasicClient {
    /// Wraps a client; `tick_every` controls retry/liveness granularity.
    pub fn new(client: StoreClient, tick_every: Duration) -> BasicClient {
        BasicClient {
            client,
            completions: Vec::new(),
            tick_every,
        }
    }

    /// The result of request `req`, if it has completed.
    pub fn result_of(&self, req: u64) -> Option<&Result<OpResult, OpError>> {
        self.completions.iter().find_map(|c| match c {
            Completion::OpDone { req: r, result } if *r == req => Some(result),
            _ => None,
        })
    }

    /// All watch event batches received so far, flattened.
    pub fn watch_events(&self, watch: u64) -> Vec<std::rc::Rc<KvEvent>> {
        self.completions
            .iter()
            .filter_map(|c| match c {
                Completion::WatchEvents {
                    watch: w, events, ..
                } if *w == watch => Some(events.clone()),
                _ => None,
            })
            .flatten()
            .collect()
    }
}

impl ph_sim::Actor for BasicClient {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(self.tick_every, 0);
    }

    fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
        let mut out = Vec::new();
        self.client.on_message(from, &msg, ctx, &mut out);
        self.completions.extend(out);
    }

    fn on_timer(&mut self, _t: ph_sim::TimerId, _tag: u64, ctx: &mut Ctx) {
        self.client.tick(ctx);
        ctx.set_timer(self.tick_every, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_cluster_panics() {
        StoreClient::new(StoreClientConfig::new(vec![]));
    }

    #[test]
    #[should_panic(expected = "affinity index")]
    fn bad_affinity_panics() {
        let mut cfg = StoreClientConfig::new(vec![ActorId(0)]);
        cfg.affinity = Some(3);
        StoreClient::new(cfg);
    }

    #[test]
    fn request_ids_are_unique_and_monotonic() {
        // Pure check of id assignment without a context: ids come from a
        // counter, not randomness.
        let c = StoreClient::new(StoreClientConfig::new(vec![ActorId(0)]));
        assert_eq!(c.next_req, 0);
        assert_eq!(c.pending_len(), 0);
    }
}
