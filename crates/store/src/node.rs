//! The store server actor: Raft + MVCC + watches + leases + compaction.
//!
//! Each [`StoreNode`] wires a [`RaftCore`] to the simulator's timers and
//! network, applies committed commands to its local [`MvccStore`], feeds its
//! watchers from that *applied* state, and answers clients. Followers serve
//! serializable reads and watch streams from their own (possibly lagging)
//! state — faithfully reproducing the observation interfaces whose partial
//! histories the paper studies.

use std::collections::BTreeMap;

use ph_sim::{Actor, ActorId, AnyMsg, Ctx, Duration, SimTime, TimerId};

use crate::kv::LeaseId;
use crate::msgs::{
    ClientRequest, ClientResponse, Op, OpResult, ReadLevel, RequestError, WatchCancelReq,
    WatchCancelled, WatchCreate, WatchNotify, WatchProgress,
};
use crate::mvcc::MvccStore;
use crate::raft::{Command, Effect, NodeIdx, Origin, RaftCore, RaftMsg};
use crate::watch::WatchRegistry;

/// A Raft message on the wire between store nodes.
#[derive(Debug, Clone)]
pub struct RaftWire(pub RaftMsg);

/// Automatic history compaction policy (the §4.2.3 rolling window).
#[derive(Debug, Clone, Copy)]
pub struct AutoCompact {
    /// Keep at least this many trailing revisions.
    pub keep: u64,
    /// How often the leader proposes a compaction.
    pub interval: Duration,
}

/// Tuning for a store node.
#[derive(Debug, Clone, Copy)]
pub struct StoreNodeConfig {
    /// Leader heartbeat / replication interval.
    pub heartbeat: Duration,
    /// Election timeout lower bound (randomized per arm).
    pub election_min: Duration,
    /// Election timeout upper bound.
    pub election_max: Duration,
    /// How often idle watchers receive a progress notification.
    pub progress_interval: Duration,
    /// How often the leader scans for expired leases.
    pub lease_check_interval: Duration,
    /// History compaction policy (`None` retains everything).
    pub autocompact: Option<AutoCompact>,
    /// Service time consumed per client read served by this node (models
    /// the store's finite capacity — the §4.1 bottleneck; zero = infinite
    /// capacity).
    pub read_service: Duration,
}

impl Default for StoreNodeConfig {
    fn default() -> StoreNodeConfig {
        StoreNodeConfig {
            heartbeat: Duration::millis(20),
            election_min: Duration::millis(100),
            election_max: Duration::millis(200),
            progress_interval: Duration::millis(250),
            lease_check_interval: Duration::millis(50),
            autocompact: None,
            read_service: Duration::ZERO,
        }
    }
}

const TAG_ELECTION: u64 = 1;
const TAG_HEARTBEAT: u64 = 2;
const TAG_PROGRESS: u64 = 3;
const TAG_LEASE: u64 = 4;
const TAG_COMPACT: u64 = 5;
/// Timer tags at or above this are deferred-reply slots.
const TAG_DEFER_BASE: u64 = 1 << 16;

/// One member of the replicated store.
#[derive(Debug)]
pub struct StoreNode {
    cfg: StoreNodeConfig,
    idx: NodeIdx,
    /// Actor ids of all cluster members; `peers[idx]` is this node.
    peers: Vec<ActorId>,
    core: RaftCore,
    mvcc: MvccStore,
    watches: WatchRegistry,
    election_timer: Option<TimerId>,
    /// Leader-side lease expiry deadlines.
    lease_deadlines: BTreeMap<LeaseId, SimTime>,
    /// Capacity model: this node is busy serving reads until this instant.
    busy_until: SimTime,
    /// Deferred read replies awaiting their service slot, keyed by timer tag.
    deferred: BTreeMap<u64, (ActorId, ClientResponse)>,
    next_defer_tag: u64,
}

impl StoreNode {
    /// Creates node `idx` of a cluster whose members (in index order) will
    /// have the given actor ids.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn new(cfg: StoreNodeConfig, idx: NodeIdx, peers: Vec<ActorId>) -> StoreNode {
        assert!(idx < peers.len(), "node index out of range");
        let n = peers.len();
        StoreNode {
            cfg,
            idx,
            peers,
            core: RaftCore::new(idx, n),
            mvcc: MvccStore::new(),
            watches: WatchRegistry::new(),
            election_timer: None,
            lease_deadlines: BTreeMap::new(),
            busy_until: SimTime::ZERO,
            deferred: BTreeMap::new(),
            next_defer_tag: TAG_DEFER_BASE,
        }
    }

    /// `true` if this node currently leads.
    pub fn is_leader(&self) -> bool {
        self.core.is_leader()
    }

    /// This node's applied state machine (test/diagnostic access; real
    /// clients go through messages).
    pub fn mvcc(&self) -> &MvccStore {
        &self.mvcc
    }

    /// The Raft core (diagnostic access).
    pub fn raft(&self) -> &RaftCore {
        &self.core
    }

    /// Sends a read reply, charging the configured service time against
    /// this node's capacity (replies queue behind each other when the node
    /// is saturated).
    fn reply_read(&mut self, to: ActorId, resp: ClientResponse, ctx: &mut Ctx) {
        if self.cfg.read_service == Duration::ZERO {
            ctx.send(to, resp);
            return;
        }
        let now = ctx.now();
        let start = self.busy_until.max(now);
        self.busy_until = start + self.cfg.read_service;
        let tag = self.next_defer_tag;
        self.next_defer_tag += 1;
        self.deferred.insert(tag, (to, resp));
        ctx.set_timer(self.busy_until - now, tag);
    }

    fn arm_election(&mut self, ctx: &mut Ctx) {
        if let Some(t) = self.election_timer.take() {
            ctx.cancel_timer(t);
        }
        let span = ctx.rng().range(
            self.cfg.election_min.as_nanos(),
            self.cfg
                .election_max
                .as_nanos()
                .max(self.cfg.election_min.as_nanos() + 1),
        );
        self.election_timer = Some(ctx.set_timer(Duration::nanos(span), TAG_ELECTION));
    }

    fn handle_effects(&mut self, effects: Vec<Effect>, ctx: &mut Ctx) {
        for effect in effects {
            match effect {
                Effect::Send(to, msg) => ctx.send(self.peers[to], RaftWire(msg)),
                Effect::Apply { index: _, entry } => self.apply_committed(entry.cmd, ctx),
                Effect::ResetElectionTimer => self.arm_election(ctx),
                Effect::BecameLeader => {
                    ctx.annotate("store.leader", format!("term={}", self.core.term()));
                    ctx.set_timer(self.cfg.heartbeat, TAG_HEARTBEAT);
                    // Fresh leader: every known lease gets a full TTL grace.
                    self.lease_deadlines.clear();
                    for id in self.mvcc.lease_ids() {
                        let ttl = self.mvcc.lease(id).expect("listed").ttl_ms;
                        self.lease_deadlines
                            .insert(id, ctx.now() + Duration::millis(ttl));
                    }
                }
                Effect::SteppedDown => {
                    self.lease_deadlines.clear();
                    self.arm_election(ctx);
                }
            }
        }
    }

    fn apply_committed(&mut self, cmd: Command, ctx: &mut Ctx) {
        let (result, events) = self.mvcc.apply(&cmd.op);
        // Leader-side lease timing.
        if self.core.is_leader() {
            match (&cmd.op, &result) {
                (Op::LeaseGrant { id, ttl_ms }, Ok(_)) => {
                    self.lease_deadlines
                        .insert(*id, ctx.now() + Duration::millis(*ttl_ms));
                }
                (Op::LeaseKeepAlive { id }, Ok(_)) => {
                    if let Some(info) = self.mvcc.lease(*id) {
                        let ttl = info.ttl_ms;
                        self.lease_deadlines
                            .insert(*id, ctx.now() + Duration::millis(ttl));
                    }
                }
                (Op::LeaseRevoke { id }, _) => {
                    self.lease_deadlines.remove(id);
                }
                _ => {}
            }
        }
        // Feed watchers from the applied state.
        if !events.is_empty() {
            for (w, evs, revision) in self.watches.route(&events, self.mvcc.revision()) {
                ctx.send(
                    w.client,
                    WatchNotify {
                        watch: w.watch,
                        stream_seq: w.next_seq,
                        events: evs,
                        revision,
                    },
                );
            }
        }
        // Answer the client iff this node received the request. Reads are
        // charged against the node's service capacity; writes reply
        // immediately (their cost is the consensus round itself).
        if let Some(Origin { node, client, req }) = cmd.origin {
            if node == self.idx {
                let resp = ClientResponse {
                    req,
                    result: result.map_err(RequestError::Op),
                };
                if matches!(cmd.op, Op::Read { .. }) {
                    self.reply_read(client, resp, ctx);
                } else {
                    ctx.send(client, resp);
                }
            }
        }
    }

    fn propose_internal(&mut self, op: Op, ctx: &mut Ctx) {
        let mut effects = Vec::new();
        let _ = self.core.propose(Command::internal(op), &mut effects);
        self.handle_effects(effects, ctx);
    }

    fn on_client_request(&mut self, from: ActorId, r: ClientRequest, ctx: &mut Ctx) {
        // Serializable reads answer straight from local applied state —
        // possibly stale, by design.
        if let Op::Read { prefix } = &r.op {
            if r.level == ReadLevel::Serializable {
                let (kvs, revision) = self.mvcc.range(prefix);
                self.reply_read(
                    from,
                    ClientResponse {
                        req: r.req,
                        result: Ok(OpResult::Read { kvs, revision }),
                    },
                    ctx,
                );
                return;
            }
        }
        if !self.core.is_leader() {
            let hint = self.core.leader_hint().map(|i| self.peers[i]);
            ctx.send(
                from,
                ClientResponse {
                    req: r.req,
                    result: Err(RequestError::NotLeader { hint }),
                },
            );
            return;
        }
        let origin = Origin {
            node: self.idx,
            client: from,
            req: r.req,
        };
        let mut effects = Vec::new();
        match self.core.propose(
            Command {
                op: r.op,
                origin: Some(origin),
            },
            &mut effects,
        ) {
            Ok(_) => self.handle_effects(effects, ctx),
            Err(nl) => {
                let hint = nl.hint.map(|i| self.peers[i]);
                ctx.send(
                    from,
                    ClientResponse {
                        req: r.req,
                        result: Err(RequestError::NotLeader { hint }),
                    },
                );
            }
        }
    }

    fn on_watch_create(&mut self, from: ActorId, w: WatchCreate, ctx: &mut Ctx) {
        // Revision 0 is a genuine resume point (the dawn of history); if
        // that history has been compacted away the watch is refused rather
        // than silently skipped forward.
        match self.mvcc.events_since(w.after) {
            Err(e) => {
                ctx.send(
                    from,
                    WatchCancelled {
                        watch: w.watch,
                        reason: e,
                    },
                );
            }
            Ok(backlog) => {
                self.watches.register(from, w.watch, w.prefix.clone());
                let matching: Vec<_> = backlog
                    .into_iter()
                    .filter(|e| e.key().has_prefix(&w.prefix))
                    .collect();
                if !matching.is_empty() {
                    let seq = self
                        .watches
                        .next_seq(from, w.watch)
                        .expect("just registered");
                    ctx.send(
                        from,
                        WatchNotify {
                            watch: w.watch,
                            stream_seq: seq,
                            events: matching,
                            revision: self.mvcc.revision(),
                        },
                    );
                }
            }
        }
    }
}

impl Actor for StoreNode {
    fn on_start(&mut self, ctx: &mut Ctx) {
        self.arm_election(ctx);
        ctx.set_timer(self.cfg.progress_interval, TAG_PROGRESS);
        ctx.set_timer(self.cfg.lease_check_interval, TAG_LEASE);
        if let Some(ac) = self.cfg.autocompact {
            ctx.set_timer(ac.interval, TAG_COMPACT);
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx) {
        // Persistent: the Raft log/term/vote inside `core`. Volatile: the
        // applied state machine, watch registrations and lease timing — all
        // rebuilt (the MVCC by re-applying the log as the commit index
        // re-advances).
        self.core.restart();
        self.mvcc = MvccStore::new();
        self.watches.clear();
        self.lease_deadlines.clear();
        self.election_timer = None;
        self.busy_until = SimTime::ZERO;
        self.deferred.clear();
        self.next_defer_tag = TAG_DEFER_BASE;
        self.on_start(ctx);
    }

    fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
        if let Some(RaftWire(raft_msg)) = msg.downcast_ref::<RaftWire>() {
            let Some(from_idx) = self.peers.iter().position(|&p| p == from) else {
                return; // not a cluster member; ignore
            };
            let mut effects = Vec::new();
            self.core
                .on_message(from_idx, raft_msg.clone(), &mut effects);
            self.handle_effects(effects, ctx);
            return;
        }
        if let Some(req) = msg.downcast_ref::<ClientRequest>() {
            self.on_client_request(from, req.clone(), ctx);
            return;
        }
        if let Some(w) = msg.downcast_ref::<WatchCreate>() {
            self.on_watch_create(from, w.clone(), ctx);
            return;
        }
        if let Some(c) = msg.downcast_ref::<WatchCancelReq>() {
            self.watches.cancel(from, c.watch);
        }
    }

    fn on_timer(&mut self, timer: TimerId, tag: u64, ctx: &mut Ctx) {
        if tag >= TAG_DEFER_BASE {
            if let Some((to, resp)) = self.deferred.remove(&tag) {
                ctx.send(to, resp);
            }
            return;
        }
        match tag {
            TAG_ELECTION if Some(timer) == self.election_timer => {
                self.election_timer = None;
                let mut effects = Vec::new();
                self.core.on_election_timeout(&mut effects);
                self.handle_effects(effects, ctx);
            }
            TAG_HEARTBEAT if self.core.is_leader() => {
                let mut effects = Vec::new();
                self.core.on_heartbeat(&mut effects);
                self.handle_effects(effects, ctx);
                ctx.set_timer(self.cfg.heartbeat, TAG_HEARTBEAT);
            }
            TAG_PROGRESS => {
                let revision = self.mvcc.revision();
                for w in self.watches.watchers().cloned().collect::<Vec<_>>() {
                    let seq = self
                        .watches
                        .next_seq(w.client, w.watch)
                        .expect("listed watcher");
                    ctx.send(
                        w.client,
                        WatchProgress {
                            watch: w.watch,
                            stream_seq: seq,
                            revision,
                        },
                    );
                }
                ctx.set_timer(self.cfg.progress_interval, TAG_PROGRESS);
            }
            TAG_LEASE => {
                if self.core.is_leader() {
                    let expired: Vec<LeaseId> = self
                        .lease_deadlines
                        .iter()
                        .filter(|(_, &dl)| dl <= ctx.now())
                        .map(|(&id, _)| id)
                        .collect();
                    for id in expired {
                        self.lease_deadlines.remove(&id);
                        self.propose_internal(Op::LeaseRevoke { id }, ctx);
                    }
                }
                ctx.set_timer(self.cfg.lease_check_interval, TAG_LEASE);
            }
            TAG_COMPACT => {
                if let Some(ac) = self.cfg.autocompact {
                    if self.core.is_leader() {
                        let rev = self.mvcc.revision().0;
                        if rev > ac.keep {
                            let at = crate::kv::Revision(rev - ac.keep);
                            if at > self.mvcc.compacted() {
                                self.propose_internal(Op::Compact { at }, ctx);
                            }
                        }
                    }
                    ctx.set_timer(ac.interval, TAG_COMPACT);
                }
            }
            _ => {}
        }
    }
}
