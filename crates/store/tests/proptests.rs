//! Randomized-but-deterministic tests on the store's MVCC state machine and
//! the Raft core's safety invariants. Cases come from a fixed-seed
//! [`SimRng`], so the suite is reproducible with no third-party framework.

use ph_sim::SimRng;
use ph_store::kv::{Key, LeaseId, Revision, Value};
use ph_store::msgs::{Expect, Op};
use ph_store::mvcc::MvccStore;
use ph_store::raft::{Command, Effect, RaftCore, RaftMsg};

/// Draws an arbitrary op over a small key universe.
fn gen_op(rng: &mut SimRng) -> Op {
    match rng.below(6) {
        0 => Op::Put {
            key: Key::new(format!("k{}", rng.below(8))),
            value: Value::copy_from_slice(&[rng.below(256) as u8]),
            lease: None,
            expect: Expect::Any,
        },
        1 => Op::Delete {
            key: Key::new(format!("k{}", rng.below(8))),
            expect: Expect::Any,
        },
        2 => Op::LeaseGrant {
            id: LeaseId(rng.below(4)),
            ttl_ms: rng.range(1, 500),
        },
        3 => Op::LeaseRevoke {
            id: LeaseId(rng.below(4)),
        },
        4 => Op::Compact {
            at: Revision(rng.below(20)),
        },
        _ => Op::Nop,
    }
}

fn gen_ops(rng: &mut SimRng, max: u64) -> Vec<Op> {
    let n = rng.below(max) as usize;
    (0..n).map(|_| gen_op(rng)).collect()
}

#[test]
fn mvcc_apply_is_deterministic() {
    let mut rng = SimRng::from_seed(0x3A11);
    for _ in 0..128 {
        let ops = gen_ops(&mut rng, 60);
        let mut a = MvccStore::new();
        let mut b = MvccStore::new();
        for op in &ops {
            let (ra, ea) = a.apply(op);
            let (rb, eb) = b.apply(op);
            assert_eq!(ra.is_ok(), rb.is_ok());
            assert_eq!(ra.ok(), rb.ok());
            assert_eq!(ea, eb);
        }
        assert_eq!(a.range(""), b.range(""));
        assert_eq!(a.revision(), b.revision());
        assert_eq!(a.compacted(), b.compacted());
    }
}

#[test]
fn mvcc_event_log_is_dense_in_revisions() {
    let mut rng = SimRng::from_seed(0xDE45);
    for _ in 0..128 {
        let ops = gen_ops(&mut rng, 60);
        let mut s = MvccStore::new();
        let mut all_events = Vec::new();
        for op in &ops {
            let (result, evs) = s.apply(op);
            let _ = result.is_ok(); // both outcomes are legal here
            all_events.extend(evs);
        }
        // Every revision in 1..=current appears exactly once across events.
        let mut revs: Vec<u64> = all_events.iter().map(|e| e.revision().0).collect();
        revs.sort_unstable();
        let expected: Vec<u64> = (1..=s.revision().0).collect();
        assert_eq!(revs, expected);
    }
}

#[test]
fn mvcc_retained_events_replay_to_current_state() {
    let mut rng = SimRng::from_seed(0x4E91);
    for _ in 0..128 {
        let ops = gen_ops(&mut rng, 60);
        let mut s = MvccStore::new();
        for op in &ops {
            let _ = s.apply(op);
        }
        // Without compaction interference, events from 0 replay to S.
        if s.compacted() == Revision::ZERO {
            let events = s.events_since(Revision::ZERO).expect("retained");
            let mut rebuilt: std::collections::BTreeMap<Key, Value> =
                std::collections::BTreeMap::new();
            for e in events {
                match e.as_ref() {
                    ph_store::KvEvent::Put { kv, .. } => {
                        rebuilt.insert(kv.key.clone(), kv.value.clone());
                    }
                    ph_store::KvEvent::Delete { key, .. } => {
                        rebuilt.remove(key);
                    }
                }
            }
            let (current, _) = s.range("");
            let direct: std::collections::BTreeMap<Key, Value> =
                current.into_iter().map(|kv| (kv.key, kv.value)).collect();
            assert_eq!(rebuilt, direct);
        }
    }
}

#[test]
fn mvcc_version_counts_writes_since_create() {
    let mut rng = SimRng::from_seed(0x7C01);
    for _ in 0..32 {
        let puts = rng.range(1, 20) as u8;
        let mut s = MvccStore::new();
        for i in 0..puts {
            let (r, _) = s.apply(&Op::Put {
                key: Key::new("k"),
                value: Value::copy_from_slice(&[i]),
                lease: None,
                expect: Expect::Any,
            });
            r.expect("put");
        }
        assert_eq!(s.get(&Key::new("k")).expect("k").version, puts as u64);
    }
}

#[test]
fn cas_never_succeeds_against_a_wrong_revision() {
    let mut rng = SimRng::from_seed(0xCA5);
    for _ in 0..64 {
        let writes = rng.range(2, 10) as u8;
        let guess = rng.below(100);
        let mut s = MvccStore::new();
        for i in 0..writes {
            let _ = s.apply(&Op::Put {
                key: Key::new("k"),
                value: Value::copy_from_slice(&[i]),
                lease: None,
                expect: Expect::Any,
            });
        }
        let actual = s.get(&Key::new("k")).expect("k").mod_revision;
        let (r, _) = s.apply(&Op::Put {
            key: Key::new("k"),
            value: Value::from_static(b"cas"),
            lease: None,
            expect: Expect::ModRev(Revision(guess)),
        });
        assert_eq!(r.is_ok(), Revision(guess) == actual);
    }
}

// ---------------------------------------------------------------------
// MVCC watch-window invariants under random interleavings
// ---------------------------------------------------------------------

/// One step of a random store/view interleaving: a mutation, a
/// compaction, or a windowed view read from one of `VIEWS` cursors.
#[derive(Debug, Clone)]
enum WindowStep {
    Mutate(Op),
    Compact(u64),
    ViewRead(usize),
}

const VIEWS: usize = 3;

fn gen_window_step(rng: &mut SimRng) -> WindowStep {
    match rng.below(8) {
        0..=3 => WindowStep::Mutate(Op::Put {
            key: Key::new(format!("k{}", rng.below(6))),
            value: Value::copy_from_slice(&[rng.below(256) as u8]),
            lease: None,
            expect: Expect::Any,
        }),
        4 => WindowStep::Mutate(Op::Delete {
            key: Key::new(format!("k{}", rng.below(6))),
            expect: Expect::Any,
        }),
        5 => WindowStep::Compact(rng.below(40)),
        _ => WindowStep::ViewRead(rng.below(VIEWS as u64) as usize),
    }
}

/// The §4.2.3 window contract, as a property over random interleavings of
/// puts, deletes, compactions and per-view windowed reads:
///
/// * a view's frontier (the last revision it has seen) never goes
///   backwards, and each read's events are strictly ascending, dense, and
///   entirely above the frontier — no replays, no reordering;
/// * a read from a frontier below the compaction floor **always errors**
///   ([`ph_store::msgs::OpError::Compacted`]) and **never silently
///   skips** the compacted gap — the error fires exactly when the window
///   is too old, with the true floor in the payload.
#[test]
fn watch_window_frontiers_are_monotonic_and_too_old_windows_always_error() {
    use ph_store::msgs::OpError;
    let mut rng = SimRng::from_seed(0x717D_0175);
    for _ in 0..96 {
        let n = rng.range(10, 80) as usize;
        let steps: Vec<WindowStep> = (0..n).map(|_| gen_window_step(&mut rng)).collect();
        let mut s = MvccStore::new();
        // Each view resumes from the last revision it saw (starting at 0,
        // like a watcher registered before any history existed).
        let mut frontiers = [Revision::ZERO; VIEWS];
        for step in steps {
            match step {
                WindowStep::Mutate(op) => {
                    let _ = s.apply(&op);
                }
                WindowStep::Compact(at) => {
                    s.compact(Revision(at));
                    assert!(s.compacted() <= s.revision(), "floor above head");
                }
                WindowStep::ViewRead(v) => {
                    let before = frontiers[v];
                    match s.events_since(before) {
                        Ok(events) => {
                            // Ok is only legal when the window still
                            // covers the frontier.
                            assert!(
                                before >= s.compacted(),
                                "silent skip: read from {before:?} under floor {:?}",
                                s.compacted()
                            );
                            let mut last = before;
                            for e in &events {
                                // Dense and strictly ascending: exactly
                                // the next revision, every time.
                                assert_eq!(
                                    e.revision(),
                                    Revision(last.0 + 1),
                                    "gap or reorder in view {v}"
                                );
                                last = e.revision();
                            }
                            frontiers[v] = last;
                            assert!(frontiers[v] >= before, "view {v} frontier went backwards");
                        }
                        Err(OpError::Compacted {
                            requested,
                            compacted,
                        }) => {
                            // The error fires iff the window is too old,
                            // and reports the true floor.
                            assert_eq!(requested, before);
                            assert_eq!(compacted, s.compacted());
                            assert!(
                                requested < compacted,
                                "spurious Compacted error for a covered window"
                            );
                            // A real watcher would re-list; model that by
                            // resuming from the floor (still monotonic:
                            // the floor is above the stale frontier).
                            frontiers[v] = compacted;
                        }
                        Err(other) => panic!("unexpected error {other:?}"),
                    }
                }
            }
        }
    }
}

/// After any interleaving, a fresh view resuming from *exactly* the
/// compaction floor sees the full retained suffix — the window boundary
/// itself is never off by one in either direction.
#[test]
fn window_boundary_is_exact_after_random_compactions() {
    let mut rng = SimRng::from_seed(0x0B0D_A7E5);
    for _ in 0..96 {
        let mut s = MvccStore::new();
        let writes = rng.range(1, 40);
        for i in 0..writes {
            let _ = s.apply(&Op::Put {
                key: Key::new(format!("k{}", i % 5)),
                value: Value::from_static(b"v"),
                lease: None,
                expect: Expect::Any,
            });
        }
        s.compact(Revision(rng.below(writes + 10)));
        let floor = s.compacted();
        // At the floor: Ok, and dense up to the head.
        let evs = s.events_since(floor).expect("at the floor");
        assert_eq!(evs.len() as u64, s.revision().0 - floor.0);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.revision(), Revision(floor.0 + 1 + i as u64));
        }
        // One below the floor: always an error (unless the floor is 0).
        if floor > Revision::ZERO {
            assert!(
                s.events_since(Revision(floor.0 - 1)).is_err(),
                "one-below-floor read must error"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Raft safety under arbitrary message schedules
// ---------------------------------------------------------------------

/// A scripted action against a 3-node in-memory Raft network.
#[derive(Debug, Clone)]
enum Action {
    Timeout(usize),
    Heartbeat(usize),
    Propose(usize, u8),
    DeliverOne,
    DropOne,
}

fn gen_action(rng: &mut SimRng) -> Action {
    match rng.below(7) {
        0 => Action::Timeout(rng.below(3) as usize),
        1 => Action::Heartbeat(rng.below(3) as usize),
        2 => Action::Propose(rng.below(3) as usize, rng.below(256) as u8),
        6 => Action::DropOne,
        _ => Action::DeliverOne, // bias toward delivery
    }
}

/// The core Raft safety property: no two nodes ever apply different
/// commands at the same log index, under arbitrary interleaving,
/// duplication-free delivery and message loss.
#[test]
fn raft_applied_logs_never_conflict() {
    let mut rng = SimRng::from_seed(0x4A47);
    for _ in 0..256 {
        let actions: Vec<Action> = {
            let n = rng.below(120) as usize;
            (0..n).map(|_| gen_action(&mut rng)).collect()
        };
        let n = 3;
        let mut cores: Vec<RaftCore> = (0..n).map(|i| RaftCore::new(i, n)).collect();
        let mut inflight: std::collections::VecDeque<(usize, usize, RaftMsg)> =
            std::collections::VecDeque::new();
        let mut applied: Vec<Vec<(u64, Command)>> = vec![Vec::new(); n];

        let absorb = |at: usize,
                      effects: Vec<Effect>,
                      inflight: &mut std::collections::VecDeque<(usize, usize, RaftMsg)>,
                      applied: &mut Vec<Vec<(u64, Command)>>| {
            for e in effects {
                match e {
                    Effect::Send(to, msg) => inflight.push_back((at, to, msg)),
                    Effect::Apply { index, entry } => applied[at].push((index, entry.cmd)),
                    _ => {}
                }
            }
        };

        for action in actions {
            let mut effects = Vec::new();
            match action {
                Action::Timeout(i) => {
                    cores[i].on_election_timeout(&mut effects);
                    absorb(i, effects, &mut inflight, &mut applied);
                }
                Action::Heartbeat(i) => {
                    cores[i].on_heartbeat(&mut effects);
                    absorb(i, effects, &mut inflight, &mut applied);
                }
                Action::Propose(i, v) => {
                    let _ = cores[i].propose(
                        Command::internal(Op::Put {
                            key: Key::new(format!("v{v}")),
                            value: Value::copy_from_slice(&[v]),
                            lease: None,
                            expect: Expect::Any,
                        }),
                        &mut effects,
                    );
                    absorb(i, effects, &mut inflight, &mut applied);
                }
                Action::DeliverOne => {
                    if let Some((from, to, msg)) = inflight.pop_front() {
                        cores[to].on_message(from, msg, &mut effects);
                        absorb(to, effects, &mut inflight, &mut applied);
                    }
                }
                Action::DropOne => {
                    inflight.pop_front();
                }
            }
        }

        // Safety: agreement on every commonly applied index.
        for a in 0..n {
            for b in (a + 1)..n {
                let map_a: std::collections::BTreeMap<u64, &Command> =
                    applied[a].iter().map(|(i, c)| (*i, c)).collect();
                for (idx, cmd) in &applied[b] {
                    if let Some(other) = map_a.get(idx) {
                        assert_eq!(*other, cmd, "index {} diverged", idx);
                    }
                }
            }
        }
        // Each node applies each index at most once, in order.
        for log in &applied {
            let idxs: Vec<u64> = log.iter().map(|(i, _)| *i).collect();
            let mut sorted = idxs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(idxs.len(), sorted.len(), "duplicate applies");
            assert!(idxs.windows(2).all(|w| w[0] < w[1]), "out-of-order applies");
        }
    }
}
