//! Property-based tests on the store's MVCC state machine and the Raft
//! core's safety invariants.

use proptest::prelude::*;

use ph_store::kv::{Key, LeaseId, Revision, Value};
use ph_store::msgs::{Expect, Op};
use ph_store::mvcc::MvccStore;
use ph_store::raft::{Command, Effect, RaftCore, RaftMsg};

/// An arbitrary op over a small key universe.
fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8, any::<u8>()).prop_map(|(k, v)| Op::Put {
            key: Key::new(format!("k{k}")),
            value: Value::copy_from_slice(&[v]),
            lease: None,
            expect: Expect::Any,
        }),
        (0u8..8).prop_map(|k| Op::Delete {
            key: Key::new(format!("k{k}")),
            expect: Expect::Any,
        }),
        (0u8..4, 1u64..500).prop_map(|(id, ttl)| Op::LeaseGrant {
            id: LeaseId(id as u64),
            ttl_ms: ttl,
        }),
        (0u8..4).prop_map(|id| Op::LeaseRevoke { id: LeaseId(id as u64) }),
        (0u64..20).prop_map(|at| Op::Compact { at: Revision(at) }),
        Just(Op::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mvcc_apply_is_deterministic(ops in prop::collection::vec(arb_op(), 0..60)) {
        let mut a = MvccStore::new();
        let mut b = MvccStore::new();
        for op in &ops {
            let (ra, ea) = a.apply(op);
            let (rb, eb) = b.apply(op);
            prop_assert_eq!(ra.is_ok(), rb.is_ok());
            prop_assert_eq!(ra.ok(), rb.ok());
            prop_assert_eq!(ea, eb);
        }
        prop_assert_eq!(a.range(""), b.range(""));
        prop_assert_eq!(a.revision(), b.revision());
        prop_assert_eq!(a.compacted(), b.compacted());
    }

    #[test]
    fn mvcc_event_log_is_dense_in_revisions(ops in prop::collection::vec(arb_op(), 0..60)) {
        let mut s = MvccStore::new();
        let mut all_events = Vec::new();
        for op in &ops {
            let (result, evs) = s.apply(op);
            let _ = result.is_ok(); // both outcomes are legal here
            all_events.extend(evs);
        }
        // Every revision in 1..=current appears exactly once across events.
        let mut revs: Vec<u64> = all_events.iter().map(|e| e.revision().0).collect();
        revs.sort_unstable();
        let expected: Vec<u64> = (1..=s.revision().0).collect();
        prop_assert_eq!(revs, expected);
    }

    #[test]
    fn mvcc_retained_events_replay_to_current_state(
        ops in prop::collection::vec(arb_op(), 0..60)
    ) {
        let mut s = MvccStore::new();
        for op in &ops {
            let _ = s.apply(op);
        }
        // Without compaction interference, events from 0 replay to S.
        if s.compacted() == Revision::ZERO {
            let events = s.events_since(Revision::ZERO).expect("retained");
            let mut rebuilt: std::collections::BTreeMap<Key, Value> =
                std::collections::BTreeMap::new();
            for e in events {
                match e {
                    ph_store::KvEvent::Put { kv, .. } => {
                        rebuilt.insert(kv.key, kv.value);
                    }
                    ph_store::KvEvent::Delete { key, .. } => {
                        rebuilt.remove(&key);
                    }
                }
            }
            let (current, _) = s.range("");
            let direct: std::collections::BTreeMap<Key, Value> = current
                .into_iter()
                .map(|kv| (kv.key, kv.value))
                .collect();
            prop_assert_eq!(rebuilt, direct);
        }
    }

    #[test]
    fn mvcc_version_counts_writes_since_create(puts in 1u8..20) {
        let mut s = MvccStore::new();
        for i in 0..puts {
            let (r, _) = s.apply(&Op::Put {
                key: Key::new("k"),
                value: Value::copy_from_slice(&[i]),
                lease: None,
                expect: Expect::Any,
            });
            r.expect("put");
        }
        prop_assert_eq!(s.get(&Key::new("k")).expect("k").version, puts as u64);
    }

    #[test]
    fn cas_never_succeeds_against_a_wrong_revision(
        writes in 2u8..10,
        guess in 0u64..100
    ) {
        let mut s = MvccStore::new();
        for i in 0..writes {
            let _ = s.apply(&Op::Put {
                key: Key::new("k"),
                value: Value::copy_from_slice(&[i]),
                lease: None,
                expect: Expect::Any,
            });
        }
        let actual = s.get(&Key::new("k")).expect("k").mod_revision;
        let (r, _) = s.apply(&Op::Put {
            key: Key::new("k"),
            value: Value::from_static(b"cas"),
            lease: None,
            expect: Expect::ModRev(Revision(guess)),
        });
        prop_assert_eq!(r.is_ok(), Revision(guess) == actual);
    }
}

// ---------------------------------------------------------------------
// Raft safety under arbitrary message schedules
// ---------------------------------------------------------------------

/// A scripted action against a 3-node in-memory Raft network.
#[derive(Debug, Clone)]
enum Action {
    Timeout(usize),
    Heartbeat(usize),
    Propose(usize, u8),
    DeliverOne,
    DropOne,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0usize..3).prop_map(Action::Timeout),
        (0usize..3).prop_map(Action::Heartbeat),
        (0usize..3, any::<u8>()).prop_map(|(n, v)| Action::Propose(n, v)),
        Just(Action::DeliverOne),
        Just(Action::DeliverOne), // bias toward delivery
        Just(Action::DeliverOne),
        Just(Action::DropOne),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core Raft safety property: no two nodes ever apply different
    /// commands at the same log index, under arbitrary interleaving,
    /// duplication-free delivery and message loss.
    #[test]
    fn raft_applied_logs_never_conflict(actions in prop::collection::vec(arb_action(), 0..120)) {
        let n = 3;
        let mut cores: Vec<RaftCore> = (0..n).map(|i| RaftCore::new(i, n)).collect();
        let mut inflight: std::collections::VecDeque<(usize, usize, RaftMsg)> =
            std::collections::VecDeque::new();
        let mut applied: Vec<Vec<(u64, Command)>> = vec![Vec::new(); n];

        let absorb = |at: usize,
                          effects: Vec<Effect>,
                          inflight: &mut std::collections::VecDeque<(usize, usize, RaftMsg)>,
                          applied: &mut Vec<Vec<(u64, Command)>>| {
            for e in effects {
                match e {
                    Effect::Send(to, msg) => inflight.push_back((at, to, msg)),
                    Effect::Apply { index, entry } => applied[at].push((index, entry.cmd)),
                    _ => {}
                }
            }
        };

        for action in actions {
            let mut effects = Vec::new();
            match action {
                Action::Timeout(i) => {
                    cores[i].on_election_timeout(&mut effects);
                    absorb(i, effects, &mut inflight, &mut applied);
                }
                Action::Heartbeat(i) => {
                    cores[i].on_heartbeat(&mut effects);
                    absorb(i, effects, &mut inflight, &mut applied);
                }
                Action::Propose(i, v) => {
                    let _ = cores[i].propose(
                        Command::internal(Op::Put {
                            key: Key::new(format!("v{v}")),
                            value: Value::copy_from_slice(&[v]),
                            lease: None,
                            expect: Expect::Any,
                        }),
                        &mut effects,
                    );
                    absorb(i, effects, &mut inflight, &mut applied);
                }
                Action::DeliverOne => {
                    if let Some((from, to, msg)) = inflight.pop_front() {
                        cores[to].on_message(from, msg, &mut effects);
                        absorb(to, effects, &mut inflight, &mut applied);
                    }
                }
                Action::DropOne => {
                    inflight.pop_front();
                }
            }
        }

        // Safety: agreement on every commonly applied index.
        for a in 0..n {
            for b in (a + 1)..n {
                let map_a: std::collections::BTreeMap<u64, &Command> =
                    applied[a].iter().map(|(i, c)| (*i, c)).collect();
                for (idx, cmd) in &applied[b] {
                    if let Some(other) = map_a.get(idx) {
                        prop_assert_eq!(*other, cmd, "index {} diverged", idx);
                    }
                }
            }
        }
        // Each node applies each index at most once, in order.
        for log in &applied {
            let idxs: Vec<u64> = log.iter().map(|(i, _)| *i).collect();
            let mut sorted = idxs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(idxs.len(), sorted.len(), "duplicate applies");
            prop_assert!(idxs.windows(2).all(|w| w[0] < w[1]), "out-of-order applies");
        }
    }
}
