//! End-to-end store tests: client ↔ replicated store over the simulated
//! network, exercising writes, reads at both consistency levels, watches,
//! CAS, leases, compaction, failover and follower staleness.

use ph_sim::{Duration, SimTime, World, WorldConfig};
use ph_store::client::BasicClient;
use ph_store::msgs::{Expect, Op, ReadLevel};
use ph_store::node::AutoCompact;
use ph_store::{
    spawn_store_cluster, Completion, Key, OpError, OpResult, ReadLevel as RL, Revision,
    StoreClient, StoreClientConfig, StoreCluster, StoreNode, StoreNodeConfig, Value,
};

fn setup(seed: u64, n: usize, cfg: StoreNodeConfig) -> (World, StoreCluster, ph_sim::ActorId) {
    let mut world = World::new(WorldConfig::default(), seed);
    let cluster = spawn_store_cluster(&mut world, n, cfg);
    let client = StoreClient::new(StoreClientConfig::new(cluster.nodes.clone()));
    let c = world.spawn("client", BasicClient::new(client, Duration::millis(50)));
    cluster
        .wait_for_leader(&mut world, SimTime(Duration::secs(2).as_nanos()))
        .expect("leader");
    (world, cluster, c)
}

fn await_op(world: &mut World, c: ph_sim::ActorId, req: u64) -> Result<OpResult, OpError> {
    for _ in 0..200 {
        world.run_for(Duration::millis(20));
        if let Some(r) = world
            .actor_ref::<BasicClient>(c)
            .expect("client")
            .result_of(req)
        {
            return r.clone();
        }
    }
    panic!("request {req} did not complete within 4s");
}

#[test]
fn put_then_linearizable_read_round_trips() {
    let (mut world, _cluster, c) = setup(21, 3, StoreNodeConfig::default());
    let req = world.invoke::<BasicClient, _>(c, |bc, ctx| {
        bc.client
            .put("pods/p1", Value::from_static(b"running"), ctx)
    });
    let rev = match await_op(&mut world, c, req).expect("put") {
        OpResult::Put { revision } => revision,
        other => panic!("unexpected {other:?}"),
    };
    assert!(rev.0 >= 1);
    let req =
        world.invoke::<BasicClient, _>(c, |bc, ctx| bc.client.read("pods/", RL::Linearizable, ctx));
    match await_op(&mut world, c, req).expect("read") {
        OpResult::Read { kvs, revision } => {
            assert_eq!(kvs.len(), 1);
            assert_eq!(kvs[0].key, Key::new("pods/p1"));
            assert_eq!(&kvs[0].value[..], b"running");
            assert!(revision >= rev);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn watch_streams_events_in_order() {
    let (mut world, _cluster, c) = setup(22, 3, StoreNodeConfig::default());
    let watch =
        world.invoke::<BasicClient, _>(c, |bc, ctx| bc.client.watch("pods/", Revision::ZERO, ctx));
    world.run_for(Duration::millis(50));
    for (k, v) in [("pods/a", "1"), ("pods/b", "2"), ("nodes/n1", "x")] {
        let req = world.invoke::<BasicClient, _>(c, |bc, ctx| {
            bc.client.put(k, Value::copy_from_slice(v.as_bytes()), ctx)
        });
        await_op(&mut world, c, req).expect("put");
    }
    // Delete one to see a tombstone event.
    let req =
        world.invoke::<BasicClient, _>(c, |bc, ctx| bc.client.delete("pods/a", Expect::Any, ctx));
    await_op(&mut world, c, req).expect("delete");
    world.run_for(Duration::millis(300));

    let events = world
        .actor_ref::<BasicClient>(c)
        .expect("client")
        .watch_events(watch);
    let keys: Vec<_> = events
        .iter()
        .map(|e| e.key().as_str().to_string())
        .collect();
    assert_eq!(keys, vec!["pods/a", "pods/b", "pods/a"]);
    assert!(events[2].is_delete());
    // Revisions strictly increase.
    let revs: Vec<u64> = events.iter().map(|e| e.revision().0).collect();
    assert!(revs.windows(2).all(|w| w[0] < w[1]), "revisions {revs:?}");
}

#[test]
fn cas_conflict_surfaces_as_op_error() {
    let (mut world, _cluster, c) = setup(23, 3, StoreNodeConfig::default());
    let req = world.invoke::<BasicClient, _>(c, |bc, ctx| {
        bc.client.put("k", Value::from_static(b"v1"), ctx)
    });
    let rev = match await_op(&mut world, c, req).expect("put") {
        OpResult::Put { revision } => revision,
        other => panic!("unexpected {other:?}"),
    };
    // Overwrite, then CAS against the now-stale revision.
    let req = world.invoke::<BasicClient, _>(c, |bc, ctx| {
        bc.client.put("k", Value::from_static(b"v2"), ctx)
    });
    await_op(&mut world, c, req).expect("put2");
    let req = world.invoke::<BasicClient, _>(c, move |bc, ctx| {
        bc.client
            .cas_put("k", Value::from_static(b"v3"), Expect::ModRev(rev), ctx)
    });
    match await_op(&mut world, c, req) {
        Err(OpError::CasFailed { key, actual }) => {
            assert_eq!(key, Key::new("k"));
            assert_eq!(actual, Some(Revision(rev.0 + 1)));
        }
        other => panic!("expected CAS failure, got {other:?}"),
    }
}

#[test]
fn writes_survive_leader_failover() {
    let (mut world, cluster, c) = setup(24, 3, StoreNodeConfig::default());
    let req = world.invoke::<BasicClient, _>(c, |bc, ctx| {
        bc.client.put("durable", Value::from_static(b"1"), ctx)
    });
    await_op(&mut world, c, req).expect("put");
    let leader = cluster.leader(&world).expect("leader");
    world.crash(leader);
    // The client must find the new leader and the data must still be there.
    let req = world.invoke::<BasicClient, _>(c, |bc, ctx| {
        bc.client.read("durable", RL::Linearizable, ctx)
    });
    match await_op(&mut world, c, req).expect("read after failover") {
        OpResult::Read { kvs, .. } => {
            assert_eq!(kvs.len(), 1);
            assert_eq!(&kvs[0].value[..], b"1");
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn serializable_read_from_partitioned_follower_is_stale() {
    let (mut world, cluster, _c) = setup(25, 3, StoreNodeConfig::default());
    let leader = cluster.leader(&world).expect("leader");
    let follower = *cluster
        .nodes
        .iter()
        .find(|&&n| n != leader)
        .expect("follower");
    let follower_idx = cluster.nodes.iter().position(|&n| n == follower).unwrap();

    // A client pinned to the follower for serializable reads.
    let mut cfg = StoreClientConfig::new(cluster.nodes.clone());
    cfg.affinity = Some(follower_idx);
    let c2 = world.spawn(
        "stale-reader",
        BasicClient::new(StoreClient::new(cfg), Duration::millis(50)),
    );

    // Write v1, let it replicate everywhere.
    let req = world.invoke::<BasicClient, _>(c2, |bc, ctx| {
        bc.client.put("k", Value::from_static(b"v1"), ctx)
    });
    await_op(&mut world, c2, req).expect("put v1");
    world.run_for(Duration::millis(200));

    // Cut the follower off from the rest, then write v2.
    let others: Vec<_> = cluster
        .nodes
        .iter()
        .copied()
        .filter(|&n| n != follower)
        .collect();
    let p = world.partition(&[follower], &others);
    let req = world.invoke::<BasicClient, _>(c2, |bc, ctx| {
        bc.client.put("k", Value::from_static(b"v2"), ctx)
    });
    await_op(&mut world, c2, req).expect("put v2");

    // Serializable read hits the partitioned follower: sees stale v1.
    let req =
        world.invoke::<BasicClient, _>(c2, |bc, ctx| bc.client.read("k", RL::Serializable, ctx));
    match await_op(&mut world, c2, req).expect("stale read") {
        OpResult::Read { kvs, .. } => {
            assert_eq!(&kvs[0].value[..], b"v1", "follower must serve stale data");
        }
        other => panic!("unexpected {other:?}"),
    }

    // Linearizable read (reaches the majority side): sees v2.
    let req =
        world.invoke::<BasicClient, _>(c2, |bc, ctx| bc.client.read("k", RL::Linearizable, ctx));
    match await_op(&mut world, c2, req).expect("fresh read") {
        OpResult::Read { kvs, .. } => assert_eq!(&kvs[0].value[..], b"v2"),
        other => panic!("unexpected {other:?}"),
    }
    world.heal(p);
}

#[test]
fn lease_expiry_deletes_attached_keys() {
    let (mut world, _cluster, c) = setup(26, 3, StoreNodeConfig::default());
    let req = world.invoke::<BasicClient, _>(c, |bc, ctx| {
        bc.client.submit(
            Op::LeaseGrant {
                id: ph_store::LeaseId(1),
                ttl_ms: 300,
            },
            ReadLevel::Linearizable,
            ctx,
        )
    });
    await_op(&mut world, c, req).expect("grant");
    let req = world.invoke::<BasicClient, _>(c, |bc, ctx| {
        bc.client.submit(
            Op::Put {
                key: Key::new("ephemeral"),
                value: Value::from_static(b"x"),
                lease: Some(ph_store::LeaseId(1)),
                expect: Expect::Any,
            },
            ReadLevel::Linearizable,
            ctx,
        )
    });
    await_op(&mut world, c, req).expect("leased put");

    // Key exists now.
    let req = world.invoke::<BasicClient, _>(c, |bc, ctx| {
        bc.client.read("ephemeral", RL::Linearizable, ctx)
    });
    match await_op(&mut world, c, req).expect("read") {
        OpResult::Read { kvs, .. } => assert_eq!(kvs.len(), 1),
        other => panic!("unexpected {other:?}"),
    }

    // Let the lease expire without keepalives.
    world.run_for(Duration::millis(800));
    let req = world.invoke::<BasicClient, _>(c, |bc, ctx| {
        bc.client.read("ephemeral", RL::Linearizable, ctx)
    });
    match await_op(&mut world, c, req).expect("read after expiry") {
        OpResult::Read { kvs, .. } => assert!(kvs.is_empty(), "leased key must be gone"),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn compaction_cancels_stale_watch_resume() {
    let cfg = StoreNodeConfig {
        autocompact: Some(AutoCompact {
            keep: 5,
            interval: Duration::millis(100),
        }),
        ..StoreNodeConfig::default()
    };
    let (mut world, _cluster, c) = setup(27, 3, cfg);
    // Generate plenty of history.
    for i in 0..30 {
        let req = world.invoke::<BasicClient, _>(c, move |bc, ctx| {
            bc.client
                .put(format!("k{i}"), Value::from_static(b"v"), ctx)
        });
        await_op(&mut world, c, req).expect("put");
    }
    world.run_for(Duration::millis(500)); // let autocompaction run

    // A watch resuming from revision 1 must be cancelled as compacted.
    let watch = world.invoke::<BasicClient, _>(c, |bc, ctx| bc.client.watch("k", Revision(1), ctx));
    world.run_for(Duration::millis(300));
    let compacted = world
        .actor_ref::<BasicClient>(c)
        .expect("client")
        .completions
        .iter()
        .any(|x| matches!(x, Completion::WatchCompacted { watch: w } if *w == watch));
    assert!(compacted, "resume below the compaction floor must cancel");
}

#[test]
fn follower_restart_rebuilds_identical_state() {
    let (mut world, cluster, c) = setup(28, 3, StoreNodeConfig::default());
    for i in 0..10 {
        let req = world.invoke::<BasicClient, _>(c, move |bc, ctx| {
            bc.client
                .put(format!("k{i}"), Value::from_static(b"v"), ctx)
        });
        await_op(&mut world, c, req).expect("put");
    }
    world.run_for(Duration::millis(200));
    let leader = cluster.leader(&world).expect("leader");
    let follower = *cluster.nodes.iter().find(|&&n| n != leader).unwrap();
    let before = world
        .actor_ref::<StoreNode>(follower)
        .unwrap()
        .mvcc()
        .range("")
        .0;
    assert_eq!(before.len(), 10);

    world.crash(follower);
    world.run_for(Duration::millis(100));
    world.restart(follower);
    world.run_for(Duration::millis(500));

    let after = world
        .actor_ref::<StoreNode>(follower)
        .unwrap()
        .mvcc()
        .range("")
        .0;
    assert_eq!(before, after, "replayed state must match exactly");
}
