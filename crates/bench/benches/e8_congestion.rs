//! **E8 — load-emergent staleness**: view lag and violations as a function
//! of offered load vs modeled capacity, with zero injected perturbations.
//!
//! The congestion scenario's churn workload offers a fixed load to the
//! apiserver→scheduler feed; this bench sweeps the feed's *static*
//! bandwidth across the capacity boundary and records, per point: drop-tail
//! losses, p95 queue wait, the scheduler's sampled view lag, and whether
//! the all-pods-running oracle fired. Expected shape: below capacity the
//! queue is empty and the run is clean; past capacity lag explodes and the
//! buggy scheduler wedges pods on a ghost node — staleness from queue
//! physics alone, the §4.1 saturation argument made end-to-end.
//!
//! Run with `cargo bench -p ph-bench --bench e8_congestion`.

use ph_bench::{criterion_group, criterion_main, Criterion};
use ph_scenarios::{congestion, Variant};

fn print_table() {
    println!("-- E8: lag vs offered load (buggy variant, NoFault, seed 1) --\n");
    println!(
        "{:<16} {:>9} {:>14} {:>13} {:>12}  verdict",
        "capacity (B/s)", "drops", "p95 wait", "sched lag max", "gap frac"
    );
    for capacity in [256_000u64, 64_000, 16_000, 8_000, 4_000, 2_000, 1_000] {
        let (report, _trace) = congestion::run_at_capacity(1, Variant::Buggy, capacity);
        let drops = report.metrics.counter_total("net.queue_dropped");
        let p95 = report
            .metrics
            .histogram("apiserver-1", "net.queue_wait_ns")
            .map(|h| h.quantile(0.95))
            .unwrap_or(0);
        let sched = report.divergence.view("scheduler");
        let (lag_max, gap) = sched.map_or((0, 0.0), |v| (v.max, v.gap_fraction()));
        println!(
            "{capacity:<16} {drops:>9} {:>12}us {lag_max:>13} {:>11.0}%  {}",
            p95 / 1_000,
            gap * 100.0,
            if report.failed() { "VIOLATED" } else { "clean" }
        );
    }
    println!(
        "\n(shape check: ample capacity keeps the queue empty and the run\n\
         clean; as bandwidth falls, tail-drops and waits appear first —\n\
         still clean, the watch machinery heals in time — and only once\n\
         the relist itself crawls does the heal asymmetry open the ghost\n\
         window and the oracle fire. No strategy involved at any point.)\n"
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("e8");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    for (label, capacity) in [
        ("ample", congestion::CAPACITY_AMPLE),
        ("scarce", congestion::CAPACITY_SCARCE),
    ] {
        group.bench_function(format!("congestion_trial_{label}"), |b| {
            b.iter(|| {
                congestion::run_at_capacity(1, Variant::Buggy, capacity)
                    .0
                    .trace_events
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
