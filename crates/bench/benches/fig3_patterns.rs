//! **F3 — Figure 3 (a, b, c)**: the three partial-history challenge
//! patterns, made measurable.
//!
//! * **3a — staleness**: a view's lag behind `(H, S)` as a function of the
//!   injected notification delay;
//! * **3b — time traveling**: the depth of a component's frontier
//!   regression when it restarts against a stale vs a fresh upstream;
//! * **3c — observability gaps**: the fraction of `H` that sparse reads of
//!   `S′` cannot reconstruct, as a function of read sparsity.
//!
//! Run with `cargo bench -p ph-bench --bench fig3_patterns`.

use ph_bench::{criterion_group, criterion_main, Criterion};

use ph_cluster::apiserver::ApiServer;
use ph_cluster::objects::{Body, Object};
use ph_cluster::topology::{spawn_cluster, ClusterConfig};
use ph_core::history::{ChangeOp, FrontierLog, History};
use ph_core::observe::observability_report;
use ph_core::perturb::{StalenessInjector, Strategy, TimeTravelInjector};
use ph_scenarios::common::targets_for;
use ph_sim::{Duration, SimRng, SimTime, TraceEventKind, World, WorldConfig};
use ph_store::{Revision, StoreNode};

fn cluster_world(seed: u64) -> (World, ph_cluster::topology::ClusterHandle) {
    let cfg = ClusterConfig {
        scheduler: Some(false),
        rs_controller: Some(false),
        ..ClusterConfig::default()
    };
    let mut world = World::new(WorldConfig::default(), seed);
    let cluster = spawn_cluster(&mut world, &cfg);
    assert!(cluster.wait_ready(&mut world, SimTime(Duration::secs(1).as_nanos())));
    world.run_until(SimTime(Duration::secs(1).as_nanos()));
    let dl = SimTime(world.now().0 + Duration::secs(10).as_nanos());
    for n in ["node-1", "node-2"] {
        cluster.create_object(&mut world, &Object::node(n), dl);
    }
    (world, cluster)
}

fn truth_rev(world: &World, cluster: &ph_cluster::topology::ClusterHandle) -> Revision {
    cluster
        .store
        .leader(world)
        .and_then(|n| world.actor_ref::<StoreNode>(n))
        .map(|s| s.mvcc().revision())
        .unwrap_or(Revision::ZERO)
}

/// 3a: run a steady churn workload with a delayed apiserver feed; sample
/// the view lag. Returns (mean lag, max lag) in events.
fn staleness_lag(seed: u64, delay: Duration) -> (f64, u64) {
    let (mut world, cluster) = cluster_world(seed);
    let targets = targets_for(&cluster, Duration::secs(4));
    let mut injector = StalenessInjector {
        cache: 1,
        delay,
        after: Duration::ZERO,
    };
    injector.setup(&mut world, &targets);
    let dl = SimTime(world.now().0 + Duration::secs(20).as_nanos());
    let mut lags = Vec::new();
    for i in 0..40 {
        cluster.create_object(
            &mut world,
            &Object::pod(format!("churn-{i}"), Some("node-1".into()), None),
            dl,
        );
        world.run_for(Duration::millis(50));
        let truth = truth_rev(&world, &cluster);
        let view = world
            .actor_ref::<ApiServer>(cluster.apiservers[1])
            .expect("api2")
            .cache_revision();
        lags.push(truth.0.saturating_sub(view.0));
    }
    injector.teardown(&mut world);
    let max = *lags.iter().max().unwrap_or(&0);
    let mean = lags.iter().sum::<u64>() as f64 / lags.len() as f64;
    (mean, max)
}

/// 3b: crash a kubelet and restart it against a stale (frozen) or fresh
/// upstream; return the measured frontier regression depth.
fn time_travel_depth(seed: u64, stale_upstream: bool) -> u64 {
    let (mut world, cluster) = cluster_world(seed);
    let targets = targets_for(&cluster, Duration::secs(5));
    let dl = SimTime(world.now().0 + Duration::secs(20).as_nanos());
    cluster.create_object(
        &mut world,
        &Object::new("web", Body::ReplicaSet { replicas: 2 }),
        dl,
    );

    let mut injector = TimeTravelInjector::new(
        1,
        0,
        if stale_upstream {
            Duration::millis(1500)
        } else {
            Duration::secs(30) // never freezes within the run
        },
        Duration::millis(2500),
        Duration::millis(2700),
        Some(Duration::millis(4200)),
    );
    injector.setup(&mut world, &targets);
    let end = SimTime(Duration::millis(4500).as_nanos());
    let mut churned = false;
    while world.now() < end {
        world.run_for(Duration::millis(20));
        if !churned && world.now() >= SimTime(Duration::millis(1800).as_nanos()) {
            churned = true;
            for i in 0..4 {
                cluster.create_object(
                    &mut world,
                    &Object::pod(format!("extra-{i}"), Some("node-1".into()), None),
                    dl,
                );
            }
        }
        injector.tick(&mut world, &targets);
    }
    injector.teardown(&mut world);

    let kubelet = cluster.kubelets[0];
    let mut log = FrontierLog::new();
    for e in world.trace().iter() {
        if let TraceEventKind::Annotation { actor, label, data } = &e.kind {
            if *actor == kubelet && label == "view.frontier" {
                if let Ok(rev) = data.parse() {
                    log.record(e.at.nanos(), rev);
                }
            }
        }
    }
    log.max_travel_depth()
}

/// 3c: fraction of a churny history invisible to sparse state reads.
fn obs_gap_series() -> Vec<(u64, f64)> {
    let mut h = History::new();
    let mut rng = SimRng::from_seed(33);
    let mut alive = [false; 6];
    for _ in 0..240 {
        let e = rng.below(6) as usize;
        let entity = format!("obj{e}");
        if !alive[e] {
            h.append(entity, ChangeOp::Create);
            alive[e] = true;
        } else if rng.chance(0.4) {
            h.append(entity, ChangeOp::Delete);
            alive[e] = false;
        } else {
            h.append(entity, ChangeOp::Update(rng.below(1000)));
        }
    }
    [1u64, 2, 4, 8, 16, 32, 64]
        .iter()
        .map(|&interval| {
            let points: Vec<u64> = (1..=h.len()).filter(|s| s % interval == 0).collect();
            (interval, observability_report(&h, &points).gap_fraction())
        })
        .collect()
}

fn print_figures() {
    println!("\n=== F3a (staleness): view lag vs injected notification delay ===");
    println!("{:<12} {:>12} {:>10}", "delay", "mean lag", "max lag");
    for ms in [0u64, 20, 50, 100, 200] {
        let (mean, max) = staleness_lag(911, Duration::millis(ms));
        println!("{:<12} {:>12.1} {:>10}", format!("{ms}ms"), mean, max);
    }

    println!("\n=== F3b (time traveling): frontier regression depth on restart ===");
    let fresh = time_travel_depth(912, false);
    let stale = time_travel_depth(912, true);
    println!("restart against fresh upstream: depth {fresh}");
    println!("restart against stale upstream: depth {stale}");
    assert!(stale > fresh, "stale restart must regress further");

    println!("\n=== F3c (observability gaps): unobservable fraction vs read sparsity ===");
    println!("{:<20} {:>14}", "read interval (events)", "gap fraction");
    for (interval, frac) in obs_gap_series() {
        println!("{:<20} {:>13.1}%", interval, frac * 100.0);
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_figures();
    let mut group = c.benchmark_group("fig3");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("staleness_lag_run", |b| {
        b.iter(|| staleness_lag(913, Duration::millis(100)))
    });
    group.bench_function("obs_gap_analysis", |b| b.iter(obs_gap_series));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
