//! **T2 — §5/§6.1**: pattern-guided perturbation vs fault-injection
//! heuristics, measured as trials-to-first-detection under a larger budget.
//!
//! The paper's argument: random or heuristic fault injection "can rarely
//! trigger these cases", while a tool that regulates how `(H′, S′)`
//! advances triggers them directly. Expected shape: guided = 1 trial
//! everywhere; baselines need many trials or exhaust the budget.
//!
//! Trial budget: `PH_TRIALS2` env var (default 12).
//!
//! Run with `cargo bench -p ph-bench --bench table2_guided_vs_random`.

use ph_bench::{criterion_group, criterion_main, Criterion};

use ph_core::harness::{Explorer, RunReport};
use ph_core::perturb::{CoFiPartitions, CrashTunerCrashes, RandomCrashes, Strategy};
use ph_scenarios::{cass_398, k8s_56261, k8s_59848, volume_17, Variant};
use ph_sim::Duration;

type ScenarioRun = fn(u64, &mut dyn Strategy, Variant) -> RunReport;
type Guided = fn(u64) -> Box<dyn Strategy>;

fn print_table() {
    let budget: u32 = std::env::var("PH_TRIALS2")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let scenarios: Vec<(&str, ScenarioRun, Guided)> = vec![
        (
            k8s_59848::NAME,
            k8s_59848::run as ScenarioRun,
            k8s_59848::guided as Guided,
        ),
        (k8s_56261::NAME, k8s_56261::run, k8s_56261::guided),
        (volume_17::NAME, volume_17::run, volume_17::guided),
        (cass_398::NAME, cass_398::run, cass_398::guided),
    ];
    println!("\n=== T2 (§5/§6.1): trials to first detection (budget {budget}) ===\n");
    println!(
        "{:<16} {:>8} {:>14} {:>12} {:>8}",
        "scenario", "guided", "random-crash", "crashtuner", "cofi"
    );
    let explorer = Explorer {
        max_trials: budget,
        base_seed: 2000,
    };
    for (name, run, guided) in scenarios {
        let fmt = |n: Option<u32>| match n {
            Some(n) => n.to_string(),
            None => "✗".to_string(),
        };
        let g = explorer
            .explore(name, &|s, st| run(s, st, Variant::Buggy), &|s| guided(s))
            .first_violation;
        let r = explorer
            .explore(name, &|s, st| run(s, st, Variant::Buggy), &|seed| {
                Box::new(RandomCrashes {
                    seed,
                    count: 3,
                    down: Duration::millis(300),
                })
            })
            .first_violation;
        let ct = explorer
            .explore(name, &|s, st| run(s, st, Variant::Buggy), &|seed| {
                Box::new(CrashTunerCrashes::new(seed, 0.02, 3, Duration::millis(300)))
            })
            .first_violation;
        let cf = explorer
            .explore(name, &|s, st| run(s, st, Variant::Buggy), &|seed| {
                Box::new(CoFiPartitions::new(seed, 0.02, 3, Duration::millis(500)))
            })
            .first_violation;
        println!(
            "{:<16} {:>8} {:>14} {:>12} {:>8}",
            name,
            fmt(g),
            fmt(r),
            fmt(ct),
            fmt(cf)
        );
        assert_eq!(g, Some(1), "{name}: guided must detect on trial 1");
    }
    println!("\n(✗ = not detected within budget — the paper's 'rarely trigger')\n");
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_function("random_crash_trial_59848", |b| {
        b.iter(|| {
            let mut s = RandomCrashes {
                seed: 7,
                count: 3,
                down: Duration::millis(300),
            };
            k8s_59848::run(7, &mut s, Variant::Buggy).trace_events
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
