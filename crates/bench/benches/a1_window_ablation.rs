//! **A1 — ablation**: the apiserver's rolling watch-event window ([7] in
//! the paper, §4.2.3).
//!
//! The window is a design knob DESIGN.md calls out: it bounds apiserver
//! memory but turns slow watchers into re-listers ("requests for events
//! not appearing in the window will fail, which makes earlier events
//! unobservable"). This ablation disconnects an informer for a fixed
//! burst of writes and sweeps the window size, measuring how the informer
//! recovers: via cheap stream replay (window large enough) or via a full
//! re-list (window overflowed).
//!
//! Expected shape: a window smaller than the burst forces a re-list;
//! a window that covers the burst recovers by replay; both converge to
//! the truth.
//!
//! Run with `cargo bench -p ph-bench --bench a1_window_ablation`.

use ph_bench::{criterion_group, criterion_main, Criterion};

use ph_cluster::apiclient::{ApiClient, ApiClientConfig};
use ph_cluster::apiserver::{ApiServer, ApiServerConfig};
use ph_cluster::informer::{Informer, InformerConfig, InformerEvent};
use ph_cluster::objects::Object;
use ph_sim::{Actor, ActorId, AnyMsg, Ctx, Duration, SimTime, TimerId, World, WorldConfig};
use ph_store::client::BasicClient;
use ph_store::node::StoreNodeConfig;
use ph_store::{spawn_store_cluster, StoreClient, StoreClientConfig};

struct Host {
    client: ApiClient,
    informer: Informer,
    relists: u32,
}

impl Actor for Host {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(Duration::millis(30), 0);
    }
    fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
        let mut completions = Vec::new();
        if !self.client.on_message(from, &msg, ctx, &mut completions) {
            return;
        }
        let mut events = Vec::new();
        for c in &completions {
            self.informer
                .on_completion(c, &mut self.client, ctx, &mut events);
        }
        for e in events {
            if matches!(e, InformerEvent::Synced { .. }) {
                self.relists += 1;
            }
        }
    }
    fn on_timer(&mut self, _t: TimerId, _tag: u64, ctx: &mut Ctx) {
        self.client.tick(ctx);
        self.informer.poll(&mut self.client, ctx);
        ctx.set_timer(Duration::millis(30), 0);
    }
}

struct Outcome {
    relists: u32,
    converged: bool,
    recovery_ms: u64,
}

/// Disconnect an informer while `burst` writes land, with the given
/// apiserver window; measure how it recovers.
fn run_ablation(seed: u64, window: usize, burst: usize) -> Outcome {
    let mut world = World::new(WorldConfig::default(), seed);
    let store = spawn_store_cluster(&mut world, 3, StoreNodeConfig::default());
    let mut cfg = ApiServerConfig::new(StoreClientConfig::new(store.nodes.clone()));
    cfg.window = window;
    let api = world.spawn("apiserver-1", ApiServer::new(cfg));
    store
        .wait_for_leader(&mut world, SimTime(Duration::secs(1).as_nanos()))
        .expect("leader");
    world.run_until(SimTime(Duration::secs(1).as_nanos()));

    let host = world.spawn(
        "host",
        Host {
            client: ApiClient::new(ApiClientConfig::new(vec![api]), 0),
            informer: Informer::new(InformerConfig::new("nodes/")),
            relists: 0,
        },
    );
    let admin = world.spawn(
        "admin",
        BasicClient::new(
            StoreClient::new(StoreClientConfig::new(store.nodes.clone())),
            Duration::millis(20),
        ),
    );
    // Seed one object and let the informer sync.
    let put = |world: &mut World, i: usize| {
        let req = world.invoke::<BasicClient, _>(admin, move |bc, ctx| {
            bc.client.put(
                format!("nodes/n{i}"),
                Object::node(format!("n{i}")).encode(),
                ctx,
            )
        });
        while world
            .actor_ref::<BasicClient>(admin)
            .unwrap()
            .result_of(req)
            .is_none()
        {
            world.step();
        }
    };
    put(&mut world, 0);
    world.run_for(Duration::millis(300));
    let baseline_relists = world.actor_ref::<Host>(host).unwrap().relists;

    // Disconnect, burst, reconnect.
    let p = world.partition(&[host], &[api]);
    for i in 1..=burst {
        put(&mut world, i);
    }
    world.run_for(Duration::millis(300));
    world.heal(p);
    let healed_at = world.now();

    // Wait for convergence.
    let deadline = healed_at + Duration::secs(5);
    let mut recovery_ms = u64::MAX;
    while world.now() < deadline {
        world.run_for(Duration::millis(20));
        let h = world.actor_ref::<Host>(host).unwrap();
        if h.informer.len() == burst + 1 {
            recovery_ms = world.now().since(healed_at).as_millis();
            break;
        }
    }
    let h = world.actor_ref::<Host>(host).unwrap();
    Outcome {
        relists: h.relists - baseline_relists,
        converged: h.informer.len() == burst + 1,
        recovery_ms,
    }
}

fn print_table() {
    let burst = 12;
    println!("\n=== A1 (ablation, [7]): watch window size vs recovery path ===");
    println!("(informer disconnected while {burst} writes land)\n");
    println!(
        "{:<12} {:>10} {:>12} {:>14}",
        "window", "re-lists", "converged", "recovery (ms)"
    );
    for window in [4usize, 8, 16, 64, 256] {
        let o = run_ablation(931, window, burst);
        println!(
            "{:<12} {:>10} {:>12} {:>14}",
            window,
            o.relists,
            o.converged,
            if o.recovery_ms == u64::MAX {
                "—".to_string()
            } else {
                o.recovery_ms.to_string()
            }
        );
        assert!(o.converged, "window {window}: informer never converged");
    }
    println!(
        "\n(shape check: windows smaller than the burst force a full re-list \
         (re-lists ≥ 1);\n windows covering the burst recover by stream replay \
         (re-lists = 0); all converge)\n"
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("a1");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("recovery_small_window", |b| {
        b.iter(|| run_ablation(932, 4, 12).recovery_ms)
    });
    group.bench_function("recovery_large_window", |b| {
        b.iter(|| run_ablation(932, 256, 12).recovery_ms)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
