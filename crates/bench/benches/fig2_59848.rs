//! **F2 — Figure 2**: the Kubernetes-59848 walkthrough, reproduced
//! deterministically, and the cost of one guided reproduction.
//!
//! Prints the violation and its timing once, then benchmarks the wall-clock
//! cost of a full guided reproduction run (the §7 tool's unit of work).
//!
//! Run with `cargo bench -p ph-bench --bench fig2_59848`.

use ph_bench::{criterion_group, criterion_main, Criterion};
use ph_scenarios::{k8s_59848, Variant};

fn print_figure() {
    println!("\n=== F2 (Figure 2): Kubernetes-59848 reproduction ===");
    let mut strategy = k8s_59848::guided(1);
    let report = k8s_59848::run(1, strategy.as_mut(), Variant::Buggy);
    assert!(report.failed(), "the reproduction must fire");
    for v in &report.violations {
        println!("  violation: {v}");
    }
    println!(
        "  detected at sim time of the duplicate start; run covered {} trace \
         events in {} of simulated time",
        report.trace_events, report.sim_time
    );
    let mut strategy = k8s_59848::guided(1);
    let fixed = k8s_59848::run(1, strategy.as_mut(), Variant::Fixed);
    println!(
        "  fixed kubelet under identical injection: {} violations\n",
        fixed.violations.len()
    );
    assert!(fixed.violations.is_empty());
}

fn bench(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_function("guided_reproduction_buggy", |b| {
        b.iter(|| {
            let mut strategy = k8s_59848::guided(1);
            let report = k8s_59848::run(1, strategy.as_mut(), Variant::Buggy);
            assert!(report.failed());
            report.trace_events
        })
    });
    group.bench_function("guided_regression_fixed", |b| {
        b.iter(|| {
            let mut strategy = k8s_59848::guided(1);
            let report = k8s_59848::run(1, strategy.as_mut(), Variant::Fixed);
            assert!(!report.failed());
            report.trace_events
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
