//! **E10 — mega-cluster scale**: throughput and per-object memory of the
//! slab/sharded watch-cache data path at datacenter size. One run per
//! scale point (nodes ∈ {100, 1k, 5k}; pods = clamp(20 × nodes, 10k,
//! 100k)) drives the synthetic demand curve through the store, the
//! apiserver's sharded slab cache, and the watch consumers — the same
//! workload `phtool scale` exposes, timed.
//!
//! Reported per point:
//! * events/sec — trace events over best-of-N wall-clock (the PR 9
//!   headline: ≥ 1M events/sec at the 1k-node point);
//! * cache bytes and bytes/object — the deterministic allocation-footprint
//!   proxy ([`ph_cluster::ObjectSlab::approx_bytes`]) at churn end, which
//!   must grow *sublinearly* per object as nodes scale (interned keys and
//!   struct-of-arrays amortize per-object overhead).
//!
//! Output: a table on stdout and `BENCH_PR9.json` (path override:
//! `PH_BENCH_OUT`). Modes: default = best of `PH_E10_SAMPLES` (3) over
//! all three points; `PH_E10_CHECK=1` = CI smoke, one sample of the
//! 100-node point only, same artifact.
//!
//! Run with `cargo bench -p ph-bench --bench e10_scale`.

use std::fmt::Write as _;
use std::time::Instant;

use ph_bench::{criterion_group, criterion_main, Criterion};

use ph_scenarios::mega_cluster::{run_probed, ScaleParams};

const SEED: u64 = 0xE10;
const POINTS: &[usize] = &[100, 1_000, 5_000];
const SHARDS: usize = 8;

struct Row {
    nodes: usize,
    pods: usize,
    events: u64,
    events_per_sec: f64,
    cache_bytes: usize,
    cache_objects: usize,
    bytes_per_object: f64,
}

fn measure(points: &[usize], samples: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for &nodes in points {
        let params = ScaleParams::for_nodes(nodes, SHARDS);
        let mut events = 0u64;
        let mut best = f64::INFINITY;
        let mut probe = None;
        for _ in 0..samples {
            let t = Instant::now();
            let (report, p) = run_probed(SEED, &params);
            let secs = t.elapsed().as_secs_f64();
            assert!(!report.failed(), "{nodes}-node scale point violated");
            events = report.trace_events as u64;
            best = best.min(secs);
            probe = Some(p);
        }
        let probe = probe.expect("at least one sample");
        rows.push(Row {
            nodes,
            pods: params.pods,
            events,
            events_per_sec: events as f64 / best,
            cache_bytes: probe.cache_bytes,
            cache_objects: probe.cache_objects,
            bytes_per_object: probe.cache_bytes as f64 / probe.cache_objects.max(1) as f64,
        });
    }
    rows
}

fn write_json(rows: &[Row], check_mode: bool) {
    let path = std::env::var("PH_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR9.json".to_string());
    let mut out = String::from("{\n  \"bench\": \"e10_scale\",\n");
    let _ = writeln!(out, "  \"check_mode\": {check_mode},");
    let _ = writeln!(out, "  \"shards\": {SHARDS},");
    out.push_str("  \"points\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"nodes\": {}, \"pods\": {}, \"trace_events\": {}, \
             \"events_per_sec\": {:.0}, \"cache_bytes\": {}, \
             \"cache_objects\": {}, \"bytes_per_object\": {:.1}}}",
            r.nodes,
            r.pods,
            r.events,
            r.events_per_sec,
            r.cache_bytes,
            r.cache_objects,
            r.bytes_per_object
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("   wrote {path}");
}

fn print_table(rows: &[Row]) {
    println!(
        "\n{:>7} {:>8} {:>10} {:>14} {:>12} {:>10} {:>10}",
        "nodes", "pods", "events", "ev/s", "cache-bytes", "objects", "B/object"
    );
    for r in rows {
        println!(
            "{:>7} {:>8} {:>10} {:>14.0} {:>12} {:>10} {:>10.1}",
            r.nodes,
            r.pods,
            r.events,
            r.events_per_sec,
            r.cache_bytes,
            r.cache_objects,
            r.bytes_per_object
        );
    }
}

fn bench(c: &mut Criterion) {
    let check_mode = std::env::var("PH_E10_CHECK").is_ok_and(|v| v == "1");
    let samples: usize = std::env::var("PH_E10_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if check_mode { 1 } else { 3 });
    let points: &[usize] = if check_mode { &POINTS[..1] } else { POINTS };

    println!(
        "\n=== E10: mega-cluster scale ({} point(s), {} sample(s), shards {SHARDS}, \
         demand-curve churn) ===",
        points.len(),
        samples,
    );
    let rows = measure(points, samples);
    print_table(&rows);
    write_json(&rows, check_mode);

    if !check_mode {
        // The PR 9 headline numbers, stated rather than asserted (absolute
        // throughput is machine-dependent; the JSON artifact is the record).
        if let Some(k1) = rows.iter().find(|r| r.nodes == 1_000) {
            println!(
                "   1k-node point: {:.2}M events/sec (target ≥ 1M)",
                k1.events_per_sec / 1e6
            );
        }
        if let (Some(lo), Some(hi)) = (rows.first(), rows.last()) {
            println!(
                "   bytes/object {:.1} → {:.1} across {}→{} nodes (sublinear per-object growth)",
                lo.bytes_per_object, hi.bytes_per_object, lo.nodes, hi.nodes
            );
        }
    }

    // One harness-timed datapoint (a deliberately small point) so the bench
    // integrates with the group output like the other E-benches.
    let mut group = c.benchmark_group("e10_scale");
    group.sample_size(if check_mode { 2 } else { 10 });
    group.measurement_time(std::time::Duration::from_secs(if check_mode {
        1
    } else {
        5
    }));
    group.bench_function("small_point_10_nodes", |b| {
        let params = ScaleParams {
            nodes: 10,
            pods: 200,
            shards: SHARDS,
            watchers: 2,
            churn: ph_sim::Duration::millis(400),
        };
        b.iter(|| run_probed(SEED, &params).0.trace_events)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
