//! **T1 — the §7 results**: "our tool has reproduced two known bugs in
//! Kubernetes … and detected three new bugs in a Kubernetes controller for
//! Cassandra" — as a detection matrix over the seven encoded paper bugs
//! plus the node-fencing hazard this reproduction adds, across six
//! strategies.
//!
//! Expected shape: the guided column detects every bug on trial 1; the
//! baseline heuristics are sparse (CoFI's consistency-guided partitions
//! catch some staleness bugs, matching the paper's §5 observation that such
//! heuristics work *because* they force (H′, S′) to diverge); uniform
//! random injection rarely lands.
//!
//! Trial budget: `PH_TRIALS` env var (default 5).
//!
//! Run with `cargo bench -p ph-bench --bench table1_detection`.

use ph_bench::{criterion_group, criterion_main, Criterion};

use ph_core::harness::{DetectionMatrix, Explorer, RunReport};
use ph_core::perturb::{CoFiPartitions, CrashTunerCrashes, NoFault, RandomCrashes, Strategy};
use ph_scenarios::{
    cass_398, cass_400, cass_402, hbase_3136, k8s_56261, k8s_59848, node_fencing, volume_17,
    Variant,
};
use ph_sim::Duration;

type ScenarioRun = fn(u64, &mut dyn Strategy, Variant) -> RunReport;
type Guided = fn(u64) -> Box<dyn Strategy>;

fn scenarios() -> Vec<(&'static str, ScenarioRun, Guided)> {
    vec![
        (
            k8s_59848::NAME,
            k8s_59848::run as ScenarioRun,
            k8s_59848::guided as Guided,
        ),
        (k8s_56261::NAME, k8s_56261::run, k8s_56261::guided),
        (volume_17::NAME, volume_17::run, volume_17::guided),
        (cass_398::NAME, cass_398::run, cass_398::guided),
        (cass_400::NAME, cass_400::run, cass_400::guided),
        (cass_402::NAME, cass_402::run, cass_402::guided),
        (hbase_3136::NAME, hbase_3136::run, hbase_3136::guided),
        (node_fencing::NAME, node_fencing::run, node_fencing::guided),
    ]
}

fn baseline(kind: &str, seed: u64) -> Box<dyn Strategy> {
    match kind {
        "random-crash" => Box::new(RandomCrashes {
            seed,
            count: 3,
            down: Duration::millis(300),
        }),
        "crashtuner" => Box::new(CrashTunerCrashes::new(seed, 0.02, 3, Duration::millis(300))),
        "cofi" => Box::new(CoFiPartitions::new(seed, 0.02, 3, Duration::millis(500))),
        _ => Box::new(NoFault),
    }
}

fn build_matrix(max_trials: u32) -> DetectionMatrix {
    let explorer = Explorer {
        max_trials,
        base_seed: 1000,
    };
    let mut matrix = DetectionMatrix::new();
    for (name, run, guided) in scenarios() {
        let mut outcome =
            explorer.explore(name, &|seed, s| run(seed, s, Variant::Buggy), &|seed| {
                guided(seed)
            });
        outcome.strategy = "guided".into();
        matrix.add(outcome);
        for kind in ["random-crash", "crashtuner", "cofi", "no-fault"] {
            let outcome =
                explorer.explore(name, &|seed, s| run(seed, s, Variant::Buggy), &|seed| {
                    baseline(kind, seed)
                });
            matrix.add(outcome);
        }
    }
    matrix
}

fn print_table() -> DetectionMatrix {
    let trials: u32 = std::env::var("PH_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    println!("\n=== T1 (§7 results): detection matrix, budget {trials} trials/cell ===\n");
    let matrix = build_matrix(trials);
    println!("{}", matrix.render());
    let guided_detected = matrix
        .cells()
        .iter()
        .filter(|c| c.strategy == "guided" && c.detected())
        .count();
    println!("guided: {guided_detected}/8 detected (expected 8/8 on trial 1)");
    assert_eq!(guided_detected, 8, "guided strategies must find every bug");
    matrix
}

fn bench(c: &mut Criterion) {
    let _ = print_table();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    // The tool's unit of work: one guided trial on the fastest scenario.
    group.bench_function("one_guided_trial_volume17", |b| {
        b.iter(|| {
            let mut s = volume_17::guided(1);
            volume_17::run(1, s.as_mut(), Variant::Buggy).failed()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
