//! **F1 — Figure 1 / §4.1**: why the caches (and hence partial histories)
//! exist. Read throughput served from an apiserver's watch cache vs quorum
//! reads through the replicated store, as component fan-out grows.
//!
//! Expected shape: cache reads outscale quorum reads by a large factor at
//! high fan-out — "the caches prevent etcd from being the bottleneck of the
//! entire system" — which is exactly the §4.1 pressure that makes partial
//! histories unavoidable.
//!
//! Run with `cargo bench -p ph-bench --bench fig1_cache_pressure`.

use ph_bench::{criterion_group, criterion_main, Criterion};

use ph_cluster::apiclient::{ApiClient, ApiClientConfig, ApiCompletion};
use ph_cluster::apiserver::{ApiServer, ApiServerConfig};
use ph_cluster::objects::Object;
use ph_sim::{Actor, ActorId, AnyMsg, Ctx, Duration, SimTime, TimerId, World, WorldConfig};
use ph_store::client::BasicClient;
use ph_store::node::StoreNodeConfig;
use ph_store::{spawn_store_cluster, StoreClient, StoreClientConfig};

/// A closed-loop reader: issues the next read as soon as one completes.
struct Reader {
    client: ApiClient,
    fresh: bool,
    completed: u64,
    outstanding: bool,
}

impl Reader {
    fn issue(&mut self, ctx: &mut Ctx) {
        self.client.get("nodes/n0", self.fresh, ctx);
        self.outstanding = true;
    }
}

impl Actor for Reader {
    fn on_start(&mut self, ctx: &mut Ctx) {
        ctx.set_timer(Duration::millis(20), 0);
    }
    fn on_message(&mut self, from: ActorId, msg: AnyMsg, ctx: &mut Ctx) {
        let mut out = Vec::new();
        if self.client.on_message(from, &msg, ctx, &mut out) {
            for c in out {
                if matches!(c, ApiCompletion::Done { .. }) {
                    self.completed += 1;
                    self.outstanding = false;
                }
            }
            if !self.outstanding {
                self.issue(ctx);
            }
        }
    }
    fn on_timer(&mut self, _t: TimerId, _tag: u64, ctx: &mut Ctx) {
        self.client.tick(ctx);
        if !self.outstanding {
            self.issue(ctx);
        }
        ctx.set_timer(Duration::millis(20), 0);
    }
}

/// Runs `n_readers` closed-loop readers for one simulated second; returns
/// total completed reads.
fn run_fanout(seed: u64, n_readers: usize, fresh: bool) -> u64 {
    let mut world = World::new(WorldConfig::default(), seed);
    // Finite capacities: the store can serve one quorum read per 200µs,
    // the apiserver one cache read per 50µs — the §4.1 asymmetry.
    let store_cfg = StoreNodeConfig {
        read_service: Duration::micros(200),
        ..StoreNodeConfig::default()
    };
    let store = spawn_store_cluster(&mut world, 3, store_cfg);
    // Two apiservers: cache capacity scales horizontally; the store's does
    // not — that is the architecture of Figure 1.
    let apis: Vec<_> = (0..2)
        .map(|i| {
            let scc = StoreClientConfig::new(store.nodes.clone());
            let mut api_cfg = ApiServerConfig::new(scc);
            api_cfg.read_service = Duration::micros(50);
            world.spawn(&format!("apiserver-{}", i + 1), ApiServer::new(api_cfg))
        })
        .collect();
    store
        .wait_for_leader(&mut world, SimTime(Duration::secs(1).as_nanos()))
        .expect("leader");

    // Seed the key the readers hit, directly through the store.
    let admin = world.spawn(
        "admin",
        BasicClient::new(
            StoreClient::new(StoreClientConfig::new(store.nodes.clone())),
            Duration::millis(20),
        ),
    );
    let req = world.invoke::<BasicClient, _>(admin, |bc, ctx| {
        bc.client.put("nodes/n0", Object::node("n0").encode(), ctx)
    });
    while world
        .actor_ref::<BasicClient>(admin)
        .expect("admin")
        .result_of(req)
        .is_none()
    {
        world.step();
    }
    world.run_until(SimTime(Duration::secs(1).as_nanos()));

    let readers: Vec<ActorId> = (0..n_readers)
        .map(|i| {
            let cfg = ApiClientConfig::new(vec![apis[i % apis.len()]]);
            world.spawn(
                &format!("reader-{i}"),
                Reader {
                    client: ApiClient::new(cfg, 0),
                    fresh,
                    completed: 0,
                    outstanding: false,
                },
            )
        })
        .collect();
    world.run_for(Duration::secs(1));
    readers
        .iter()
        .map(|&r| world.actor_ref::<Reader>(r).expect("reader").completed)
        .sum()
}

fn print_figure() {
    println!("\n=== F1 (Figure 1 / §4.1): reads per simulated second vs fan-out ===");
    println!(
        "{:<8} {:>16} {:>16} {:>8}",
        "fan-out", "cache reads/s", "quorum reads/s", "ratio"
    );
    for n in [1usize, 2, 4, 8, 16, 32] {
        let cache = run_fanout(901, n, false);
        let quorum = run_fanout(901, n, true);
        println!(
            "{:<8} {:>16} {:>16} {:>7.1}x",
            n,
            cache,
            quorum,
            cache as f64 / quorum.max(1) as f64
        );
    }
    println!(
        "(shape check: quorum reads saturate at the store's capacity (~5k/s) while\n          cache reads keep scaling — the caches keep the store from being the bottleneck)\n"
    );
}

fn bench(c: &mut Criterion) {
    print_figure();
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("cache_reads_fanout8", |b| {
        b.iter(|| run_fanout(902, 8, false))
    });
    group.bench_function("quorum_reads_fanout8", |b| {
        b.iter(|| run_fanout(902, 8, true))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
