//! **E1 — HBASE-3136 / HBASE-3137 (§4.2.1)**: the staleness/performance
//! trade-off. The 3136 fix (sync before every CAS) eliminates stale-CAS
//! aborts — and 3137 was filed immediately after, reporting the throughput
//! cost of that sync. Both sides measured here.
//!
//! Expected shape: the buggy (serializable-read) manager completes more
//! transitions per simulated second at zero lag but aborts regions once the
//! follower lags; the fixed (sync-first) manager never aborts at any lag,
//! at a lower transition rate.
//!
//! Run with `cargo bench -p ph-bench --bench e1_hbase_tradeoff`.

use ph_bench::{criterion_group, criterion_main, Criterion};

use ph_core::perturb::{StalenessInjector, Strategy, Targets};
use ph_scenarios::hbase_3136::RegionManager;
use ph_sim::{Duration, SimTime, World, WorldConfig};
use ph_store::node::StoreNodeConfig;
use ph_store::{spawn_store_cluster, StoreClient, StoreClientConfig};

struct Outcome {
    transitions: u64,
    broken: usize,
}

/// Runs 4 regions for 4 simulated seconds at the given follower lag.
fn run_manager(seed: u64, fixed: bool, lag: Duration) -> Outcome {
    let mut world = World::new(WorldConfig::default(), seed);
    let cluster = spawn_store_cluster(&mut world, 3, StoreNodeConfig::default());
    let leader = cluster
        .wait_for_leader(&mut world, SimTime(Duration::secs(1).as_nanos()))
        .expect("leader");
    world.run_until(SimTime(Duration::secs(1).as_nanos()));
    let follower = *cluster.nodes.iter().find(|&&n| n != leader).unwrap();
    let follower_idx = cluster.nodes.iter().position(|&n| n == follower).unwrap();

    let mut scc = StoreClientConfig::new(cluster.nodes.clone());
    scc.affinity = Some(follower_idx);
    let manager = world.spawn(
        "region-manager",
        RegionManager::new(StoreClient::new(scc), 4, Duration::millis(50), fixed),
    );

    let targets = Targets {
        store_nodes: cluster.nodes.clone(),
        caches: [follower].into(),
        components: [manager].into(),
        notify_kinds: ["RaftWire".to_string()].into(),
        horizon: Duration::secs(5),
    };
    let mut strategy = StalenessInjector {
        cache: 0,
        delay: lag,
        after: Duration::millis(1500),
    };
    strategy.setup(&mut world, &targets);
    world.run_until(SimTime(Duration::secs(5).as_nanos()));
    strategy.teardown(&mut world);

    let m = world.actor_ref::<RegionManager>(manager).expect("manager");
    Outcome {
        transitions: m.total_transitions(),
        broken: m.broken_regions(),
    }
}

fn print_table() {
    println!("\n=== E1 (HBASE-3136/3137): stale-CAS aborts vs sync cost ===\n");
    println!(
        "{:<12} {:<22} {:>14} {:>16}",
        "lag", "variant", "transitions/4s", "broken regions"
    );
    for lag_ms in [0u64, 30, 90] {
        for fixed in [false, true] {
            let o = run_manager(921, fixed, Duration::millis(lag_ms));
            println!(
                "{:<12} {:<22} {:>14} {:>16}",
                format!("{lag_ms}ms"),
                if fixed {
                    "fixed (sync-first)"
                } else {
                    "buggy (follower read)"
                },
                o.transitions,
                o.broken
            );
        }
    }
    println!(
        "\n(shape check: buggy leads on transitions at 0ms lag but breaks \
         regions at 90ms;\n fixed never breaks a region at any lag — the \
         HBASE-3137 price is the lower rate)\n"
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut group = c.benchmark_group("e1");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(4));
    group.bench_function("buggy_no_lag", |b| {
        b.iter(|| run_manager(922, false, Duration::ZERO).transitions)
    });
    group.bench_function("fixed_no_lag", |b| {
        b.iter(|| run_manager(922, true, Duration::ZERO).transitions)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
