//! **E5 — hot-path throughput**: events/sec and trials/sec for every
//! registered scenario, single-threaded, measuring the steady-state sim
//! hot path (scheduling, watch fan-out, metrics, trace append) that PR 4's
//! zero-copy work targets. The workload is the no-fault buggy variant so
//! every run executes its full horizon and the measurement is pure
//! throughput — no early aborts, no oracle violations cutting trials short.
//!
//! Output:
//! * a per-scenario table on stdout (events/sec, trials/sec, speedup vs.
//!   the recorded pre-PR baseline);
//! * `BENCH_PR4.json` (path override: `PH_BENCH_OUT`), recording baseline
//!   and current numbers side by side.
//!
//! Modes:
//! * default — full measurement (best of `PH_E5_SAMPLES`, default 3);
//! * `PH_E5_CHECK=1` — CI smoke: one sample per scenario, no speedup
//!   assertion, still writes the JSON artifact.
//!
//! The `BASELINE` table was measured on this machine at the pre-PR commit
//! (`f6b3b7b`, immediately before the zero-copy changes): best events/sec
//! and trials/sec per scenario across three full runs of this bench, so
//! the reference is the *most favorable* pre-PR figure. EXPERIMENTS.md E5
//! quotes both columns.
//!
//! Run with `cargo bench -p ph-bench --bench e5_hot_path`.

use std::fmt::Write as _;
use std::time::Instant;

use ph_bench::{criterion_group, criterion_main, Criterion};

use ph_core::harness::Explorer;
use ph_core::perturb::{NoFault, Strategy};
use ph_scenarios::{scenario_statics, Variant};

/// Pre-PR events/sec and trials/sec per scenario (see module docs).
const BASELINE: &[(&str, f64, f64)] = &[
    ("k8s-59848", 1_436_628.0, 132.71),
    ("k8s-56261", 1_283_779.0, 73.32),
    ("volume-ctrl-17", 1_438_683.0, 117.98),
    ("cass-op-398", 1_321_696.0, 59.94),
    ("cass-op-400", 1_308_028.0, 62.64),
    ("cass-op-402", 1_302_661.0, 68.96),
    ("hbase-3136", 1_211_665.0, 4.97),
    ("node-fencing", 1_302_209.0, 52.81),
];

const SEED: u64 = 0xE5;
const TRIALS: u32 = 4;

struct Row {
    name: &'static str,
    events: u64,
    events_per_sec: f64,
    trials_per_sec: f64,
}

fn baseline_for(name: &str) -> Option<(f64, f64)> {
    BASELINE
        .iter()
        .find(|(n, _, _)| *n == name)
        .map(|&(_, eps, tps)| (eps, tps))
}

/// One timed single-trial run; returns (trace events, seconds).
fn time_one_run(
    run: fn(u64, &mut dyn Strategy, Variant) -> ph_core::harness::RunReport,
) -> (u64, f64) {
    let mut strategy = NoFault;
    let t = Instant::now();
    let report = run(SEED, &mut strategy, Variant::Buggy);
    let secs = t.elapsed().as_secs_f64();
    (report.trace_events as u64, secs)
}

fn measure(samples: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for entry in scenario_statics() {
        // events/sec: best-of-N single trials (min wall-clock).
        let mut events = 0u64;
        let mut best = f64::INFINITY;
        for _ in 0..samples {
            let (n, secs) = time_one_run(entry.run);
            events = n;
            best = best.min(secs);
        }
        let events_per_sec = events as f64 / best;

        // trials/sec: one sequential Explorer sweep (the phtool matrix
        // building block); no-fault so the full budget executes.
        let explorer = Explorer {
            max_trials: TRIALS,
            base_seed: SEED,
        };
        let run = entry.run;
        let t = Instant::now();
        let outcome = explorer.explore(
            entry.name,
            &|seed, s| run(seed, s, Variant::Buggy),
            &|_seed| Box::new(NoFault) as Box<dyn Strategy>,
        );
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(outcome.trials_run, TRIALS, "{}: trial aborted", entry.name);
        rows.push(Row {
            name: entry.name,
            events,
            events_per_sec,
            trials_per_sec: TRIALS as f64 / secs,
        });
    }
    rows
}

fn write_json(rows: &[Row], check_mode: bool) {
    let path = std::env::var("PH_BENCH_OUT").unwrap_or_else(|_| "BENCH_PR4.json".to_string());
    let mut out = String::from("{\n  \"bench\": \"e5_hot_path\",\n");
    let _ = writeln!(out, "  \"check_mode\": {check_mode},");
    let _ = writeln!(out, "  \"trials_per_sweep\": {TRIALS},");
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let (base_eps, base_tps) = baseline_for(r.name).unwrap_or((0.0, 0.0));
        let speedup = if base_eps > 0.0 {
            r.events_per_sec / base_eps
        } else {
            0.0
        };
        let _ = write!(
            out,
            "    {{\"scenario\": \"{}\", \"trace_events\": {}, \
             \"baseline_events_per_sec\": {:.0}, \"events_per_sec\": {:.0}, \
             \"baseline_trials_per_sec\": {:.2}, \"trials_per_sec\": {:.2}, \
             \"events_speedup\": {:.3}}}",
            r.name, r.events, base_eps, r.events_per_sec, base_tps, r.trials_per_sec, speedup
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("   wrote {path}");
}

fn print_table(rows: &[Row]) {
    println!(
        "\n{:>16} {:>10} {:>14} {:>14} {:>9} {:>12}",
        "scenario", "events", "base ev/s", "ev/s", "speedup", "trials/s"
    );
    for r in rows {
        let (base_eps, _) = baseline_for(r.name).unwrap_or((0.0, 0.0));
        let speedup = if base_eps > 0.0 {
            r.events_per_sec / base_eps
        } else {
            0.0
        };
        println!(
            "{:>16} {:>10} {:>14.0} {:>14.0} {:>8.2}x {:>12.2}",
            r.name, r.events, base_eps, r.events_per_sec, speedup, r.trials_per_sec
        );
    }
}

fn bench(c: &mut Criterion) {
    let check_mode = std::env::var("PH_E5_CHECK").is_ok_and(|v| v == "1");
    let samples: usize = std::env::var("PH_E5_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if check_mode { 1 } else { 3 });

    println!(
        "\n=== E5: hot-path throughput ({} scenario(s), {} sample(s), \
         single-thread, no-fault buggy variant) ===",
        scenario_statics().len(),
        samples,
    );
    let rows = measure(samples);
    print_table(&rows);
    write_json(&rows, check_mode);

    if !check_mode {
        let improved = rows
            .iter()
            .filter(|r| {
                baseline_for(r.name).is_some_and(|(eps, _)| eps > 0.0 && r.events_per_sec >= eps)
            })
            .count();
        println!(
            "   {improved}/{} scenarios at or above baseline",
            rows.len()
        );
    }

    // Keep one harness-timed datapoint so the bench integrates with the
    // group output like the other E-benches.
    let mut group = c.benchmark_group("e5_hot_path");
    group.sample_size(if check_mode { 2 } else { 10 });
    group.measurement_time(std::time::Duration::from_secs(if check_mode {
        1
    } else {
        5
    }));
    let entry = &scenario_statics()[0];
    let run = entry.run;
    group.bench_function("single_trial_k8s_59848", |b| {
        b.iter(|| {
            let mut s = NoFault;
            run(SEED, &mut s, Variant::Buggy).trace_events
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
