//! **E9 — partial-order reduction and canonical-schedule dedup**: what the
//! static independence relation buys at both ends of the pipeline.
//!
//! Two tables, one JSON artifact:
//!
//! * **Model checker** — `states_expanded` under exhaustive vs
//!   sleep-set-reduced expansion for every buggy focal component, with the
//!   reduction ratio (verdicts and witnesses are equal by the
//!   `reduction_equivalence` test; this bench records the work saved).
//! * **Hunt** — witness-guided trials to first detection with canonical
//!   dedup off (every realization runs) vs on (one representative per
//!   [`ph_core::plan_class`]), plus wall-clock per hunt. Detection must
//!   not change; only the trial budget spent may shrink.
//!
//! Writes `BENCH_PR8.json` (path override: `PH_BENCH_E9_OUT`) next to
//! `BENCH_PR4.json`.
//!
//! Run with `cargo bench -p ph-bench --bench e9_reduction`.

use std::fmt::Write as _;
use std::time::Instant;

use ph_bench::{criterion_group, criterion_main, Criterion};
use ph_lint::modelcheck::{model_check, model_check_exhaustive};
use ph_scenarios::witness_bridge::{first_detection, witness_plan, witness_realizations};
use ph_scenarios::{scenario_statics, Variant};

struct CheckRow {
    scenario: &'static str,
    component: String,
    exhaustive: usize,
    reduced: usize,
}

struct HuntRow {
    scenario: &'static str,
    raw_trials: usize,
    kept_trials: usize,
    deduped: u32,
    detect_raw: Option<u32>,
    detect_deduped: Option<u32>,
    secs_raw: f64,
    secs_deduped: f64,
}

fn ratio(exhaustive: usize, reduced: usize) -> f64 {
    exhaustive as f64 / reduced.max(1) as f64
}

fn sweep_model_check() -> Vec<CheckRow> {
    let mut rows = Vec::new();
    println!(
        "-- E9a: model-checker states expanded, exhaustive vs reduced (buggy components) --\n"
    );
    println!(
        "{:<16} {:<20} {:>11} {:>9} {:>7}",
        "scenario", "component", "exhaustive", "reduced", "ratio"
    );
    for entry in scenario_statics() {
        for summary in (entry.summaries)(Variant::Buggy) {
            let full = model_check_exhaustive(&summary);
            let reduced = model_check(&summary);
            println!(
                "{:<16} {:<20} {:>11} {:>9} {:>6.1}x",
                entry.name,
                summary.component,
                full.states_expanded,
                reduced.states_expanded,
                ratio(full.states_expanded, reduced.states_expanded),
            );
            rows.push(CheckRow {
                scenario: entry.name,
                component: summary.component.clone(),
                exhaustive: full.states_expanded,
                reduced: reduced.states_expanded,
            });
        }
    }
    println!();
    rows
}

fn run_hunt(
    entry: &ph_scenarios::StaticEntry,
    mut priors: Vec<Box<dyn ph_core::perturb::Strategy>>,
) -> (Option<u32>, f64) {
    let budget = priors.len().max(1);
    let mut it = priors.drain(..);
    let t = Instant::now();
    let found = first_detection(entry, budget, 0xE9, move |_trial, _seed| {
        it.next().expect("budget equals prior count")
    });
    (found, t.elapsed().as_secs_f64())
}

fn sweep_hunts() -> Vec<HuntRow> {
    let mut rows = Vec::new();
    println!("-- E9b: witness-guided hunt, canonical dedup off vs on --\n");
    println!(
        "{:<16} {:>6} {:>6} {:>8} {:>11} {:>11} {:>9} {:>9}",
        "scenario", "raw", "kept", "deduped", "detect-raw", "detect-dd", "raw-sec", "dd-sec"
    );
    for entry in scenario_statics() {
        let raw = witness_realizations(&entry);
        if raw.is_empty() {
            continue;
        }
        let (kept, stats) = witness_plan(&entry);
        let (raw_trials, kept_trials) = (raw.len(), kept.len());
        let (detect_raw, secs_raw) = run_hunt(&entry, raw);
        let (detect_deduped, secs_deduped) = run_hunt(&entry, kept);
        // Dedup may only drop duplicate classes: if the full list detects,
        // the representatives must too.
        assert_eq!(
            detect_raw.is_some(),
            detect_deduped.is_some(),
            "{}: canonical dedup changed detection",
            entry.name
        );
        println!(
            "{:<16} {:>6} {:>6} {:>8} {:>11} {:>11} {:>8.2}s {:>8.2}s",
            entry.name,
            raw_trials,
            kept_trials,
            stats.deduped_trials,
            detect_raw.map_or("none".into(), |t| t.to_string()),
            detect_deduped.map_or("none".into(), |t| t.to_string()),
            secs_raw,
            secs_deduped,
        );
        rows.push(HuntRow {
            scenario: entry.name,
            raw_trials,
            kept_trials,
            deduped: stats.deduped_trials,
            detect_raw,
            detect_deduped,
            secs_raw,
            secs_deduped,
        });
    }
    println!();
    rows
}

fn write_json(checks: &[CheckRow], hunts: &[HuntRow]) {
    let path = std::env::var("PH_BENCH_E9_OUT").unwrap_or_else(|_| "BENCH_PR8.json".to_string());
    let mut out = String::from("{\n  \"bench\": \"e9_reduction\",\n  \"model_check\": [\n");
    for (i, r) in checks.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"scenario\": \"{}\", \"component\": \"{}\", \"states_exhaustive\": {}, \
             \"states_reduced\": {}, \"ratio\": {:.2}}}{}",
            r.scenario,
            r.component,
            r.exhaustive,
            r.reduced,
            ratio(r.exhaustive, r.reduced),
            if i + 1 < checks.len() { "," } else { "" },
        );
    }
    out.push_str("  ],\n  \"hunts\": [\n");
    for (i, r) in hunts.iter().enumerate() {
        let fmt_detect = |d: Option<u32>| d.map_or("null".to_string(), |t| t.to_string());
        let _ = writeln!(
            out,
            "    {{\"scenario\": \"{}\", \"raw_trials\": {}, \"kept_trials\": {}, \
             \"deduped_trials\": {}, \"first_detection_raw\": {}, \
             \"first_detection_deduped\": {}, \"secs_raw\": {:.4}, \"secs_deduped\": {:.4}}}{}",
            r.scenario,
            r.raw_trials,
            r.kept_trials,
            r.deduped,
            fmt_detect(r.detect_raw),
            fmt_detect(r.detect_deduped),
            r.secs_raw,
            r.secs_deduped,
            if i + 1 < hunts.len() { "," } else { "" },
        );
    }
    out.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&path, &out) {
        eprintln!("could not write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

fn bench(c: &mut Criterion) {
    let checks = sweep_model_check();
    let hunts = sweep_hunts();
    write_json(&checks, &hunts);

    let mut group = c.benchmark_group("e9");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    let heavy = scenario_statics()
        .into_iter()
        .find(|e| e.name == "cass-op-402")
        .expect("scenario table");
    let summary = (heavy.summaries)(Variant::Buggy).remove(0);
    group.bench_function("model_check_exhaustive_cass402", |b| {
        b.iter(|| model_check_exhaustive(&summary).states_expanded)
    });
    group.bench_function("model_check_reduced_cass402", |b| {
        b.iter(|| model_check(&summary).states_expanded)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
