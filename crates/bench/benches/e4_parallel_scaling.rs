//! **E4 — parallel exploration scaling**: trials/sec vs worker count for
//! the deterministic `ph-core::parallel` pool, plus the equivalence check
//! that makes the speedup admissible — the [`ph_core::TrialOutcome`] and
//! rendered detection/effort tables must be byte-identical at every
//! thread count (same root seed, same trial seeds, same merge).
//!
//! The workload is a no-detection cell (no-fault strategy), so every
//! trial in the budget executes and the measurement is pure throughput —
//! early-cancel never kicks in. Expected shape: near-linear scaling up to
//! the machine's core count (a 1-core container shows ~1× by
//! construction; see EXPERIMENTS.md E4 for recorded curves).
//!
//! Trial budget: `PH_TRIALS4` env var (default 16).
//!
//! Run with `cargo bench -p ph-bench --bench e4_parallel_scaling`.

use std::time::Instant;

use ph_bench::{criterion_group, criterion_main, Criterion};

use ph_core::harness::{DetectionMatrix, Explorer};
use ph_core::perturb::{NoFault, Strategy};
use ph_scenarios::{cass_398, Variant};

fn print_scaling_curve() {
    let budget: u32 = std::env::var("PH_TRIALS4")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);
    let explorer = Explorer {
        max_trials: budget,
        base_seed: 0x5CA1E,
    };
    let scenario = |seed: u64, s: &mut dyn Strategy| cass_398::run(seed, s, Variant::Buggy);
    let factory = |_seed: u64| Box::new(NoFault) as Box<dyn Strategy>;

    println!(
        "\n=== E4: parallel exploration scaling ({budget} trials of {}, no-fault, \
         {} core(s) available) ===\n",
        cass_398::NAME,
        ph_core::default_threads(),
    );
    println!(
        "{:>8} {:>12} {:>12} {:>10}   output",
        "threads", "wall-clock", "trials/sec", "speedup"
    );

    // The sequential path is the reference for both timing and bytes.
    let t = Instant::now();
    let reference = explorer.explore(cass_398::NAME, &scenario, &factory);
    let seq_secs = t.elapsed().as_secs_f64();
    let reference_effort = {
        let mut m = DetectionMatrix::new();
        m.add(reference.clone());
        m.render_effort()
    };
    println!(
        "{:>8} {:>11.2}s {:>12.1} {:>9.2}x   (sequential reference)",
        "seq",
        seq_secs,
        budget as f64 / seq_secs,
        1.0
    );

    for threads in [1usize, 2, 4, 8] {
        let t = Instant::now();
        let outcome = explorer.explore_parallel(threads, cass_398::NAME, &scenario, &factory);
        let secs = t.elapsed().as_secs_f64();
        let effort = {
            let mut m = DetectionMatrix::new();
            m.add(outcome.clone());
            m.render_effort()
        };
        let identical = effort == reference_effort
            && outcome.trials_run == reference.trials_run
            && outcome.total_events == reference.total_events
            && outcome.total_sim_ns == reference.total_sim_ns;
        println!(
            "{threads:>8} {:>11.2}s {:>12.1} {:>9.2}x   {}",
            secs,
            budget as f64 / secs,
            seq_secs / secs,
            if identical { "identical" } else { "DIVERGED" }
        );
        assert!(
            identical,
            "{threads} threads: parallel outcome diverged from sequential"
        );
    }
    println!(
        "\n(trial seeds are positional — splitmix64(root, idx) — so every row \
         explores the same trials; only wall-clock may differ)\n"
    );
}

fn bench(c: &mut Criterion) {
    print_scaling_curve();
    let mut group = c.benchmark_group("e4_parallel_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    // Per-iteration cost of one pooled 4-trial exploration, the phtool
    // matrix building block.
    group.bench_function("explore_parallel_4trials", |b| {
        let explorer = Explorer {
            max_trials: 4,
            base_seed: 0x5CA1E,
        };
        b.iter(|| {
            explorer
                .explore_parallel(
                    ph_core::default_threads(),
                    cass_398::NAME,
                    &|seed, s| cass_398::run(seed, s, Variant::Buggy),
                    &|_seed| Box::new(NoFault) as Box<dyn Strategy>,
                )
                .total_events
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
