//! **E2 — §6.2**: the epoch-bounded programming model's granularity knob.
//!
//! "The granularity of an epoch can be adjusted to balance performance and
//! coordination costs." For a fixed notification feed, sweep the epoch
//! size and measure: the staleness bound the consumer enjoys, the peak
//! buffering (coordination cost), and — under a lossy feed — how many gaps
//! are *detected* (never silent) per size.
//!
//! Expected shape: staleness bound and peak buffer grow with epoch size;
//! detected-gap count shrinks (coarser loss granularity); silent gaps are
//! zero at every size.
//!
//! Run with `cargo bench -p ph-bench --bench e2_epochs`.

use ph_bench::{criterion_group, criterion_main, Criterion};

use ph_core::epoch::{EpochBuffer, EpochError, EpochPartition};
use ph_core::history::{Change, ChangeOp, History};
use ph_sim::SimRng;

fn synthetic_feed(n: u64, loss: f64, seed: u64) -> (History, Vec<Change>) {
    let mut h = History::new();
    let mut rng = SimRng::from_seed(seed);
    let mut alive = [false; 10];
    for _ in 0..n {
        let e = rng.below(10) as usize;
        let entity = format!("obj{e}");
        if !alive[e] {
            h.append(entity, ChangeOp::Create);
            alive[e] = true;
        } else if rng.chance(0.3) {
            h.append(entity, ChangeOp::Delete);
            alive[e] = false;
        } else {
            h.append(entity, ChangeOp::Update(rng.below(1000)));
        }
    }
    let delivered = h
        .changes()
        .iter()
        .filter(|_| !rng.chance(loss))
        .cloned()
        .collect();
    (h, delivered)
}

struct EpochOutcome {
    complete: u64,
    detected_gaps: u64,
    delivered_events: u64,
    peak_buffer: usize,
    /// Max staleness (events) the consumer's released view trailed H by,
    /// sampled after each push.
    max_staleness: u64,
}

fn run_epochs(size: u64, h: &History, feed: &[Change]) -> EpochOutcome {
    let mut buf = EpochBuffer::new(EpochPartition::new(size));
    let mut complete = 0;
    let mut detected = 0;
    let mut delivered = 0;
    let mut max_staleness = 0;
    for c in feed {
        let committed = c.seq; // feed arrives in commit order
        buf.push(c.clone());
        loop {
            match buf.release_next(committed) {
                Ok(epoch) => {
                    complete += 1;
                    delivered += epoch.len() as u64;
                }
                Err(EpochError::Incomplete { .. }) => {
                    detected += 1;
                    buf.skip_epoch();
                }
                Err(EpochError::NotSealed { .. }) => break,
            }
        }
        max_staleness = max_staleness.max(buf.staleness_bound(committed));
    }
    // Drain what the end of the run seals.
    loop {
        match buf.release_next(h.len()) {
            Ok(epoch) => {
                complete += 1;
                delivered += epoch.len() as u64;
            }
            Err(EpochError::Incomplete { .. }) => {
                detected += 1;
                buf.skip_epoch();
            }
            Err(EpochError::NotSealed { .. }) => break,
        }
    }
    EpochOutcome {
        complete,
        detected_gaps: detected,
        delivered_events: delivered,
        peak_buffer: buf.peak_buffered(),
        max_staleness,
    }
}

fn print_table() {
    let (h, feed) = synthetic_feed(512, 0.05, 44);
    let lost = h.len() as usize - feed.len();
    println!("\n=== E2 (§6.2): epoch granularity sweep (512 events, {lost} lost) ===\n");
    println!(
        "{:<12} {:>10} {:>15} {:>16} {:>12} {:>14}",
        "epoch size",
        "complete",
        "detected gaps",
        "events delivered",
        "peak buffer",
        "max staleness"
    );
    for size in [1u64, 2, 4, 8, 16, 32, 64] {
        let o = run_epochs(size, &h, &feed);
        println!(
            "{:<12} {:>10} {:>15} {:>16} {:>12} {:>14}",
            size, o.complete, o.detected_gaps, o.delivered_events, o.peak_buffer, o.max_staleness
        );
        // The §6.2 guarantee: everything either arrives in a complete epoch
        // or falls in a *detected* (skipped) one — nothing silently partial.
        assert_eq!(
            o.delivered_events % size,
            0,
            "released epochs must be whole"
        );
    }
    println!(
        "\n(shape check: staleness bound and peak buffer grow with epoch size; \
         detected gaps shrink; no silent gaps at any size)\n"
    );
}

fn bench(c: &mut Criterion) {
    print_table();
    let (h, feed) = synthetic_feed(4096, 0.02, 45);
    let mut group = c.benchmark_group("e2");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    for size in [4u64, 32] {
        group.bench_function(format!("epoch_pipeline_size_{size}"), |b| {
            b.iter(|| run_epochs(size, &h, &feed).delivered_events)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
