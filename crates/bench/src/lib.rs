//! Benchmark crate: every figure and result of the paper regenerates from a
//! bench under `benches/`. See EXPERIMENTS.md for the mapping and recorded
//! outputs.
//!
//! The crate also ships the tiny measurement harness the benches run on.
//! It mirrors the subset of the Criterion API the benches use
//! (`benchmark_group` / `sample_size` / `measurement_time` /
//! `bench_function` / `iter` and the `criterion_group!` /
//! `criterion_main!` macros) so the bench sources read like standard Rust
//! benchmarks while building fully offline, with no third-party
//! dependencies.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Top-level harness handle, passed as `&mut Criterion` into each bench
/// function by [`criterion_group!`].
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related measurements.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        // ph-lint: allow(stray-print, the bench harness reports results on stdout by design)
        println!("-- bench group: {name} --");
        BenchmarkGroup {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
        }
    }
}

/// A group of measurements sharing a sample budget.
pub struct BenchmarkGroup {
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup {
    /// Caps the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total wall-clock time spent sampling one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Times `f` and prints min / mean / max per-iteration wall-clock time.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        // One untimed warm-up pass.
        f(&mut b);
        b.samples.clear();
        // ph-lint: allow(wall-clock, the measurement harness times real execution)
        let started = Instant::now();
        while b.samples.len() < self.sample_size && started.elapsed() < self.measurement_time {
            f(&mut b);
        }
        let (min, mean, max) = b.stats();
        // ph-lint: allow(stray-print, the bench harness reports results on stdout by design)
        println!(
            "   {id}: {} samples, min {} / mean {} / max {}",
            b.samples.len(),
            fmt_nanos(min),
            fmt_nanos(mean),
            fmt_nanos(max),
        );
        self
    }

    /// Closes the group (kept for API parity; all output is immediate).
    pub fn finish(&mut self) {}
}

/// Per-benchmark timing context handed to the closure of
/// [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    samples: Vec<u128>,
}

impl Bencher {
    /// Times one execution of `f`, keeping its result opaque to the
    /// optimizer.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // ph-lint: allow(wall-clock, the measurement harness times real execution)
        let t = Instant::now();
        let out = f();
        self.samples.push(t.elapsed().as_nanos());
        std::hint::black_box(out);
    }

    fn stats(&self) -> (u128, u128, u128) {
        if self.samples.is_empty() {
            return (0, 0, 0);
        }
        let min = *self.samples.iter().min().unwrap();
        let max = *self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<u128>() / self.samples.len() as u128;
        (min, mean, max)
    }
}

fn fmt_nanos(n: u128) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.2}µs", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

/// Declares a bench entry point running each listed function with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($func:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $func(&mut c); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("self-test");
        g.sample_size(3)
            .measurement_time(Duration::from_millis(200))
            .bench_function("sum", |b| b.iter(|| (0u64..100).sum::<u64>()));
        g.finish();
    }

    #[test]
    fn nanos_format_picks_sensible_units() {
        assert_eq!(fmt_nanos(5), "5ns");
        assert_eq!(fmt_nanos(1_500), "1.50µs");
        assert_eq!(fmt_nanos(2_000_000), "2.00ms");
        assert_eq!(fmt_nanos(3_000_000_000), "3.00s");
    }
}
