//! Benchmark-only crate: every figure and result of the paper regenerates
//! from a Criterion bench under `benches/`. See EXPERIMENTS.md for the
//! mapping and recorded outputs.
