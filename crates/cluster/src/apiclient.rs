//! An embeddable apiserver client for components.
//!
//! Components (kubelets, controllers, the scheduler) talk to *one* apiserver
//! at a time and may switch — on retry, or on restart. That switch is the
//! time-travel vector of §4.2.2: "a service can synchronize its state with
//! one of multiple upstream sources, each of which could be potentially
//! stale". [`PickPolicy`] controls the choice deterministically.

use std::collections::BTreeMap;

use ph_sim::{ActorId, AnyMsg, Ctx, Duration, SimTime};
use ph_store::Revision;

use crate::api::{
    ApiError, ApiOk, ApiRequest, ApiResponse, ApiWatchCancelReq, ApiWatchCancelled, ApiWatchCreate,
    ApiWatchEvent, ApiWatchProgress, ObjEvent, Verb,
};

/// How a component chooses its apiserver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PickPolicy {
    /// Always the same apiserver.
    Pinned(usize),
    /// `(instance + rotations) % n` — components pass their incarnation as
    /// `instance`, so each restart deterministically lands on the *next*
    /// apiserver (the Kubernetes-59848 ingredient).
    ByInstance,
}

/// Client tuning.
#[derive(Debug, Clone)]
pub struct ApiClientConfig {
    /// The apiservers, in a fixed order.
    pub apiservers: Vec<ActorId>,
    /// Resend an unanswered request after this long.
    pub request_timeout: Duration,
    /// Declare a watch dead after this long without traffic.
    pub watch_timeout: Duration,
    /// Upstream selection.
    pub pick: PickPolicy,
}

impl ApiClientConfig {
    /// Defaults for a list of apiservers.
    pub fn new(apiservers: Vec<ActorId>) -> ApiClientConfig {
        ApiClientConfig {
            apiservers,
            request_timeout: Duration::millis(400),
            watch_timeout: Duration::millis(1200),
            pick: PickPolicy::Pinned(0),
        }
    }

    /// Can this client end up re-listing from a *different* apiserver than
    /// the one that served its current view? `ByInstance` rotates upstreams
    /// across restarts, so with more than one apiserver the answer is yes —
    /// the §4.2.2 time-travel vector the static hazard checker keys on.
    pub fn upstream_switch(&self) -> bool {
        self.pick == PickPolicy::ByInstance && self.apiservers.len() > 1
    }
}

/// A finished client interaction.
#[derive(Debug, Clone)]
pub enum ApiCompletion {
    /// A request finished (transport-level failures are retried internally;
    /// only [`ApiError::Unavailable`] exhaustion surfaces as an error).
    Done {
        /// Request id from the submit call.
        req: u64,
        /// Outcome.
        result: Result<ApiOk, ApiError>,
    },
    /// Events on a watch stream.
    WatchEvents {
        /// Watch id.
        watch: u64,
        /// The events, in revision order (shared along the apiserver →
        /// client → informer path).
        events: Vec<std::rc::Rc<ObjEvent>>,
        /// Resume point after the batch.
        revision: Revision,
    },
    /// The watch resume point fell out of the apiserver's window: the
    /// owner must re-list (§4.2.3).
    WatchTooOld {
        /// Watch id.
        watch: u64,
    },
}

#[derive(Debug, Clone)]
struct Pending {
    verb: Verb,
    target: ActorId,
    deadline: SimTime,
}

#[derive(Debug, Clone)]
struct WatchSt {
    prefix: String,
    resume: Revision,
    node: ActorId,
    last_seen: SimTime,
    /// Next expected stream sequence; a gap ⇒ reconnect from `resume`.
    expect_seq: u64,
}

/// The client state machine. Owners forward messages to
/// [`ApiClient::on_message`] and call [`ApiClient::tick`] periodically.
#[derive(Debug)]
pub struct ApiClient {
    cfg: ApiClientConfig,
    /// The pick-policy-designated apiserver for this instance.
    home: usize,
    /// Which apiserver this client currently targets; drifts off `home`
    /// while retrying around unavailability and snaps back on success.
    preferred: usize,
    next_req: u64,
    next_watch: u64,
    pending: BTreeMap<u64, Pending>,
    watches: BTreeMap<u64, WatchSt>,
}

impl ApiClient {
    /// Creates a client. `instance` disambiguates restarts under
    /// [`PickPolicy::ByInstance`] (pass the owner's incarnation).
    ///
    /// # Panics
    ///
    /// Panics if the apiserver list is empty or a pinned index is out of
    /// range.
    pub fn new(cfg: ApiClientConfig, instance: u64) -> ApiClient {
        assert!(!cfg.apiservers.is_empty(), "need at least one apiserver");
        let preferred = match cfg.pick {
            PickPolicy::Pinned(i) => {
                assert!(i < cfg.apiservers.len(), "pinned index out of range");
                i
            }
            PickPolicy::ByInstance => (instance as usize) % cfg.apiservers.len(),
        };
        ApiClient {
            cfg,
            home: preferred,
            preferred,
            next_req: 0,
            next_watch: 0,
            pending: BTreeMap::new(),
            watches: BTreeMap::new(),
        }
    }

    /// The apiserver this client currently prefers.
    pub fn upstream(&self) -> ActorId {
        self.cfg.apiservers[self.preferred]
    }

    /// Index of the preferred apiserver.
    pub fn upstream_index(&self) -> usize {
        self.preferred
    }

    /// Requests awaiting a response.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    // -----------------------------------------------------------------
    // Requests
    // -----------------------------------------------------------------

    /// Submits a verb; completion arrives as [`ApiCompletion::Done`].
    pub fn submit(&mut self, verb: Verb, ctx: &mut Ctx) -> u64 {
        let req = self.next_req;
        self.next_req += 1;
        let target = self.upstream();
        let wire = ApiRequest {
            req,
            verb: verb.clone(),
        };
        let bytes = wire.wire_bytes();
        ctx.send_sized(target, wire, bytes);
        self.pending.insert(
            req,
            Pending {
                verb,
                target,
                deadline: ctx.now() + self.cfg.request_timeout,
            },
        );
        req
    }

    /// Cache read of one object.
    pub fn get(&mut self, key: impl Into<String>, fresh: bool, ctx: &mut Ctx) -> u64 {
        self.submit(
            Verb::Get {
                key: key.into(),
                fresh,
            },
            ctx,
        )
    }

    /// Cache or quorum list.
    pub fn list(&mut self, prefix: impl Into<String>, fresh: bool, ctx: &mut Ctx) -> u64 {
        self.submit(
            Verb::List {
                prefix: prefix.into(),
                fresh,
            },
            ctx,
        )
    }

    /// Creates an object.
    pub fn create(&mut self, obj: &crate::objects::Object, ctx: &mut Ctx) -> u64 {
        self.submit(
            Verb::Create {
                key: obj.key().as_str().to_string(),
                value: obj.encode(),
            },
            ctx,
        )
    }

    /// Updates an object guarded by its resource version (pass an object
    /// read from the API so the version is meaningful).
    pub fn update(&mut self, obj: &crate::objects::Object, ctx: &mut Ctx) -> u64 {
        let expect_rv = if obj.meta.resource_version.0 > 0 {
            Some(obj.meta.resource_version)
        } else {
            None
        };
        self.submit(
            Verb::Update {
                key: obj.key().as_str().to_string(),
                value: obj.encode(),
                expect_rv,
            },
            ctx,
        )
    }

    /// Deletes by key.
    pub fn delete(
        &mut self,
        key: impl Into<String>,
        expect_rv: Option<Revision>,
        ctx: &mut Ctx,
    ) -> u64 {
        self.submit(
            Verb::Delete {
                key: key.into(),
                expect_rv,
            },
            ctx,
        )
    }

    /// Marks an object for graceful deletion.
    pub fn mark_deleted(&mut self, key: impl Into<String>, ctx: &mut Ctx) -> u64 {
        self.submit(Verb::MarkDeleted { key: key.into() }, ctx)
    }

    // -----------------------------------------------------------------
    // Watches
    // -----------------------------------------------------------------

    /// Opens a watch on the preferred apiserver.
    pub fn watch(&mut self, prefix: impl Into<String>, after: Revision, ctx: &mut Ctx) -> u64 {
        let watch = self.next_watch;
        self.next_watch += 1;
        let node = self.upstream();
        let prefix = prefix.into();
        ctx.send(
            node,
            ApiWatchCreate {
                watch,
                prefix: prefix.clone(),
                after,
            },
        );
        self.watches.insert(
            watch,
            WatchSt {
                prefix,
                resume: after,
                node,
                last_seen: ctx.now(),
                expect_seq: 0,
            },
        );
        watch
    }

    /// Cancels a watch.
    pub fn cancel_watch(&mut self, watch: u64, ctx: &mut Ctx) {
        if let Some(st) = self.watches.remove(&watch) {
            ctx.send(st.node, ApiWatchCancelReq { watch });
        }
    }

    // -----------------------------------------------------------------
    // Plumbing
    // -----------------------------------------------------------------

    /// Offers an incoming message; returns `true` if consumed.
    pub fn on_message(
        &mut self,
        from: ActorId,
        msg: &AnyMsg,
        ctx: &mut Ctx,
        out: &mut Vec<ApiCompletion>,
    ) -> bool {
        if let Some(resp) = msg.downcast_ref::<ApiResponse>() {
            let Some(p) = self.pending.get(&resp.req) else {
                return true;
            };
            match &resp.result {
                Err(ApiError::Unavailable) if from == p.target => {
                    // Rotate to the next apiserver and retry immediately.
                    self.preferred = (self.preferred + 1) % self.cfg.apiservers.len();
                    ctx.counter_inc("apiclient.retries");
                    self.resend(resp.req, ctx);
                }
                Err(ApiError::Unavailable) => { /* stale responder; ignore */ }
                other => {
                    // A working response: snap back to the designated home
                    // so pinned/by-instance policies stay meaningful after
                    // transient unavailability forced a detour.
                    self.preferred = self.home;
                    self.pending.remove(&resp.req);
                    out.push(ApiCompletion::Done {
                        req: resp.req,
                        result: other.clone(),
                    });
                }
            }
            return true;
        }
        if let Some(e) = msg.downcast_ref::<ApiWatchEvent>() {
            match self.stream_check(e.watch, from, e.stream_seq) {
                StreamCheck::Ok => {
                    let st = self.watches.get_mut(&e.watch).expect("checked");
                    st.resume = st.resume.max(e.revision);
                    st.last_seen = ctx.now();
                    out.push(ApiCompletion::WatchEvents {
                        watch: e.watch,
                        events: e.events.clone(),
                        revision: e.revision,
                    });
                }
                StreamCheck::Broken => self.reconnect_watch(e.watch, ctx),
                StreamCheck::Ignore => {}
            }
            return true;
        }
        if let Some(p) = msg.downcast_ref::<ApiWatchProgress>() {
            match self.stream_check(p.watch, from, p.stream_seq) {
                StreamCheck::Ok => {
                    let st = self.watches.get_mut(&p.watch).expect("checked");
                    st.resume = st.resume.max(p.revision);
                    st.last_seen = ctx.now();
                }
                StreamCheck::Broken => self.reconnect_watch(p.watch, ctx),
                StreamCheck::Ignore => {}
            }
            return true;
        }
        if let Some(c) = msg.downcast_ref::<ApiWatchCancelled>() {
            if self.watches.remove(&c.watch).is_some() {
                out.push(ApiCompletion::WatchTooOld { watch: c.watch });
            }
            return true;
        }
        false
    }

    /// Validates a stream message's sequence number.
    fn stream_check(&mut self, watch: u64, from: ActorId, seq: u64) -> StreamCheck {
        let Some(st) = self.watches.get_mut(&watch) else {
            return StreamCheck::Ignore;
        };
        if st.node != from {
            return StreamCheck::Ignore;
        }
        use std::cmp::Ordering;
        match seq.cmp(&st.expect_seq) {
            Ordering::Equal => {
                st.expect_seq += 1;
                StreamCheck::Ok
            }
            Ordering::Less => StreamCheck::Ignore,
            Ordering::Greater => StreamCheck::Broken,
        }
    }

    /// Tears a broken stream down and re-creates it from the last
    /// contiguously received revision, on the current preferred upstream.
    fn reconnect_watch(&mut self, watch: u64, ctx: &mut Ctx) {
        let Some(st) = self.watches.get(&watch).cloned() else {
            return;
        };
        ctx.counter_inc("apiclient.watch_reconnects");
        ctx.send(st.node, ApiWatchCancelReq { watch });
        let node = self.upstream();
        ctx.send(
            node,
            ApiWatchCreate {
                watch,
                prefix: st.prefix.clone(),
                after: st.resume,
            },
        );
        let entry = self.watches.get_mut(&watch).expect("exists");
        entry.node = node;
        entry.last_seen = ctx.now();
        entry.expect_seq = 0;
    }

    fn resend(&mut self, req: u64, ctx: &mut Ctx) {
        let timeout = self.cfg.request_timeout;
        let target = self.upstream();
        let Some(p) = self.pending.get_mut(&req) else {
            return;
        };
        p.target = target;
        p.deadline = ctx.now() + timeout;
        let verb = p.verb.clone();
        let wire = ApiRequest { req, verb };
        let bytes = wire.wire_bytes();
        ctx.send_sized(target, wire, bytes);
    }

    /// Periodic maintenance: retries timed-out requests (rotating upstream)
    /// and revives dead watch streams (resuming from the last seen revision
    /// on the — possibly different, possibly *staler* — preferred upstream).
    pub fn tick(&mut self, ctx: &mut Ctx) {
        let now = ctx.now();
        let timed_out: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(&r, _)| r)
            .collect();
        if !timed_out.is_empty() {
            self.preferred = (self.preferred + 1) % self.cfg.apiservers.len();
        }
        for req in timed_out {
            ctx.counter_inc("apiclient.retries");
            self.resend(req, ctx);
        }
        let dead: Vec<u64> = self
            .watches
            .iter()
            .filter(|(_, st)| now.since(st.last_seen) > self.cfg.watch_timeout)
            .map(|(&w, _)| w)
            .collect();
        for watch in dead {
            self.reconnect_watch(watch, ctx);
        }
    }
}

/// Outcome of a stream sequence check.
enum StreamCheck {
    /// In order: process.
    Ok,
    /// A gap: reconnect.
    Broken,
    /// Duplicate/stale: drop.
    Ignore,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_instance_rotates_per_incarnation() {
        let servers = vec![ActorId(1), ActorId(2)];
        let mut cfg = ApiClientConfig::new(servers);
        cfg.pick = PickPolicy::ByInstance;
        let c0 = ApiClient::new(cfg.clone(), 0);
        let c1 = ApiClient::new(cfg.clone(), 1);
        let c2 = ApiClient::new(cfg, 2);
        assert_eq!(c0.upstream(), ActorId(1));
        assert_eq!(c1.upstream(), ActorId(2));
        assert_eq!(c2.upstream(), ActorId(1));
    }

    #[test]
    #[should_panic(expected = "at least one apiserver")]
    fn empty_server_list_panics() {
        ApiClient::new(ApiClientConfig::new(vec![]), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_pin_panics() {
        let mut cfg = ApiClientConfig::new(vec![ActorId(1)]);
        cfg.pick = PickPolicy::Pinned(5);
        ApiClient::new(cfg, 0);
    }
}
